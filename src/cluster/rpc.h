#pragma once

#include <atomic>
#include <cstdint>

#include "common/metrics.h"
#include "common/task_scheduler.h"

namespace blendhouse::cluster {

/// Simulated intra-cluster RPC fabric. Worker-to-worker calls (vector search
/// serving, Fig. 4/11) go through Charge() to pay a network round-trip cost
/// before the in-process handler runs. Counters feed the benches.
class RpcFabric {
 public:
  struct CostModel {
    /// Round-trip latency in microseconds (~intra-AZ TCP).
    int64_t base_latency_micros = 200;
    /// Payload throughput (bytes per microsecond).
    double bytes_per_micro = 500.0;
    bool simulate_latency = true;
  };

  RpcFabric() : RpcFabric(CostModel()) {}
  explicit RpcFabric(CostModel cost) : cost_(cost) {}

  /// Pays the network cost of a call moving `payload_bytes` of argument +
  /// response data. Deferred (accumulated for delay-queue scheduling) when
  /// the caller runs under a DeferredChargeScope; blocks otherwise.
  void Charge(size_t payload_bytes) const {
    const Metrics& m = RegistryMetrics();
    calls_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    m.calls->Add(1);
    m.bytes->Add(payload_bytes);
    if (!cost_.simulate_latency) return;
    int64_t micros =
        cost_.base_latency_micros +
        static_cast<int64_t>(static_cast<double>(payload_bytes) /
                             cost_.bytes_per_micro);
    if (micros > 0) {
      m.latency->Record(static_cast<double>(micros));
      // In-flight covers the charge itself: the full simulated round-trip
      // for blocking callers, the hand-off instant for deferred ones (their
      // latency is observed downstream on the delay queue).
      m.inflight->Add(1);
      common::ChargeSimLatency(static_cast<uint64_t>(micros));
      m.inflight->Sub(1);
    }
  }

  uint64_t calls() const { return calls_.load(); }
  uint64_t bytes() const { return bytes_.load(); }
  const CostModel& cost_model() const { return cost_; }

 private:
  struct Metrics {
    common::metrics::Counter* calls;
    common::metrics::Counter* bytes;
    common::metrics::Gauge* inflight;
    common::metrics::HistogramMetric* latency;
  };
  static const Metrics& RegistryMetrics() {
    auto& reg = common::metrics::MetricsRegistry::Instance();
    static const Metrics m{
        reg.GetCounter("bh_rpc_calls_total"),
        reg.GetCounter("bh_rpc_bytes_total"),
        reg.GetGauge("bh_rpc_inflight"),
        reg.GetHistogram("bh_rpc_latency_micros"),
    };
    return m;
  }

  CostModel cost_;
  mutable std::atomic<uint64_t> calls_{0};
  mutable std::atomic<uint64_t> bytes_{0};
};

}  // namespace blendhouse::cluster
