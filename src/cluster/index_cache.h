#pragma once

#include <memory>
#include <string>

#include "common/lru_cache.h"
#include "common/result.h"
#include "storage/object_store.h"
#include "vecindex/index_factory.h"

namespace blendhouse::cluster {

/// How a query obtained its vector index — the x-axis of Fig. 11.
enum class CacheOutcome {
  kMemoryHit = 0,    // in-memory index cache hit (the fast path)
  kDiskHit,          // local-disk cache hit; deserialization + disk latency
  kRemoteLoad,       // fetched from shared remote storage
  kRemoteServing,    // answered via a peer worker's cache over RPC
  kBruteForce,       // no index available; exact scan over raw vectors
};

const char* CacheOutcomeName(CacheOutcome outcome);

/// Small always-resident facts about a cached index, kept in a *separate*
/// LRU space from the (large) index payloads so metadata lookups are never
/// evicted by data churn — the paper's split-space in-memory cache design.
struct IndexMetaInfo {
  std::string index_type;
  uint64_t num_vectors = 0;
  uint64_t memory_bytes = 0;
};

/// Hierarchical vector index cache (paper §II-D): in-memory LRU (separate
/// metadata/data spaces) over a local-disk LRU of serialized bytes over the
/// remote object store. Disk hits pay the local-disk latency model; remote
/// loads pay the object store's.
class HierarchicalIndexCache {
 public:
  struct Options {
    size_t memory_bytes = 256ull << 20;
    size_t metadata_bytes = 8ull << 20;
    size_t disk_bytes = 1ull << 30;
    storage::StorageCostModel disk_cost =
        storage::StorageCostModel::LocalDisk();
  };

  explicit HierarchicalIndexCache(storage::ObjectStore* remote)
      : HierarchicalIndexCache(remote, Options()) {}
  HierarchicalIndexCache(storage::ObjectStore* remote, Options options);

  /// Returns the loaded index for `key` (an object-store index key), loading
  /// through the disk tier on a memory miss. `spec` supplies dim/metric for
  /// deserialization.
  struct GetResult {
    std::shared_ptr<vecindex::VectorIndex> index;
    CacheOutcome outcome;
  };
  common::Result<GetResult> GetOrLoad(const std::string& key,
                                      const vecindex::IndexSpec& spec);

  /// Memory-tier-only probe; used by peer workers for vector search serving
  /// (a peer can only serve what it already has hot).
  std::shared_ptr<vecindex::VectorIndex> PeekMemory(const std::string& key);

  /// Metadata-space probe (never touches the data space's LRU order).
  std::optional<IndexMetaInfo> GetMeta(const std::string& key);

  void Evict(const std::string& key);
  /// Drops only the memory tier (the disk copy stays) — simulates memory
  /// pressure for tier-latency measurements.
  void EvictMemoryOnly(const std::string& key) { memory_.Erase(key); }
  void Clear();

  size_t memory_used() const { return memory_.used_bytes(); }
  size_t disk_used() const { return disk_.used_bytes(); }
  uint64_t memory_hits() const { return memory_.hits(); }
  uint64_t memory_misses() const { return memory_.misses(); }
  uint64_t disk_hits() const { return disk_hits_.load(); }
  uint64_t remote_loads() const { return remote_loads_.load(); }

 private:
  void ChargeDiskLatency(size_t bytes) const;
  void InsertAllTiers(const std::string& key, std::string bytes,
                      std::shared_ptr<vecindex::VectorIndex> index);

  storage::ObjectStore* remote_;
  Options options_;
  common::LruCache<std::shared_ptr<vecindex::VectorIndex>> memory_;
  common::LruCache<std::shared_ptr<IndexMetaInfo>> metadata_;
  common::LruCache<std::shared_ptr<std::string>> disk_;
  std::atomic<uint64_t> disk_hits_{0};
  std::atomic<uint64_t> remote_loads_{0};
};

}  // namespace blendhouse::cluster
