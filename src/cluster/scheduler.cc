#include "cluster/scheduler.h"

#include <memory>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"

namespace blendhouse::cluster {

std::vector<storage::SegmentMeta> Scheduler::PruneScalar(
    const std::vector<storage::SegmentMeta>& segments,
    const std::function<bool(const storage::SegmentMeta&)>& may_match) {
  std::vector<storage::SegmentMeta> kept;
  kept.reserve(segments.size());
  for (const storage::SegmentMeta& m : segments)
    if (may_match(m)) kept.push_back(m);
  return kept;
}

std::vector<storage::SegmentMeta> Scheduler::PruneSemantic(
    const std::vector<storage::SegmentMeta>& segments,
    const storage::SemanticPartitioner& partitioner, const float* query,
    size_t probe_buckets) {
  if (!partitioner.trained() || probe_buckets >= partitioner.num_buckets())
    return segments;
  std::vector<int64_t> ranked = partitioner.RankBuckets(query);
  ranked.resize(probe_buckets);
  std::unordered_set<int64_t> probe(ranked.begin(), ranked.end());
  std::vector<storage::SegmentMeta> kept;
  kept.reserve(segments.size());
  for (const storage::SegmentMeta& m : segments)
    if (m.semantic_bucket < 0 || probe.count(m.semantic_bucket) > 0)
      kept.push_back(m);
  return kept;
}

std::map<std::string, std::vector<storage::SegmentMeta>> Scheduler::Assign(
    const VirtualWarehouse& vw, const std::string& table_name,
    const std::vector<storage::SegmentMeta>& segments) {
  std::map<std::string, std::vector<storage::SegmentMeta>> assignment;
  for (const storage::SegmentMeta& m : segments) {
    std::string owner = vw.OwnerIdOf(PlacementKey(table_name, m));
    assignment[owner].push_back(m);
  }
  return assignment;
}

namespace {
/// Fan-in state for PreloadIndexesAsync: first error wins, the promise fires
/// when the last outstanding load resolves.
struct PreloadFanIn {
  common::Mutex mu{common::lockrank::kQueryFanIn};
  common::Status first_error GUARDED_BY(mu);
  size_t outstanding GUARDED_BY(mu) = 0;
  common::Promise<common::Status> done;
};
}  // namespace

common::Future<common::Status> PreloadIndexesAsync(
    VirtualWarehouse& vw, const storage::TableSchema& schema,
    const storage::TableSnapshot& snapshot) {
  // Same ring placement as the query scheduler, so preloaded indexes land
  // exactly where queries will look for them.
  auto assignment =
      Scheduler::Assign(vw, schema.table_name, snapshot.segments);
  common::TaskScheduler* sched = &vw.task_scheduler();
  auto fan_in = std::make_shared<PreloadFanIn>();
  common::Future<common::Status> result = fan_in->done.GetFuture();

  std::vector<common::Future<common::Status>> loads;
  for (const auto& [worker_id, metas] : assignment) {
    Worker* worker = vw.worker(worker_id);
    if (worker == nullptr) continue;
    for (const storage::SegmentMeta& meta : metas)
      loads.push_back(worker->PreloadIndexAsync(sched, schema, meta));
  }
  if (loads.empty()) {
    fan_in->done.SetValue(common::Status::Ok());
    return result;
  }
  {
    common::MutexLock lock(fan_in->mu);
    fan_in->outstanding = loads.size();
  }
  for (auto& fut : loads) {
    fut.Then(sched, [fan_in](common::Status s) {
      bool last = false;
      common::Status aggregate;
      {
        common::MutexLock lock(fan_in->mu);
        if (!s.ok() && fan_in->first_error.ok())
          fan_in->first_error = std::move(s);
        last = --fan_in->outstanding == 0;
        if (last) aggregate = fan_in->first_error;
      }
      if (last) fan_in->done.SetValue(std::move(aggregate));
    });
  }
  return result;
}

common::Status PreloadIndexes(VirtualWarehouse& vw,
                              const storage::TableSchema& schema,
                              const storage::TableSnapshot& snapshot) {
  return PreloadIndexesAsync(vw, schema, snapshot).Get();
}

}  // namespace blendhouse::cluster
