#include "cluster/scheduler.h"

#include <future>
#include <unordered_set>

namespace blendhouse::cluster {

std::vector<storage::SegmentMeta> Scheduler::PruneScalar(
    const std::vector<storage::SegmentMeta>& segments,
    const std::function<bool(const storage::SegmentMeta&)>& may_match) {
  std::vector<storage::SegmentMeta> kept;
  kept.reserve(segments.size());
  for (const storage::SegmentMeta& m : segments)
    if (may_match(m)) kept.push_back(m);
  return kept;
}

std::vector<storage::SegmentMeta> Scheduler::PruneSemantic(
    const std::vector<storage::SegmentMeta>& segments,
    const storage::SemanticPartitioner& partitioner, const float* query,
    size_t probe_buckets) {
  if (!partitioner.trained() || probe_buckets >= partitioner.num_buckets())
    return segments;
  std::vector<int64_t> ranked = partitioner.RankBuckets(query);
  ranked.resize(probe_buckets);
  std::unordered_set<int64_t> probe(ranked.begin(), ranked.end());
  std::vector<storage::SegmentMeta> kept;
  kept.reserve(segments.size());
  for (const storage::SegmentMeta& m : segments)
    if (m.semantic_bucket < 0 || probe.count(m.semantic_bucket) > 0)
      kept.push_back(m);
  return kept;
}

std::map<std::string, std::vector<storage::SegmentMeta>> Scheduler::Assign(
    const VirtualWarehouse& vw, const std::string& table_name,
    const std::vector<storage::SegmentMeta>& segments) {
  std::map<std::string, std::vector<storage::SegmentMeta>> assignment;
  for (const storage::SegmentMeta& m : segments) {
    std::string owner = vw.OwnerIdOf(PlacementKey(table_name, m));
    assignment[owner].push_back(m);
  }
  return assignment;
}

common::Status PreloadIndexes(VirtualWarehouse& vw,
                              const storage::TableSchema& schema,
                              const storage::TableSnapshot& snapshot) {
  // Same ring placement as the query scheduler, so preloaded indexes land
  // exactly where queries will look for them.
  auto assignment =
      Scheduler::Assign(vw, schema.table_name, snapshot.segments);
  std::vector<std::future<common::Status>> loads;
  for (const auto& [worker_id, metas] : assignment) {
    Worker* worker = vw.worker(worker_id);
    if (worker == nullptr) continue;
    for (const storage::SegmentMeta& meta : metas) {
      loads.push_back(worker->pool().Submit(
          [worker, &schema, meta] { return worker->PreloadIndex(schema, meta); }));
    }
  }
  common::Status status;
  for (auto& fut : loads) {
    common::Status s = fut.get();
    if (!s.ok() && status.ok()) status = s;
  }
  return status;
}

}  // namespace blendhouse::cluster
