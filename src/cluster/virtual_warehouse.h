#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/consistent_hash.h"
#include "cluster/rpc.h"
#include "cluster/worker.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/task_scheduler.h"
#include "storage/object_store.h"

namespace blendhouse::cluster {

/// A group of stateless workers behind a multi-probe consistent-hash ring —
/// the paper's virtual warehouse (VW). Read, write (index-build), and
/// compaction workloads each get their own VW for physical isolation;
/// scaling adds/removes workers and re-runs ring placement, remembering the
/// pre-scale ring so vector search serving can route misses to old owners.
///
/// Lock hierarchy: mu_ is above every worker-internal lock (cache mutexes,
/// thread-pool mutexes). Methods called while holding mu_ may take worker
/// locks; workers never call back into the VW while holding their own locks
/// (the peer resolver runs from AcquireIndex with no worker lock held).
class VirtualWarehouse {
 public:
  VirtualWarehouse(std::string name, size_t num_workers,
                   storage::ObjectStore* remote, RpcFabric* rpc,
                   WorkerOptions worker_options = {});
  ~VirtualWarehouse();

  /// Pins the worker set against destruction: RemoveWorker (and ~VirtualWarehouse)
  /// wait for every lease taken before the scale-down began, so a `Worker*`
  /// resolved while a lease is held stays valid for the lease's lifetime.
  /// Leases are generation-stamped — a scale-down only waits out leases older
  /// than its own unlink, so continuous queries cannot starve it. Query
  /// execution holds one per dispatch attempt (released by the attempt's last
  /// straggler, not at query return); synchronous scan paths hold one across
  /// their worker calls. Control-plane callers of workers()/worker() that
  /// never race a scale-down (benches, tests, preload) may skip the lease.
  class QueryLease {
   public:
    QueryLease() = default;
    explicit QueryLease(VirtualWarehouse* vw);
    ~QueryLease() { Release(); }
    QueryLease(QueryLease&& other) noexcept
        : vw_(other.vw_), gen_(other.gen_) {
      other.vw_ = nullptr;
    }
    QueryLease& operator=(QueryLease&& other) noexcept {
      if (this != &other) {
        Release();
        vw_ = other.vw_;
        gen_ = other.gen_;
        other.vw_ = nullptr;
      }
      return *this;
    }
    QueryLease(const QueryLease&) = delete;
    QueryLease& operator=(const QueryLease&) = delete;

   private:
    void Release();

    VirtualWarehouse* vw_ = nullptr;
    uint64_t gen_ = 0;
  };

  QueryLease AcquireQueryLease() { return QueryLease(this); }

  const std::string& name() const { return name_; }
  size_t num_workers() const EXCLUDES(mu_);
  std::vector<Worker*> workers() const EXCLUDES(mu_);
  Worker* worker(const std::string& id) const EXCLUDES(mu_);

  /// Adds one worker; snapshots the current ring as the "previous" topology
  /// first, so the new worker can resolve pre-scale owners.
  Worker* AddWorker() EXCLUDES(mu_);

  /// Removes a worker (planned scale-down or simulated failure).
  common::Status RemoveWorker(const std::string& id) EXCLUDES(mu_);

  /// Current owner of an object-store key under the live ring.
  Worker* OwnerOf(const std::string& key) const EXCLUDES(mu_);
  std::string OwnerIdOf(const std::string& key) const EXCLUDES(mu_);

  /// Owner under the topology captured just before the last scaling event;
  /// null when the topology never changed or the owner is gone.
  Worker* PreviousOwnerOf(const std::string& key) const EXCLUDES(mu_);

  /// Snapshot of the live ring (copy: the live ring mutates under mu_).
  ConsistentHashRing ring() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return ring_;
  }

  /// Drops every worker's caches (benches use this to force cold starts).
  void DropAllCaches() EXCLUDES(mu_);

  /// The warehouse-wide continuation scheduler: runs top-k merge folds,
  /// preload completions, and everything charged through the delay queue.
  /// Thread-safe; internally synchronized.
  common::TaskScheduler& task_scheduler() const { return scheduler_; }

 private:
  Worker* AddWorkerLocked() REQUIRES(mu_);

  std::string name_;
  storage::ObjectStore* remote_;
  RpcFabric* rpc_;
  WorkerOptions worker_options_;

  // Declared before workers_ so it is destroyed after them: straggler tasks
  // draining on a worker's pool during ~Worker still call ScheduleAfter on
  // this scheduler. Continuations queued here never touch Worker state (they
  // only complete promises / fold into shared attempt state), so dropping
  // whatever is still queued when the scheduler finally stops is safe.
  mutable common::TaskScheduler scheduler_{2};

  mutable common::Mutex mu_{common::lockrank::kVirtualWarehouse};
  mutable common::CondVar lease_cv_;
  /// Bumped by every scale-down unlink; open leases are counted per
  /// generation so RemoveWorker can wait for exactly the leases that might
  /// have resolved the retiring worker.
  uint64_t lease_gen_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, size_t> active_leases_ GUARDED_BY(mu_);
  size_t worker_counter_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<Worker>> workers_ GUARDED_BY(mu_);
  ConsistentHashRing ring_ GUARDED_BY(mu_);
  ConsistentHashRing previous_ring_ GUARDED_BY(mu_);
  bool has_previous_ring_ GUARDED_BY(mu_) = false;
};

}  // namespace blendhouse::cluster
