#ifndef BLENDHOUSE_CLUSTER_VIRTUAL_WAREHOUSE_H_
#define BLENDHOUSE_CLUSTER_VIRTUAL_WAREHOUSE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/consistent_hash.h"
#include "cluster/rpc.h"
#include "cluster/worker.h"
#include "common/result.h"
#include "storage/object_store.h"

namespace blendhouse::cluster {

/// A group of stateless workers behind a multi-probe consistent-hash ring —
/// the paper's virtual warehouse (VW). Read, write (index-build), and
/// compaction workloads each get their own VW for physical isolation;
/// scaling adds/removes workers and re-runs ring placement, remembering the
/// pre-scale ring so vector search serving can route misses to old owners.
class VirtualWarehouse {
 public:
  VirtualWarehouse(std::string name, size_t num_workers,
                   storage::ObjectStore* remote, RpcFabric* rpc,
                   WorkerOptions worker_options = {});

  const std::string& name() const { return name_; }
  size_t num_workers() const;
  std::vector<Worker*> workers() const;
  Worker* worker(const std::string& id) const;

  /// Adds one worker; snapshots the current ring as the "previous" topology
  /// first, so the new worker can resolve pre-scale owners.
  Worker* AddWorker();

  /// Removes a worker (planned scale-down or simulated failure).
  common::Status RemoveWorker(const std::string& id);

  /// Current owner of an object-store key under the live ring.
  Worker* OwnerOf(const std::string& key) const;
  std::string OwnerIdOf(const std::string& key) const;

  /// Owner under the topology captured just before the last scaling event;
  /// null when the topology never changed or the owner is gone.
  Worker* PreviousOwnerOf(const std::string& key) const;

  const ConsistentHashRing& ring() const { return ring_; }

  /// Drops every worker's caches (benches use this to force cold starts).
  void DropAllCaches();

 private:
  Worker* AddWorkerLocked();

  std::string name_;
  storage::ObjectStore* remote_;
  RpcFabric* rpc_;
  WorkerOptions worker_options_;

  mutable std::mutex mu_;
  size_t worker_counter_ = 0;
  std::map<std::string, std::unique_ptr<Worker>> workers_;
  ConsistentHashRing ring_;
  ConsistentHashRing previous_ring_;
  bool has_previous_ring_ = false;
};

}  // namespace blendhouse::cluster

#endif  // BLENDHOUSE_CLUSTER_VIRTUAL_WAREHOUSE_H_
