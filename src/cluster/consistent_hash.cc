#include "cluster/consistent_hash.h"

#include <limits>

#include "common/assert.h"

namespace blendhouse::cluster {

uint64_t HashWithSeed(const std::string& text, uint64_t seed) {
  // FNV-1a folded with a splitmix64 finisher; deterministic across runs.
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

void ConsistentHashRing::AddNode(const std::string& node_id) {
  BH_ASSERT_MSG(!node_id.empty(), "ring node needs an id");
  auto [it, inserted] = ring_.emplace(HashWithSeed(node_id, /*seed=*/0), node_id);
  // A 64-bit placement collision between distinct nodes would silently drop
  // one of them from the ring and strand its keys.
  BH_ASSERT_MSG(inserted || it->second == node_id,
                "ring position collision between distinct nodes");
}

void ConsistentHashRing::RemoveNode(const std::string& node_id) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node_id)
      it = ring_.erase(it);
    else
      ++it;
  }
}

bool ConsistentHashRing::HasNode(const std::string& node_id) const {
  for (const auto& [_, id] : ring_)
    if (id == node_id) return true;
  return false;
}

std::vector<std::string> ConsistentHashRing::Nodes() const {
  std::vector<std::string> out;
  out.reserve(ring_.size());
  for (const auto& [_, id] : ring_) out.push_back(id);
  return out;
}

std::string ConsistentHashRing::GetNode(const std::string& key) const {
  if (ring_.empty()) return "";
  uint64_t best_distance = std::numeric_limits<uint64_t>::max();
  const std::string* best_node = nullptr;
  for (size_t probe = 0; probe < num_probes_; ++probe) {
    uint64_t pos = HashWithSeed(key, probe + 1);
    // Next node clockwise from the probe (wrap to the first entry).
    auto it = ring_.lower_bound(pos);
    uint64_t node_pos;
    const std::string* node;
    if (it == ring_.end()) {
      node_pos = ring_.begin()->first;
      node = &ring_.begin()->second;
    } else {
      node_pos = it->first;
      node = &it->second;
    }
    uint64_t distance = node_pos - pos;  // unsigned wraparound = ring distance
    if (distance < best_distance) {
      best_distance = distance;
      best_node = node;
    }
  }
  BH_DCHECK_MSG(best_node != nullptr, "multi-probe lookup found no node");
  return *best_node;
}

}  // namespace blendhouse::cluster
