#ifndef BLENDHOUSE_CLUSTER_LRU_CACHE_SHIM_H_
#define BLENDHOUSE_CLUSTER_LRU_CACHE_SHIM_H_

// LruCache moved to common/ so lower layers (vecindex) can use it; this
// alias keeps the cluster-layer spelling working.
#include "common/lru_cache.h"

namespace blendhouse::cluster {
using common::LruCache;
}  // namespace blendhouse::cluster

#endif  // BLENDHOUSE_CLUSTER_LRU_CACHE_SHIM_H_
