#include "cluster/worker.h"

#include <chrono>
#include <memory>

#include "common/logging.h"
#include "vecindex/flat_index.h"
#include "vecindex/scan_counters.h"

namespace blendhouse::cluster {

Worker::Worker(std::string id, storage::ObjectStore* remote, RpcFabric* rpc,
               WorkerOptions options)
    : id_(std::move(id)),
      remote_(remote),
      rpc_(rpc),
      options_(options),
      index_cache_(remote, options.cache),
      segment_cache_(options.segment_cache_bytes),
      filter_bitmap_cache_(options.filter_bitmap_cache_bytes),
      pool_(options.threads),
      loader_(1) {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  segment_cache_.InstrumentMetrics(
      reg.GetCounter("bh_segment_cache_hits_total"),
      reg.GetCounter("bh_segment_cache_misses_total"),
      reg.GetCounter("bh_segment_cache_evictions_total"),
      reg.GetGauge("bh_segment_cache_bytes"));
  filter_bitmap_cache_.InstrumentMetrics(
      reg.GetCounter("bh_filter_bitmap_cache_hits_total"),
      reg.GetCounter("bh_filter_bitmap_cache_misses_total"),
      reg.GetCounter("bh_filter_bitmap_cache_evictions_total"),
      reg.GetGauge("bh_filter_bitmap_cache_bytes"));
}

common::Result<storage::SegmentPtr> Worker::GetSegment(
    const storage::TableSchema& schema, const std::string& segment_id,
    bool use_cache) {
  std::string key = storage::SegmentKeys::Data(schema.table_name, segment_id);
  if (use_cache) {
    if (auto hit = segment_cache_.Get(key)) return *hit;
  }
  auto bytes = remote_->Get(key);
  if (!bytes.ok()) return bytes.status();
  auto segment = storage::Segment::Deserialize(*bytes);
  if (!segment.ok()) return segment.status();
  // Large scans bypass the cache so a single wide hybrid read cannot evict
  // the whole working set (the paper's row-limit thrash guard).
  if (use_cache &&
      (*segment)->num_rows() <= options_.segment_cache_row_limit)
    segment_cache_.Put(key, *segment, (*segment)->MemoryUsage());
  return segment;
}

common::Result<Worker::AcquiredIndex> Worker::BruteForceIndex(
    const storage::TableSchema& schema, const storage::SegmentMeta& meta,
    bool use_segment_cache) {
  auto segment = GetSegment(schema, meta.segment_id, use_segment_cache);
  if (!segment.ok()) return segment.status();
  if (schema.vector_column < 0)
    return common::Status::InvalidArgument("table has no vector column");
  const storage::Column& vec_col =
      (*segment)->column(schema.vector_column);
  auto flat = std::make_shared<vecindex::FlatIndex>(
      vec_col.vector_dim(), schema.index_spec.has_value()
                                ? schema.index_spec->metric
                                : vecindex::Metric::kL2);
  std::vector<vecindex::IdType> ids((*segment)->num_rows());
  for (size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<vecindex::IdType>(i);
  BH_RETURN_IF_ERROR(flat->AddWithIds(vec_col.vector_data().data(), ids.data(),
                                      ids.size()));
  return AcquiredIndex{flat, CacheOutcome::kBruteForce};
}

common::Result<Worker::AcquiredIndex> Worker::AcquireIndex(
    const storage::TableSchema& schema, const storage::SegmentMeta& meta,
    const AcquireOptions& opts) {
  if (!schema.index_spec.has_value())
    return BruteForceIndex(schema, meta, /*use_segment_cache=*/true);

  std::string key =
      storage::SegmentKeys::Index(schema.table_name, meta.segment_id);
  const vecindex::IndexSpec& spec = *schema.index_spec;

  // Fast path: memory or disk tier.
  if (index_cache_.PeekMemory(key) != nullptr || opts.force_local_load) {
    auto got = index_cache_.GetOrLoad(key, spec);
    if (!got.ok()) return got.status();
    return AcquiredIndex{got->index, got->outcome};
  }

  // Miss. Ask the pre-scale owner to serve from its hot cache.
  if (opts.allow_remote_serving && peer_resolver_) {
    // The resolver is VirtualWarehouse code that takes vw->mu_; calling it
    // with any worker-side lock held would invert the VW > worker hierarchy.
    BH_LOCK_RANK_ONLY(
        common::lockrank::AssertNoneHeld("Worker peer resolver"));
    Worker* prev = peer_resolver_(key);
    if (prev != nullptr && prev != this) {
      std::shared_ptr<vecindex::VectorIndex> hot = prev->PeekHotIndex(key);
      if (hot != nullptr) {
        prev->NotePeerServe();
        if (opts.background_load_on_fallback) {
          // `this` outlives the task: loader_ is the last member of Worker,
          // so ~Worker joins it (draining the queue) before anything else
          // of *this is torn down.
          loader_.Submit([this, key, spec] {  // lint:allow(this-capture)
            auto st = index_cache_.GetOrLoad(key, spec);
            if (!st.ok())
              BH_LOG(kWarn, "background index load failed: " +
                                st.status().ToString());
          });
        }
        return AcquiredIndex{
            std::make_shared<RemoteIndexProxy>(std::move(hot), prev, rpc_),
            CacheOutcome::kRemoteServing};
      }
    }
  }

  // No peer can serve. Either scan raw vectors now (cheap to start, slow per
  // query) or block on a remote load (slow once, fast after).
  if (opts.allow_brute_force) {
    if (opts.background_load_on_fallback) {
      // Safe for the same reason as above: ~Worker joins loader_ first.
      loader_.Submit([this, key, spec] {  // lint:allow(this-capture)
        auto st = index_cache_.GetOrLoad(key, spec);
        if (!st.ok())
          BH_LOG(kWarn,
                 "background index load failed: " + st.status().ToString());
      });
    }
    return BruteForceIndex(schema, meta, /*use_segment_cache=*/true);
  }
  auto got = index_cache_.GetOrLoad(key, spec);
  if (!got.ok()) return got.status();
  return AcquiredIndex{got->index, got->outcome};
}

common::Status Worker::PreloadIndex(const storage::TableSchema& schema,
                                    const storage::SegmentMeta& meta) {
  if (!schema.index_spec.has_value()) return common::Status::Ok();
  std::string key =
      storage::SegmentKeys::Index(schema.table_name, meta.segment_id);
  auto got = index_cache_.GetOrLoad(key, *schema.index_spec);
  return got.ok() ? common::Status::Ok() : got.status();
}

namespace {
uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}
}  // namespace

void Worker::SearchSegmentAsync(
    common::TaskScheduler* sched, std::function<void()> search,
    std::function<void(const AsyncTaskStats&)> done, size_t affinity) {
  auto enqueued = std::chrono::steady_clock::now();
  pool_.Submit(
      [enqueued, sched, affinity, search = std::move(search),
       done = std::move(done)]() mutable {
        auto start = std::chrono::steady_clock::now();
        AsyncTaskStats stats;
        stats.queue_wait_micros = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                                  enqueued)
                .count());
        {
          common::DeferredChargeScope scope;
          search();
          stats.sim_io_micros = scope.accumulated_micros();
        }
        stats.compute_micros = ElapsedMicros(start);
        // Matches what ScheduleAfter will pick for this affinity; filled
        // before capture because `done` closes over stats by value.
        stats.shard = affinity == common::kNoAffinity
                          ? 0
                          : affinity % sched->num_shards();
        sched->ScheduleAfter(stats.sim_io_micros,
                             [done = std::move(done), stats] { done(stats); },
                             affinity);
      },
      affinity);
}

common::Future<common::Status> Worker::PreloadIndexAsync(
    common::TaskScheduler* sched, const storage::TableSchema& schema,
    const storage::SegmentMeta& meta) {
  common::Promise<common::Status> promise;
  common::Future<common::Status> fut = promise.GetFuture();
  if (!schema.index_spec.has_value()) {
    promise.SetValue(common::Status::Ok());
    return fut;
  }
  std::string key =
      storage::SegmentKeys::Index(schema.table_name, meta.segment_id);
  vecindex::IndexSpec spec = *schema.index_spec;
  // `this` outlives the task: ~Worker joins loader_ (declared last) before
  // index_cache_ is destroyed.
  loader_.Submit([this, sched, key = std::move(key),  // lint:allow(this-capture)
                  promise = std::move(promise), spec]() mutable {
    common::Status status;
    uint64_t sim_io = 0;
    {
      common::DeferredChargeScope scope;
      auto got = index_cache_.GetOrLoad(key, spec);
      if (!got.ok()) status = got.status();
      sim_io = scope.accumulated_micros();
    }
    sched->ScheduleAfter(sim_io,
                         [promise = std::move(promise), status]() mutable {
                           promise.SetValue(status);
                         });
  });
  return fut;
}

// ---- RemoteIndexProxy ------------------------------------------------------

namespace {
/// Estimated wire size of a search call: query floats out, k neighbors back.
size_t RpcPayloadBytes(size_t dim, size_t k) {
  return dim * sizeof(float) + k * (sizeof(vecindex::IdType) + sizeof(float));
}
}  // namespace

common::Result<vecindex::SearchIterator::Stats> Worker::StreamSearch(
    const storage::TableSchema& schema, const storage::SegmentMeta& meta,
    const float* query, const vecindex::SearchParams& params,
    size_t batch_size,
    const std::function<bool(const std::vector<vecindex::Neighbor>&)>& sink,
    const AcquireOptions& opts, common::QueryLedger* ledger) {
  if (batch_size == 0)
    return common::Status::InvalidArgument(
        "stream search: batch_size must be positive");
  // The whole stream runs synchronously on this thread, so the scope's
  // delta is exactly this call's distance work (see scan_counters.h).
  vecindex::scanstats::ScanCounterScope scan_scope;
  auto acquired = AcquireIndex(schema, meta, opts);
  if (!acquired.ok()) return acquired.status();
  auto iter = acquired->index->MakeIterator(query, params);
  if (!iter.ok()) return iter.status();
  for (;;) {
    std::vector<vecindex::Neighbor> batch = (*iter)->Next(batch_size);
    if (batch.empty()) break;
    rpc_->Charge(RpcPayloadBytes(acquired->index->Dim(), batch.size()));
    if (!sink(batch)) break;
  }
  vecindex::SearchIterator::Stats stats = (*iter)->GetStats();
  if (ledger != nullptr) {
    vecindex::scanstats::TierCounts scans = scan_scope.Delta();
    for (size_t i = 0; i < vecindex::scanstats::kNumTiers; ++i)
      ledger->distance_comps[i] += scans.dist[i];
    ledger->rows_scanned += scans.total();
    ledger->iter_batches += stats.batches;
    ledger->iter_rows_visited += stats.rows_visited;
    ledger->iter_recompute_rounds += stats.recompute_rounds;
    ledger->segments_scanned += 1;
  }
  return stats;
}

common::Result<std::vector<vecindex::Neighbor>>
RemoteIndexProxy::SearchWithFilter(
    const float* query, const vecindex::SearchParams& params) const {
  rpc_->Charge(RpcPayloadBytes(Dim(), static_cast<size_t>(params.k)));
  return peer_index_->SearchWithFilter(query, params);
}

namespace {
class RemoteIteratorProxy : public vecindex::SearchIterator {
 public:
  RemoteIteratorProxy(std::unique_ptr<vecindex::SearchIterator> inner,
                      RpcFabric* rpc, size_t dim)
      : inner_(std::move(inner)), rpc_(rpc), dim_(dim) {}

  std::vector<vecindex::Neighbor> Next(size_t batch_size) override {
    rpc_->Charge(RpcPayloadBytes(dim_, batch_size));
    return inner_->Next(batch_size);
  }
  size_t VisitedCount() const override { return inner_->VisitedCount(); }
  Stats GetStats() const override { return inner_->GetStats(); }

 private:
  std::unique_ptr<vecindex::SearchIterator> inner_;
  RpcFabric* rpc_;
  size_t dim_;
};
}  // namespace

common::Result<std::unique_ptr<vecindex::SearchIterator>>
RemoteIndexProxy::MakeIterator(const float* query,
                               const vecindex::SearchParams& params) const {
  auto inner = peer_index_->MakeIterator(query, params);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<vecindex::SearchIterator>(
      std::make_unique<RemoteIteratorProxy>(std::move(*inner), rpc_, Dim()));
}

}  // namespace blendhouse::cluster
