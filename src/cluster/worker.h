#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "cluster/index_cache.h"
#include "cluster/rpc.h"
#include "common/bitset.h"
#include "common/future.h"
#include "common/query_ledger.h"
#include "common/result.h"
#include "common/task_scheduler.h"
#include "common/threadpool.h"
#include "storage/lsm_engine.h"
#include "storage/schema.h"
#include "storage/segment.h"

namespace blendhouse::cluster {

struct WorkerOptions {
  size_t threads = 2;
  HierarchicalIndexCache::Options cache;
  /// Column-data (segment) cache budget — the paper's adaptive column cache
  /// of the read-amplification optimization.
  size_t segment_cache_bytes = 512ull << 20;
  /// Segments larger than this many rows bypass the segment cache so one
  /// giant hybrid read cannot thrash it (the paper's "row limit setting").
  size_t segment_cache_row_limit = 1u << 20;
  /// Budget for cached pre-filter bitmaps (one bit per row, so even a small
  /// budget covers many segments of a repeated hybrid predicate).
  size_t filter_bitmap_cache_bytes = 16ull << 20;
};

/// Time breakdown of one async task on a worker, reported to the completion
/// continuation. compute is wall time on the pool thread (simulated charges
/// accumulate instead of blocking, so it is pure work time); sim_io is the
/// accumulated simulated latency the delay queue then charges.
struct AsyncTaskStats {
  uint64_t queue_wait_micros = 0;
  uint64_t compute_micros = 0;
  uint64_t sim_io_micros = 0;
  /// Delay-queue shard the completion continuation was pinned to (the
  /// affinity hint modulo the scheduler's shard count); 0 when the task was
  /// dispatched without an affinity hint.
  uint64_t shard = 0;
};

/// How AcquireIndex may satisfy a request.
struct AcquireOptions {
  /// Try a peer worker's hot cache over RPC before falling back (vector
  /// search serving, paper §II-D).
  bool allow_remote_serving = true;
  /// Fall back to an on-the-fly exact scan when no index is reachable.
  bool allow_brute_force = true;
  /// Synchronously load from remote storage on miss instead of serving /
  /// brute force (the Manu-style "wait for load" behaviour, for contrast).
  bool force_local_load = false;
  /// Kick off a background load after serving via fallback so later queries
  /// hit the local cache.
  bool background_load_on_fallback = true;
};

/// A compute node of a virtual warehouse: private thread pool (its CPU),
/// hierarchical index cache, segment/column cache, and a search endpoint
/// that peers may invoke over the RPC fabric.
class Worker {
 public:
  Worker(std::string id, storage::ObjectStore* remote, RpcFabric* rpc,
         WorkerOptions options = {});

  const std::string& id() const { return id_; }
  common::ThreadPool& pool() { return pool_; }
  HierarchicalIndexCache& index_cache() { return index_cache_; }

  /// Resolves the pre-scale owner of a segment key; installed by the
  /// VirtualWarehouse so new workers can serve via old owners.
  using PeerResolver = std::function<Worker*(const std::string& index_key)>;
  void SetPeerResolver(PeerResolver resolver) {
    peer_resolver_ = std::move(resolver);
  }

  struct AcquiredIndex {
    std::shared_ptr<vecindex::VectorIndex> index;
    CacheOutcome outcome = CacheOutcome::kMemoryHit;
  };

  /// Obtains a searchable index for one segment, in preference order:
  /// memory hit -> disk hit -> (serving via previous owner) -> remote load
  /// or brute-force flat scan, per `opts`.
  common::Result<AcquiredIndex> AcquireIndex(
      const storage::TableSchema& schema, const storage::SegmentMeta& meta,
      const AcquireOptions& opts = {});

  /// Column data access with the worker-local segment cache; `use_cache`
  /// false models the un-optimized read path (Fig. 17 baseline).
  common::Result<storage::SegmentPtr> GetSegment(
      const storage::TableSchema& schema, const std::string& segment_id,
      bool use_cache = true);

  /// Memory-only probe used by peers (vector search serving answers only
  /// from the hot cache; a cold peer returns null).
  std::shared_ptr<vecindex::VectorIndex> PeekHotIndex(
      const std::string& index_key) {
    return index_cache_.PeekMemory(index_key);
  }

  /// Segment-cache-only probe used for cache-affinity routing of result
  /// materialization.
  storage::SegmentPtr PeekCachedSegment(const storage::TableSchema& schema,
                                        const std::string& segment_id) {
    auto hit = segment_cache_.Peek(
        storage::SegmentKeys::Data(schema.table_name, segment_id));
    return hit.has_value() ? *hit : nullptr;
  }

  /// Synchronously pulls a segment's index through all cache tiers
  /// (the preload path).
  common::Status PreloadIndex(const storage::TableSchema& schema,
                              const storage::SegmentMeta& meta);

  /// Async segment-search endpoint, the unit of the task-graph query path.
  /// `search` runs on this worker's compute pool under a DeferredChargeScope,
  /// so simulated I/O (object store, cache disk tier, RPC serving, DiskANN
  /// beam reads) accumulates instead of parking the pool thread. When
  /// `search` returns, `done(stats)` is scheduled on `sched`'s delay queue at
  /// now + accumulated sim-I/O: per-task wall-clock latency is preserved
  /// while the pool thread is already free to start the next segment.
  /// `search`/`done` must own everything they touch (shared query context);
  /// they may outlive the caller's stack frame. `affinity` is a stable
  /// submitter hint (the executor passes a hash of the segment id): it pins
  /// the compute task to one pool run-queue shard and the completion to one
  /// scheduler shard, so repeated tasks for a segment keep their state on a
  /// warm shard (stealing still rebalances under skew).
  void SearchSegmentAsync(common::TaskScheduler* sched,
                          std::function<void()> search,
                          std::function<void(const AsyncTaskStats&)> done,
                          size_t affinity = common::kNoAffinity);

  /// Async preload of one segment's index: same deferred-charge pattern as
  /// SearchSegmentAsync but on the background loader pool, so N preloads
  /// overlap their simulated remote reads instead of serializing on one
  /// loader thread. The future completes via `sched`'s delay queue.
  common::Future<common::Status> PreloadIndexAsync(
      common::TaskScheduler* sched, const storage::TableSchema& schema,
      const storage::SegmentMeta& meta);

  /// Streaming-batches search over one segment: acquires the segment's
  /// index, opens its (native when available) resumable iterator, and pushes
  /// successive sorted batches to `sink`, charging the RPC fabric per batch
  /// the way the one-shot path charges per call. `sink` returns false to
  /// stop the stream early (the coordinator already has enough rows — the
  /// iterator's retained state is what makes stopping cheap). Returns the
  /// iterator's final cost accounting. When `ledger` is non-null the call's
  /// resource usage (per-tier distance computations, iterator stats) is
  /// folded into it, so a remote stage's cost attributes to the owning
  /// query's system.query_log record.
  common::Result<vecindex::SearchIterator::Stats> StreamSearch(
      const storage::TableSchema& schema, const storage::SegmentMeta& meta,
      const float* query, const vecindex::SearchParams& params,
      size_t batch_size,
      const std::function<bool(const std::vector<vecindex::Neighbor>&)>& sink,
      const AcquireOptions& opts = {}, common::QueryLedger* ledger = nullptr);

  common::LruCache<storage::SegmentPtr>& segment_cache() { return segment_cache_; }

  /// Worker-level cache of pre-filter bitmaps, keyed by the executor as
  /// table/segment@delete-epoch#predicate-fingerprint. Entries are
  /// self-invalidating: a MarkDeleted commit bumps the segment's delete
  /// epoch (and compaction mints fresh segment ids), so stale bitmaps stop
  /// being looked up and age out of the LRU budget.
  std::shared_ptr<const common::Bitset> GetCachedFilterBitmap(
      const std::string& key) {
    auto hit = filter_bitmap_cache_.Get(key);
    return hit.has_value() ? *hit : nullptr;
  }
  void PutFilterBitmap(const std::string& key,
                       std::shared_ptr<const common::Bitset> bitmap) {
    size_t bytes = bitmap->words().size() * sizeof(uint64_t) + key.size();
    filter_bitmap_cache_.Put(key, std::move(bitmap), bytes);
  }
  common::LruCache<std::shared_ptr<const common::Bitset>>&
  filter_bitmap_cache() {
    return filter_bitmap_cache_;
  }

  uint64_t searches_served_for_peers() const {
    return peer_serves_.load();
  }
  void NotePeerServe() { peer_serves_.fetch_add(1); }

 private:
  common::Result<AcquiredIndex> BruteForceIndex(
      const storage::TableSchema& schema, const storage::SegmentMeta& meta,
      bool use_segment_cache);

  std::string id_;
  storage::ObjectStore* remote_;
  RpcFabric* rpc_;
  WorkerOptions options_;
  HierarchicalIndexCache index_cache_;
  common::LruCache<storage::SegmentPtr> segment_cache_;
  common::LruCache<std::shared_ptr<const common::Bitset>>
      filter_bitmap_cache_;
  PeerResolver peer_resolver_;
  std::atomic<uint64_t> peer_serves_{0};
  // The pools are declared last on purpose: their destructors drain queued
  // tasks, which touch the caches above — so the pools must die first.
  common::ThreadPool pool_;
  /// Background cache-warming I/O runs here so multi-second remote index
  /// loads never block query execution on pool_.
  common::ThreadPool loader_;
};

/// VectorIndex adapter that forwards execution-layer calls to an index held
/// hot by a peer worker, paying RPC cost per call. This is what lets a
/// freshly added worker serve queries before its own cache warms (Fig. 18).
class RemoteIndexProxy : public vecindex::VectorIndex {
 public:
  RemoteIndexProxy(std::shared_ptr<vecindex::VectorIndex> peer_index,
                   Worker* peer, RpcFabric* rpc)
      : peer_index_(std::move(peer_index)), peer_(peer), rpc_(rpc) {}

  std::string Type() const override {
    return "REMOTE(" + peer_index_->Type() + ")";
  }
  size_t Dim() const override { return peer_index_->Dim(); }
  vecindex::Metric GetMetric() const override {
    return peer_index_->GetMetric();
  }
  vecindex::Precision StoragePrecision() const override {
    return peer_index_->StoragePrecision();
  }
  size_t Size() const override { return peer_index_->Size(); }
  size_t MemoryUsage() const override { return 0; }  // lives on the peer

  common::Status Train(const float*, size_t) override {
    return common::Status::NotSupported("remote proxy is read-only");
  }
  common::Status AddWithIds(const float*, const vecindex::IdType*,
                            size_t) override {
    return common::Status::NotSupported("remote proxy is read-only");
  }
  common::Status Save(std::string*) const override {
    return common::Status::NotSupported("remote proxy is read-only");
  }
  common::Status Load(std::string_view) override {
    return common::Status::NotSupported("remote proxy is read-only");
  }

  common::Result<std::vector<vecindex::Neighbor>> SearchWithFilter(
      const float* query, const vecindex::SearchParams& params) const override;

  bool HasNativeIterator() const override {
    return peer_index_->HasNativeIterator();
  }
  common::Result<std::unique_ptr<vecindex::SearchIterator>> MakeIterator(
      const float* query,
      const vecindex::SearchParams& params) const override;

 private:
  std::shared_ptr<vecindex::VectorIndex> peer_index_;
  Worker* peer_;
  RpcFabric* rpc_;
};

}  // namespace blendhouse::cluster
