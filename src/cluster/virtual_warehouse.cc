#include "cluster/virtual_warehouse.h"

#include "common/assert.h"

namespace blendhouse::cluster {

VirtualWarehouse::VirtualWarehouse(std::string name, size_t num_workers,
                                   storage::ObjectStore* remote,
                                   RpcFabric* rpc,
                                   WorkerOptions worker_options)
    : name_(std::move(name)),
      remote_(remote),
      rpc_(rpc),
      worker_options_(worker_options) {
  common::MutexLock lock(mu_);
  for (size_t i = 0; i < num_workers; ++i) AddWorkerLocked();
}

VirtualWarehouse::~VirtualWarehouse() {
  // Stragglers from cancelled attempts may still hold leases (and call back
  // into OwnerOf/PreviousOwnerOf from worker pools); wait them out before
  // member destruction starts tearing down the worker map they resolve
  // against. Wait releases mu_, so those callbacks make progress.
  common::MutexLock lock(mu_);
  while (!active_leases_.empty()) lease_cv_.Wait(mu_);
}

VirtualWarehouse::QueryLease::QueryLease(VirtualWarehouse* vw) : vw_(vw) {
  common::MutexLock lock(vw_->mu_);
  gen_ = vw_->lease_gen_;
  ++vw_->active_leases_[gen_];
}

void VirtualWarehouse::QueryLease::Release() {
  if (vw_ == nullptr) return;
  // Notify while holding mu_: a waiter woken by this release may destroy the
  // warehouse (and this condvar) the moment it reacquires the lock, which it
  // cannot do until we are fully out of the critical section.
  common::MutexLock lock(vw_->mu_);
  auto it = vw_->active_leases_.find(gen_);
  if (--it->second == 0) {
    vw_->active_leases_.erase(it);
    vw_->lease_cv_.NotifyAll();
  }
  vw_ = nullptr;
}

Worker* VirtualWarehouse::AddWorkerLocked() {
  std::string id = name_ + "_w" + std::to_string(worker_counter_++);
  auto worker = std::make_unique<Worker>(id, remote_, rpc_, worker_options_);
  worker->SetPeerResolver(
      [this](const std::string& key) { return PreviousOwnerOf(key); });
  Worker* raw = worker.get();
  workers_[id] = std::move(worker);
  ring_.AddNode(id);
  BH_DCHECK_MSG(ring_.NumNodes() == workers_.size(),
                "ring and worker set diverged after scale-up");
  return raw;
}

Worker* VirtualWarehouse::AddWorker() {
  common::MutexLock lock(mu_);
  previous_ring_ = ring_;
  has_previous_ring_ = true;
  return AddWorkerLocked();
}

common::Status VirtualWarehouse::RemoveWorker(const std::string& id) {
  // Unlink under the lock, destroy outside it: ~Worker joins the worker's
  // compute pool, and an in-flight task there may be resolving peers through
  // OwnerOf/PreviousOwnerOf — which need mu_. Destroying under mu_ deadlocks
  // the whole warehouse the moment a scale-down races a serving query.
  std::unique_ptr<Worker> retired;
  {
    common::MutexLock lock(mu_);
    auto it = workers_.find(id);
    if (it == workers_.end())
      return common::Status::NotFound("worker: " + id);
    previous_ring_ = ring_;
    has_previous_ring_ = true;
    ring_.RemoveNode(id);
    retired = std::move(it->second);
    workers_.erase(it);
    BH_DCHECK_MSG(ring_.NumNodes() == workers_.size(),
                  "ring and worker set diverged after scale-down");
    // Grace period: a query that resolved this worker before the unlink may
    // still be dispatching to it or serving from it. Wait out every lease
    // taken before the unlink; leases taken after it (gen > cutoff) place on
    // the new ring and never see the retiring worker, so they don't gate us
    // and continuous query traffic cannot starve the scale-down.
    uint64_t cutoff = lease_gen_++;
    while (!active_leases_.empty() &&
           active_leases_.begin()->first <= cutoff)
      lease_cv_.Wait(mu_);
  }
  retired.reset();
  return common::Status::Ok();
}

size_t VirtualWarehouse::num_workers() const {
  common::MutexLock lock(mu_);
  return workers_.size();
}

std::vector<Worker*> VirtualWarehouse::workers() const {
  common::MutexLock lock(mu_);
  std::vector<Worker*> out;
  out.reserve(workers_.size());
  for (const auto& [_, w] : workers_) out.push_back(w.get());
  return out;
}

Worker* VirtualWarehouse::worker(const std::string& id) const {
  common::MutexLock lock(mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

std::string VirtualWarehouse::OwnerIdOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  return ring_.GetNode(key);
}

Worker* VirtualWarehouse::OwnerOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  std::string id = ring_.GetNode(key);
  // Placement invariant: with live workers, every key must resolve to one.
  BH_DCHECK_MSG(workers_.empty() || !id.empty(),
                "non-empty ring failed to place a key");
  auto it = workers_.find(id);
  BH_DCHECK_MSG(id.empty() || it != workers_.end(),
                "ring placed a key on a removed worker");
  return it == workers_.end() ? nullptr : it->second.get();
}

Worker* VirtualWarehouse::PreviousOwnerOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  if (!has_previous_ring_) return nullptr;
  std::string id = previous_ring_.GetNode(key);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

void VirtualWarehouse::DropAllCaches() {
  common::MutexLock lock(mu_);
  for (auto& [_, w] : workers_) {
    w->index_cache().Clear();
    w->segment_cache().Clear();
  }
}

}  // namespace blendhouse::cluster
