#include "cluster/virtual_warehouse.h"

#include "common/assert.h"

namespace blendhouse::cluster {

VirtualWarehouse::VirtualWarehouse(std::string name, size_t num_workers,
                                   storage::ObjectStore* remote,
                                   RpcFabric* rpc,
                                   WorkerOptions worker_options)
    : name_(std::move(name)),
      remote_(remote),
      rpc_(rpc),
      worker_options_(worker_options) {
  common::MutexLock lock(mu_);
  for (size_t i = 0; i < num_workers; ++i) AddWorkerLocked();
}

Worker* VirtualWarehouse::AddWorkerLocked() {
  std::string id = name_ + "_w" + std::to_string(worker_counter_++);
  auto worker = std::make_unique<Worker>(id, remote_, rpc_, worker_options_);
  worker->SetPeerResolver(
      [this](const std::string& key) { return PreviousOwnerOf(key); });
  Worker* raw = worker.get();
  workers_[id] = std::move(worker);
  ring_.AddNode(id);
  BH_DCHECK_MSG(ring_.NumNodes() == workers_.size(),
                "ring and worker set diverged after scale-up");
  return raw;
}

Worker* VirtualWarehouse::AddWorker() {
  common::MutexLock lock(mu_);
  previous_ring_ = ring_;
  has_previous_ring_ = true;
  return AddWorkerLocked();
}

common::Status VirtualWarehouse::RemoveWorker(const std::string& id) {
  common::MutexLock lock(mu_);
  auto it = workers_.find(id);
  if (it == workers_.end())
    return common::Status::NotFound("worker: " + id);
  previous_ring_ = ring_;
  has_previous_ring_ = true;
  ring_.RemoveNode(id);
  workers_.erase(it);
  BH_DCHECK_MSG(ring_.NumNodes() == workers_.size(),
                "ring and worker set diverged after scale-down");
  return common::Status::Ok();
}

size_t VirtualWarehouse::num_workers() const {
  common::MutexLock lock(mu_);
  return workers_.size();
}

std::vector<Worker*> VirtualWarehouse::workers() const {
  common::MutexLock lock(mu_);
  std::vector<Worker*> out;
  out.reserve(workers_.size());
  for (const auto& [_, w] : workers_) out.push_back(w.get());
  return out;
}

Worker* VirtualWarehouse::worker(const std::string& id) const {
  common::MutexLock lock(mu_);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

std::string VirtualWarehouse::OwnerIdOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  return ring_.GetNode(key);
}

Worker* VirtualWarehouse::OwnerOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  std::string id = ring_.GetNode(key);
  // Placement invariant: with live workers, every key must resolve to one.
  BH_DCHECK_MSG(workers_.empty() || !id.empty(),
                "non-empty ring failed to place a key");
  auto it = workers_.find(id);
  BH_DCHECK_MSG(id.empty() || it != workers_.end(),
                "ring placed a key on a removed worker");
  return it == workers_.end() ? nullptr : it->second.get();
}

Worker* VirtualWarehouse::PreviousOwnerOf(const std::string& key) const {
  common::MutexLock lock(mu_);
  if (!has_previous_ring_) return nullptr;
  std::string id = previous_ring_.GetNode(key);
  auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

void VirtualWarehouse::DropAllCaches() {
  common::MutexLock lock(mu_);
  for (auto& [_, w] : workers_) {
    w->index_cache().Clear();
    w->segment_cache().Clear();
  }
}

}  // namespace blendhouse::cluster
