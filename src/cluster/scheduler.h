#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/virtual_warehouse.h"
#include "common/future.h"
#include "common/status.h"
#include "storage/partitioner.h"
#include "storage/segment.h"
#include "storage/version.h"

namespace blendhouse::cluster {

/// Segment-pruning and placement decisions made before query execution
/// (paper §II-C "Plan scheduling" and §IV-B).
class Scheduler {
 public:
  /// Prunes segments that cannot match the scalar predicates. `may_match`
  /// inspects a segment's partition key and numeric min/max ranges; pruning
  /// must be conservative (only drop segments that provably cannot match).
  static std::vector<storage::SegmentMeta> PruneScalar(
      const std::vector<storage::SegmentMeta>& segments,
      const std::function<bool(const storage::SegmentMeta&)>& may_match);

  /// Keeps segments whose semantic bucket is among the `probe_buckets`
  /// buckets nearest to the query vector. Segments without a bucket
  /// (bucket < 0, e.g. pre-CLUSTER BY data) are always kept.
  static std::vector<storage::SegmentMeta> PruneSemantic(
      const std::vector<storage::SegmentMeta>& segments,
      const storage::SemanticPartitioner& partitioner, const float* query,
      size_t probe_buckets);

  /// Ring-based placement: segment -> owning worker id under the VW's
  /// current topology. Keyed by the segment's *index* object key so the
  /// query scheduler and the preloader agree on ownership.
  static std::map<std::string, std::vector<storage::SegmentMeta>> Assign(
      const VirtualWarehouse& vw, const std::string& table_name,
      const std::vector<storage::SegmentMeta>& segments);

  /// Placement key for one segment.
  static std::string PlacementKey(const std::string& table_name,
                                  const storage::SegmentMeta& meta) {
    return storage::SegmentKeys::Index(table_name, meta.segment_id);
  }
};

/// Cache-aware vector index preload (paper §II-D): pushes every live
/// segment's index into the memory+disk caches of the worker that the
/// query scheduler will route it to. Eliminates cold-start misses for
/// freshly ingested data.
///
/// Fully async: every per-segment load runs under a deferred-charge scope on
/// its worker's loader pool and completes through the VW task scheduler's
/// delay queue, so simulated remote reads overlap instead of serializing.
/// The returned future resolves to Ok, or the first failure, once every load
/// finished.
common::Future<common::Status> PreloadIndexesAsync(
    VirtualWarehouse& vw, const storage::TableSchema& schema,
    const storage::TableSnapshot& snapshot);

/// Blocking convenience wrapper over PreloadIndexesAsync for sync callers.
common::Status PreloadIndexes(VirtualWarehouse& vw,
                              const storage::TableSchema& schema,
                              const storage::TableSnapshot& snapshot);

}  // namespace blendhouse::cluster
