#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blendhouse::cluster {

/// Multi-probe consistent hashing ring (Appleton & O'Reilly, the paper's
/// Fig. 3). Each node is placed on the ring exactly once; each key is hashed
/// with `num_probes` independent hash functions and assigned to the node
/// that is closest in the clockwise direction from any probe. More probes
/// give a more balanced allocation than classic one-probe consistent
/// hashing without virtual-node memory blowup, and node add/remove still
/// only moves the minimal fraction of keys.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(size_t num_probes = 21)
      : num_probes_(num_probes) {}

  void AddNode(const std::string& node_id);
  void RemoveNode(const std::string& node_id);
  bool HasNode(const std::string& node_id) const;
  size_t NumNodes() const { return ring_.size(); }
  std::vector<std::string> Nodes() const;

  /// Owner node of `key`; empty string when the ring is empty.
  std::string GetNode(const std::string& key) const;

  size_t num_probes() const { return num_probes_; }

 private:
  size_t num_probes_;
  /// ring position -> node id. One entry per node (multi-probe hashes the
  /// *keys* many times, not the nodes).
  std::map<uint64_t, std::string> ring_;
};

/// Stable 64-bit hash of (text, seed) used for ring placement and probes.
uint64_t HashWithSeed(const std::string& text, uint64_t seed);

}  // namespace blendhouse::cluster
