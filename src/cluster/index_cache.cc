#include "cluster/index_cache.h"

#include "common/task_scheduler.h"

namespace blendhouse::cluster {

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMemoryHit:
      return "memory_hit";
    case CacheOutcome::kDiskHit:
      return "disk_hit";
    case CacheOutcome::kRemoteLoad:
      return "remote_load";
    case CacheOutcome::kRemoteServing:
      return "remote_serving";
    case CacheOutcome::kBruteForce:
      return "brute_force";
  }
  return "?";
}

HierarchicalIndexCache::HierarchicalIndexCache(storage::ObjectStore* remote,
                                               Options options)
    : remote_(remote),
      options_(options),
      memory_(options.memory_bytes),
      metadata_(options.metadata_bytes),
      disk_(options.disk_bytes) {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  memory_.InstrumentMetrics(
      reg.GetCounter("bh_index_cache_memory_hits_total"),
      reg.GetCounter("bh_index_cache_memory_misses_total"),
      reg.GetCounter("bh_index_cache_memory_evictions_total"),
      reg.GetGauge("bh_index_cache_memory_bytes"));
  disk_.InstrumentMetrics(
      reg.GetCounter("bh_index_cache_disk_hits_total"),
      reg.GetCounter("bh_index_cache_disk_misses_total"),
      reg.GetCounter("bh_index_cache_disk_evictions_total"),
      reg.GetGauge("bh_index_cache_disk_bytes"));
}

void HierarchicalIndexCache::ChargeDiskLatency(size_t bytes) const {
  if (!options_.disk_cost.simulate_latency) return;
  int64_t micros = options_.disk_cost.base_latency_micros +
                   static_cast<int64_t>(static_cast<double>(bytes) /
                                        options_.disk_cost.bytes_per_micro);
  if (micros > 0) common::ChargeSimLatency(static_cast<uint64_t>(micros));
}

void HierarchicalIndexCache::InsertAllTiers(
    const std::string& key, std::string bytes,
    std::shared_ptr<vecindex::VectorIndex> index) {
  auto meta = std::make_shared<IndexMetaInfo>();
  meta->index_type = index->Type();
  meta->num_vectors = index->Size();
  meta->memory_bytes = index->MemoryUsage();
  metadata_.Put(key, meta, sizeof(IndexMetaInfo) + meta->index_type.size());
  size_t disk_bytes = bytes.size();
  disk_.Put(key, std::make_shared<std::string>(std::move(bytes)), disk_bytes);
  memory_.Put(key, index, index->MemoryUsage());
}

common::Result<HierarchicalIndexCache::GetResult>
HierarchicalIndexCache::GetOrLoad(const std::string& key,
                                  const vecindex::IndexSpec& spec) {
  if (auto hit = memory_.Get(key))
    return GetResult{*hit, CacheOutcome::kMemoryHit};

  // Disk tier: pay local-disk latency, then deserialize into memory.
  if (auto disk_hit = disk_.Get(key)) {
    ChargeDiskLatency((*disk_hit)->size());
    auto index =
        vecindex::IndexFactory::Global().CreateFromSaved(spec, **disk_hit);
    if (!index.ok()) return index.status();
    std::shared_ptr<vecindex::VectorIndex> shared = std::move(*index);
    memory_.Put(key, shared, shared->MemoryUsage());
    disk_hits_.fetch_add(1, std::memory_order_relaxed);
    return GetResult{shared, CacheOutcome::kDiskHit};
  }

  // Remote object store (pays the remote latency model inside Get).
  auto bytes = remote_->Get(key);
  if (!bytes.ok()) return bytes.status();
  auto index = vecindex::IndexFactory::Global().CreateFromSaved(spec, *bytes);
  if (!index.ok()) return index.status();
  std::shared_ptr<vecindex::VectorIndex> shared = std::move(*index);
  InsertAllTiers(key, std::move(*bytes), shared);
  remote_loads_.fetch_add(1, std::memory_order_relaxed);
  static common::metrics::Counter* remote_loads_metric =
      common::metrics::MetricsRegistry::Instance().GetCounter(
          "bh_index_cache_remote_loads_total");
  remote_loads_metric->Add(1);
  return GetResult{shared, CacheOutcome::kRemoteLoad};
}

std::shared_ptr<vecindex::VectorIndex> HierarchicalIndexCache::PeekMemory(
    const std::string& key) {
  auto hit = memory_.Peek(key);
  return hit.has_value() ? *hit : nullptr;
}

std::optional<IndexMetaInfo> HierarchicalIndexCache::GetMeta(
    const std::string& key) {
  auto hit = metadata_.Get(key);
  if (!hit.has_value()) return std::nullopt;
  return **hit;
}

void HierarchicalIndexCache::Evict(const std::string& key) {
  memory_.Erase(key);
  disk_.Erase(key);
  metadata_.Erase(key);
}

void HierarchicalIndexCache::Clear() {
  memory_.Clear();
  disk_.Clear();
  metadata_.Clear();
}

}  // namespace blendhouse::cluster
