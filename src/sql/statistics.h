#pragma once

#include <map>
#include <string>
#include <vector>

#include "sql/expression.h"
#include "storage/segment.h"

namespace blendhouse::sql {

/// Equi-depth histogram over a numeric column, built from sampled rows —
/// the selectivity estimator the cost model's `s` term relies on (the paper
/// cites Poosala et al. histograms).
class ColumnHistogram {
 public:
  /// Builds from (unsorted) samples with ~`buckets` equi-depth buckets.
  static ColumnHistogram Build(std::vector<double> samples,
                               size_t buckets = 32);

  bool empty() const { return bounds_.empty(); }

  /// Fraction of values in [lo, hi] (inclusive), interpolated inside
  /// boundary buckets.
  double EstimateRange(double lo, double hi) const;

  /// Fraction of values satisfying `value op column`... i.e. column op value.
  double EstimateCompare(Expr::CmpOp op, double value) const;

 private:
  /// bounds_[i] .. bounds_[i+1] holds depth_fraction_ of the mass.
  std::vector<double> bounds_;
  double bucket_fraction_ = 0.0;
};

/// Per-table statistics for the cost-based optimizer: row count, numeric
/// histograms, and string distinct-value estimates.
class TableStatistics {
 public:
  /// Samples up to `max_sample_rows` rows across the given segments.
  static TableStatistics Build(const std::vector<storage::SegmentPtr>& segments,
                               size_t max_sample_rows = 20000);

  uint64_t num_rows() const { return num_rows_; }
  uint64_t version() const { return version_; }
  void set_version(uint64_t v) { version_ = v; }

  /// Estimated fraction of rows satisfying `expr` in [0, 1]. Unknown
  /// predicates fall back to conservative defaults (LIKE/REGEXP: 0.1).
  double EstimateSelectivity(const Expr& expr) const;

  const ColumnHistogram* histogram(const std::string& column) const {
    auto it = histograms_.find(column);
    return it == histograms_.end() ? nullptr : &it->second;
  }

 private:
  uint64_t num_rows_ = 0;
  uint64_t version_ = 0;
  std::map<std::string, ColumnHistogram> histograms_;
  /// Estimated distinct count for string columns (for equality selectivity).
  std::map<std::string, double> string_ndv_;
};

}  // namespace blendhouse::sql
