#include "sql/optimizer.h"

#include <algorithm>

namespace blendhouse::sql {

namespace {

/// Pulls the execution descriptor out of an optimized plan tree.
BoundQuery ExtractBoundQuery(PlanNode* root, const SelectStmt& stmt) {
  BoundQuery bound;
  bound.table = stmt.table;
  bound.scalar_limit = stmt.scalar_limit;
  bound.scalar_offset = stmt.scalar_offset;

  PlanNode* project = root->FindNode(PlanNode::Kind::kProject);
  if (project != nullptr) {
    bound.output_columns = project->columns;
    bound.distance_alias = project->distance_alias;
  }
  PlanNode* filter = root->FindNode(PlanNode::Kind::kFilter);
  if (filter != nullptr && filter->predicate != nullptr)
    bound.filter = filter->predicate->Clone();

  PlanNode* ann = root->FindNode(PlanNode::Kind::kAnnScan);
  if (ann != nullptr) {
    bound.has_ann = true;
    bound.vector_column = ann->vector_column;
    bound.query_vector = ann->query_vector;
    bound.metric = ann->metric;
    bound.k = ann->pushed_k;
    bound.offset = ann->pushed_offset;
    bound.range = ann->pushed_range;
    bound.range_exclusive = ann->range_exclusive;
    bound.read_vector_column = ann->read_vector_column;
  } else if (PlanNode* scan = root->FindNode(PlanNode::Kind::kScan)) {
    bound.read_vector_column = scan->read_vector_column;
  }
  return bound;
}

}  // namespace

PlanCostInputs BuildCostInputs(const BoundQuery& bound,
                               const storage::TableSchema& schema,
                               const TableStatistics* stats,
                               const QuerySettings& settings) {
  PlanCostInputs in;
  in.n = stats != nullptr ? stats->num_rows() : 100000;
  // Pagination widens every per-segment fetch: the scan materializes
  // k+offset candidates even though only k are returned.
  in.k = bound.k + bound.offset;
  in.s = 1.0;
  if (bound.filter != nullptr && stats != nullptr)
    in.s = stats->EstimateSelectivity(*bound.filter);

  // beta/gamma: fraction of tuples an ANN scan visits at the configured
  // knobs. Graph indexes visit ~ef_search nodes per segment; IVF visits
  // nprobe/nlist of the data.
  double visited_fraction = 0.05;
  if (schema.index_spec.has_value()) {
    const std::string& type = schema.index_spec->type;
    if (type.rfind("IVF", 0) == 0) {
      int64_t nlist = schema.index_spec->GetInt("NLIST", 64);
      visited_fraction =
          std::clamp(static_cast<double>(settings.nprobe) /
                         static_cast<double>(std::max<int64_t>(1, nlist)),
                     0.001, 1.0);
    } else {
      visited_fraction = std::clamp(
          static_cast<double>(settings.ef_search) /
              static_cast<double>(std::max<uint64_t>(1, in.n)),
          0.0001, 1.0);
    }
  }
  in.beta = visited_fraction;
  // The bitmap scan visits slightly more than the plain scan at equal knobs
  // (filtered-out entries still cost traversal).
  in.gamma = std::min(1.0, visited_fraction * 1.25);
  return in;
}

common::Result<OptimizedQuery> Optimize(const SelectStmt& stmt,
                                        const storage::TableSchema& schema,
                                        const TableStatistics* stats,
                                        const QuerySettings& settings) {
  auto plan = BuildLogicalPlan(stmt, schema);
  if (!plan.ok()) return plan.status();

  OptimizedQuery out;
  std::string alias = stmt.ann.has_value() ? stmt.ann->alias : "";
  out.rules_fired = ApplyRewriteRules(plan->get(), schema, alias);
  out.bound = ExtractBoundQuery(plan->get(), stmt);
  out.explain = ExplainPlan(**plan);

  if (out.bound.has_ann) {
    PlanCostInputs in = BuildCostInputs(out.bound, schema, stats, settings);
    out.estimated_selectivity = in.s;
    if (settings.forced_strategy.has_value()) {
      out.choice.strategy = *settings.forced_strategy;
    } else if (!settings.use_cbo || out.bound.filter == nullptr) {
      // Unfiltered searches always take the plain index path (modeled as
      // post-filter with a null predicate). With CBO off, filtered queries
      // fall back to the fixed default strategy.
      out.choice.strategy = out.bound.filter == nullptr
                                ? ExecStrategy::kPostFilter
                                : settings.default_strategy;
    } else {
      CostModelParams params = CostModelParams::ForIndex(
          schema.VectorDim(),
          schema.index_spec.has_value() ? schema.index_spec->type : "FLAT",
          schema.index_spec.has_value()
              ? static_cast<size_t>(schema.index_spec->GetInt("M", 16))
              : 16);
      params.sigma = std::max(1, settings.refine_factor);
      out.choice = ChooseStrategy(in, params);
    }
  }
  return out;
}

common::Result<OptimizedQuery> ShortCircuitOptimize(
    const SelectStmt& stmt, const storage::TableSchema& schema,
    ExecStrategy strategy) {
  // Only straightforward hybrid patterns qualify: no distance alias in the
  // WHERE clause and no embedding in the output.
  if (stmt.ann.has_value() && stmt.where != nullptr) {
    std::vector<std::string> cols;
    stmt.where->CollectColumns(&cols);
    for (const std::string& c : cols)
      if (c == stmt.ann->alias)
        return common::Status::NotSupported(
            "range constraint needs the full optimizer");
  }
  if (schema.vector_column >= 0) {
    const std::string& vec_name = schema.columns[schema.vector_column].name;
    for (const std::string& c : stmt.select_columns)
      if (c == vec_name)
        return common::Status::NotSupported(
            "vector output needs the full optimizer");
    if (stmt.select_star)
      return common::Status::NotSupported(
          "SELECT * needs the full optimizer");
  }

  OptimizedQuery out;
  BoundQuery& bound = out.bound;
  bound.table = stmt.table;
  bound.scalar_limit = stmt.scalar_limit;
  bound.scalar_offset = stmt.scalar_offset;
  bound.output_columns = stmt.select_columns;
  if (stmt.where != nullptr) {
    std::vector<std::string> cols;
    stmt.where->CollectColumns(&cols);
    for (const std::string& c : cols)
      if (schema.FindColumn(c) < 0)
        return common::Status::InvalidArgument("unknown column in WHERE: " +
                                               c);
    bound.filter = stmt.where->Clone();
  }
  if (stmt.ann.has_value()) {
    const AnnClause& ann = *stmt.ann;
    int col = schema.FindColumn(ann.vector_column);
    if (col < 0 ||
        schema.columns[col].type != storage::ColumnType::kFloatVector)
      return common::Status::InvalidArgument("bad vector column: " +
                                             ann.vector_column);
    if (schema.VectorDim() != 0 &&
        ann.query_vector.size() != schema.VectorDim())
      return common::Status::InvalidArgument("query vector dim mismatch");
    bound.has_ann = true;
    bound.vector_column = ann.vector_column;
    bound.query_vector = ann.query_vector;
    bound.metric = MetricFromDistanceFn(ann.distance_fn);
    bound.k = ann.limit;
    bound.offset = ann.offset;
    bound.distance_alias = ann.alias;
    bound.read_vector_column = false;  // the qualifying shapes never need it
  }
  for (const std::string& c : bound.output_columns) {
    if (c == bound.distance_alias) continue;
    if (schema.FindColumn(c) < 0)
      return common::Status::InvalidArgument("unknown column in SELECT: " + c);
  }
  out.choice.strategy =
      bound.filter == nullptr ? ExecStrategy::kPostFilter : strategy;
  return out;
}

}  // namespace blendhouse::sql
