#include "sql/plan_cache.h"

namespace blendhouse::sql {

std::optional<CachedPlan> PlanCache::Get(const std::string& signature) {
  common::MutexLock lock(mu_);
  auto it = map_.find(signature);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void PlanCache::Put(const std::string& signature, CachedPlan plan) {
  common::MutexLock lock(mu_);
  auto it = map_.find(signature);
  if (it != map_.end()) {
    it->second->second = plan;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(signature, plan);
  map_[signature] = order_.begin();
  while (map_.size() > capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
}

void PlanCache::Invalidate() {
  common::MutexLock lock(mu_);
  map_.clear();
  order_.clear();
}

size_t PlanCache::size() const {
  common::MutexLock lock(mu_);
  return map_.size();
}

}  // namespace blendhouse::sql
