#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/cost_model.h"
#include "sql/logical_plan.h"
#include "sql/settings.h"
#include "sql/statistics.h"

namespace blendhouse::sql {

/// Fully bound, optimizer-output description of one SELECT, consumed by the
/// distributed executor.
struct BoundQuery {
  std::string table;
  /// Scalar predicate after distance-range pushdown (may be null).
  ExprPtr filter;

  bool has_ann = false;
  std::string vector_column;
  std::vector<float> query_vector;
  vecindex::Metric metric = vecindex::Metric::kL2;
  size_t k = 0;
  /// Rows skipped before the k returned (LIMIT k OFFSET n): segments fetch
  /// k+offset candidates, the coordinator drops the first `offset` globally.
  size_t offset = 0;
  /// Distance range pushed down from the WHERE clause (< 0 = none).
  double range = -1.0;
  /// True when the range bound is exclusive (`alias < r`).
  bool range_exclusive = false;

  /// Does `dist` satisfy the pushed range constraint (or is there none)?
  bool InRange(float dist) const {
    if (range < 0) return true;
    double d = static_cast<double>(dist);
    return range_exclusive ? d < range : d <= range;
  }

  std::vector<std::string> output_columns;
  std::string distance_alias;
  bool read_vector_column = true;
  std::optional<size_t> scalar_limit;
  std::optional<size_t> scalar_offset;
};

struct OptimizedQuery {
  BoundQuery bound;
  /// Chosen physical strategy (meaningful when bound.has_ann).
  StrategyChoice choice{ExecStrategy::kPostFilter, 0, 0, 0};
  double estimated_selectivity = 1.0;
  int rules_fired = 0;
  std::string explain;
};

/// Full optimization pipeline: logical plan -> rewrite rules -> cost-based
/// strategy choice (Eqs. 1-3 with histogram selectivity). `stats` may be
/// null (falls back to default selectivity).
common::Result<OptimizedQuery> Optimize(const SelectStmt& stmt,
                                        const storage::TableSchema& schema,
                                        const TableStatistics* stats,
                                        const QuerySettings& settings);

/// Short-circuit path (paper §IV-C): builds the BoundQuery directly for
/// simple hybrid patterns, skipping plan-tree construction and rule
/// machinery. Strategy comes from `strategy` (e.g. a plan-cache hit or the
/// settings default). Returns NotSupported for shapes that need the full
/// optimizer (range pushdown in WHERE, vector column in output).
common::Result<OptimizedQuery> ShortCircuitOptimize(
    const SelectStmt& stmt, const storage::TableSchema& schema,
    ExecStrategy strategy);

/// Estimates beta/gamma (visited-tuple fractions) from search knobs and the
/// index definition.
PlanCostInputs BuildCostInputs(const BoundQuery& bound,
                               const storage::TableSchema& schema,
                               const TableStatistics* stats,
                               const QuerySettings& settings);

}  // namespace blendhouse::sql
