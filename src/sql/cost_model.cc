#include "sql/cost_model.h"

#include <algorithm>

namespace blendhouse::sql {

const char* ExecStrategyName(ExecStrategy s) {
  switch (s) {
    case ExecStrategy::kBruteForce:
      return "brute_force";
    case ExecStrategy::kPreFilter:
      return "pre_filter";
    case ExecStrategy::kPostFilter:
      return "post_filter";
  }
  return "?";
}

CostModelParams CostModelParams::ForIndex(size_t dim,
                                          const std::string& index_type,
                                          size_t graph_degree) {
  CostModelParams p;
  p.c_d = static_cast<double>(std::max<size_t>(1, dim));
  bool graph = index_type.rfind("HNSW", 0) == 0 || index_type == "FLAT";
  double edges = static_cast<double>(std::max<size_t>(1, graph_degree));
  if (index_type == "IVFPQ" || index_type == "IVFPQFS") {
    // ADC: one table lookup per subquantizer (~dim/8 adds) plus overhead.
    p.c_c = static_cast<double>(std::max<size_t>(2, dim / 8));
  } else if (index_type == "HNSWSQ") {
    // Every settled node expands ~M neighbors; byte decode halves the
    // per-distance cost.
    p.c_c = edges * p.c_d * 0.5;
  } else if (graph) {
    // Settling one graph node evaluates distances to ~M discovered
    // neighbors; this is what the "visited record" of Eqs. 2/3 costs on a
    // graph index, and why brute force wins at low pass fractions (the
    // paper's observed CBO behaviour).
    p.c_c = edges * p.c_d;
  } else {
    p.c_c = p.c_d;  // IVFFLAT postings fetch whole vectors
  }
  // Bitmap-scan per-visit cost: IVF skips the code on a bitmap miss (~one
  // test); a graph scan pays the traversal cost at every visited node
  // regardless of the bitmap outcome.
  p.c_p = graph ? p.c_c + 1.0 : 1.0;
  return p;
}

namespace {
double ClampSelectivity(double s) { return std::clamp(s, 1e-4, 1.0); }
}  // namespace

double CostPlanA(const PlanCostInputs& in, const CostModelParams& p) {
  double t0 = p.t0_per_row * static_cast<double>(in.n);
  return t0 + ClampSelectivity(in.s) * static_cast<double>(in.n) * p.c_d;
}

double CostPlanB(const PlanCostInputs& in, const CostModelParams& p) {
  double s = ClampSelectivity(in.s);
  double t0 = p.t0_per_row * static_cast<double>(in.n);
  double scan = in.gamma * static_cast<double>(in.n) * (1.0 / s) *
                (p.c_p + s * p.c_c);
  double refine = p.sigma * static_cast<double>(in.k) * p.c_d;
  return t0 + scan + refine;
}

double CostPlanC(const PlanCostInputs& in, const CostModelParams& p) {
  double s = ClampSelectivity(in.s);
  double scan = in.beta * static_cast<double>(in.n) * (1.0 / s) * p.c_c;
  double refine = p.sigma * static_cast<double>(in.k) * p.c_d;
  return scan + refine;
}

StrategyChoice ChooseStrategy(const PlanCostInputs& in,
                              const CostModelParams& p) {
  StrategyChoice choice;
  choice.cost_a = CostPlanA(in, p);
  choice.cost_b = CostPlanB(in, p);
  choice.cost_c = CostPlanC(in, p);
  choice.strategy = ExecStrategy::kBruteForce;
  double best = choice.cost_a;
  if (choice.cost_b < best) {
    best = choice.cost_b;
    choice.strategy = ExecStrategy::kPreFilter;
  }
  if (choice.cost_c < best) {
    choice.strategy = ExecStrategy::kPostFilter;
  }
  return choice;
}

}  // namespace blendhouse::sql
