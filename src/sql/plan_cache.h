#pragma once

#include <atomic>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "sql/cost_model.h"

namespace blendhouse::sql {

/// What a plan-cache entry preserves across parameter-varying repeats of the
/// same query shape: the chosen physical strategy and the rule outcomes, so
/// re-execution skips statistics lookup, the rewrite passes, and cost
/// evaluation (paper §IV-C "query processing overhead").
struct CachedPlan {
  ExecStrategy strategy = ExecStrategy::kPostFilter;
  double estimated_selectivity = 1.0;
  int rules_fired = 0;
};

/// LRU cache keyed by the parameterized query signature ("SELECT id FROM t
/// WHERE x > ? ORDER BY L2DISTANCE ( emb , ? ) LIMIT ?"). The signature is
/// the "extended plan matching" — structurally identical queries with
/// different literals, thresholds, and search vectors hit the same entry.
/// Thread-safe: benches issue Query() from many client threads, all of which
/// funnel through one PlanCache.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  std::optional<CachedPlan> Get(const std::string& signature) EXCLUDES(mu_);
  void Put(const std::string& signature, CachedPlan plan) EXCLUDES(mu_);

  /// Drops all entries (table schema changed / stats refreshed).
  void Invalidate() EXCLUDES(mu_);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable common::Mutex mu_{common::lockrank::kPlanCache};
  std::list<std::pair<std::string, CachedPlan>> order_ GUARDED_BY(mu_);
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedPlan>>::iterator>
      map_ GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace blendhouse::sql
