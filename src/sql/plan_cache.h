#ifndef BLENDHOUSE_SQL_PLAN_CACHE_H_
#define BLENDHOUSE_SQL_PLAN_CACHE_H_

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sql/cost_model.h"

namespace blendhouse::sql {

/// What a plan-cache entry preserves across parameter-varying repeats of the
/// same query shape: the chosen physical strategy and the rule outcomes, so
/// re-execution skips statistics lookup, the rewrite passes, and cost
/// evaluation (paper §IV-C "query processing overhead").
struct CachedPlan {
  ExecStrategy strategy = ExecStrategy::kPostFilter;
  double estimated_selectivity = 1.0;
  int rules_fired = 0;
};

/// LRU cache keyed by the parameterized query signature ("SELECT id FROM t
/// WHERE x > ? ORDER BY L2DISTANCE ( emb , ? ) LIMIT ?"). The signature is
/// the "extended plan matching" — structurally identical queries with
/// different literals, thresholds, and search vectors hit the same entry.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  std::optional<CachedPlan> Get(const std::string& signature);
  void Put(const std::string& signature, CachedPlan plan);

  /// Drops all entries (table schema changed / stats refreshed).
  void Invalidate();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<std::string, CachedPlan>> order_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedPlan>>::iterator>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace blendhouse::sql

#endif  // BLENDHOUSE_SQL_PLAN_CACHE_H_
