#include "sql/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

namespace blendhouse::sql {

ColumnHistogram ColumnHistogram::Build(std::vector<double> samples,
                                       size_t buckets) {
  ColumnHistogram h;
  if (samples.empty()) return h;
  std::sort(samples.begin(), samples.end());
  buckets = std::min(buckets, samples.size());
  h.bucket_fraction_ = 1.0 / static_cast<double>(buckets);
  h.bounds_.reserve(buckets + 1);
  for (size_t b = 0; b <= buckets; ++b) {
    size_t idx = b * (samples.size() - 1) / buckets;
    h.bounds_.push_back(samples[idx]);
  }
  return h;
}

double ColumnHistogram::EstimateRange(double lo, double hi) const {
  if (bounds_.empty() || lo > hi) return 0.0;
  double total = 0.0;
  for (size_t b = 0; b + 1 < bounds_.size(); ++b) {
    double blo = bounds_[b];
    double bhi = bounds_[b + 1];
    if (bhi < lo || blo > hi) continue;
    double width = bhi - blo;
    if (width <= 0) {
      // Degenerate bucket (repeated value): counted iff it intersects.
      total += bucket_fraction_;
      continue;
    }
    double overlap = std::min(hi, bhi) - std::max(lo, blo);
    total += bucket_fraction_ * std::clamp(overlap / width, 0.0, 1.0);
  }
  return std::clamp(total, 0.0, 1.0);
}

double ColumnHistogram::EstimateCompare(Expr::CmpOp op, double value) const {
  if (bounds_.empty()) return 0.3;
  double lo = bounds_.front();
  double hi = bounds_.back();
  switch (op) {
    case Expr::CmpOp::kLt:
    case Expr::CmpOp::kLe:
      return EstimateRange(lo, value);
    case Expr::CmpOp::kGt:
    case Expr::CmpOp::kGe:
      return EstimateRange(value, hi);
    case Expr::CmpOp::kEq:
      // Point estimate: mass of one "value-wide" sliver, floored.
      return std::max(EstimateRange(value, value), 1e-4);
    case Expr::CmpOp::kNe:
      return 1.0 - std::max(EstimateRange(value, value), 1e-4);
  }
  return 0.3;
}

TableStatistics TableStatistics::Build(
    const std::vector<storage::SegmentPtr>& segments, size_t max_sample_rows) {
  TableStatistics stats;
  std::map<std::string, std::vector<double>> numeric_samples;
  std::map<std::string, std::unordered_set<std::string>> string_values;
  size_t sampled = 0;

  for (const storage::SegmentPtr& segment : segments) {
    stats.num_rows_ += segment->num_rows();
  }
  if (stats.num_rows_ == 0) return stats;

  // Proportional sampling with a fixed stride per segment.
  for (const storage::SegmentPtr& segment : segments) {
    size_t n = segment->num_rows();
    size_t budget = std::max<size_t>(
        1, max_sample_rows * n / static_cast<size_t>(stats.num_rows_));
    size_t stride = std::max<size_t>(1, n / budget);
    for (size_t i = 0; i < n; i += stride) {
      for (size_t c = 0; c < segment->num_columns(); ++c) {
        const storage::Column& col = segment->column(c);
        switch (col.type()) {
          case storage::ColumnType::kInt64:
          case storage::ColumnType::kFloat64:
            numeric_samples[col.name()].push_back(col.GetNumeric(i));
            break;
          case storage::ColumnType::kString:
            string_values[col.name()].insert(std::string(col.GetString(i)));
            break;
          default:
            break;
        }
      }
      if (++sampled >= max_sample_rows) break;
    }
    if (sampled >= max_sample_rows) break;
  }

  for (auto& [name, samples] : numeric_samples)
    stats.histograms_[name] = ColumnHistogram::Build(std::move(samples));
  for (auto& [name, values] : string_values)
    stats.string_ndv_[name] =
        std::max<double>(1.0, static_cast<double>(values.size()));
  return stats;
}

namespace {

/// Flattens an AND subtree into its conjunct list.
void CollectConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kAnd) {
    CollectConjuncts(*expr.children[0], out);
    CollectConjuncts(*expr.children[1], out);
  } else {
    out->push_back(&expr);
  }
}

/// Numeric column-vs-literal compare? Extracts (column, op, value).
bool AsNumericCompare(const Expr& expr, std::string* column, Expr::CmpOp* op,
                      double* value) {
  if (expr.kind != Expr::Kind::kCompare ||
      expr.children[0]->kind != Expr::Kind::kColumn ||
      expr.children[1]->kind != Expr::Kind::kLiteral)
    return false;
  const storage::Value& lit = expr.children[1]->literal;
  if (const int64_t* i = std::get_if<int64_t>(&lit))
    *value = static_cast<double>(*i);
  else if (const double* d = std::get_if<double>(&lit))
    *value = *d;
  else
    return false;
  *column = expr.children[0]->column;
  *op = expr.op;
  return true;
}

}  // namespace

double TableStatistics::EstimateSelectivity(const Expr& expr) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      // Same-column comparisons inside one AND chain form an interval and
      // must be estimated together: `a >= lo AND a <= hi` is a range, not
      // two independent events (BETWEEN would otherwise estimate ~0.25
      // regardless of width). Remaining conjuncts use independence.
      std::vector<const Expr*> conjuncts;
      CollectConjuncts(expr, &conjuncts);
      struct Interval {
        double lo = std::numeric_limits<double>::lowest();
        double hi = std::numeric_limits<double>::max();
      };
      std::map<std::string, Interval> intervals;
      double selectivity = 1.0;
      for (const Expr* c : conjuncts) {
        std::string column;
        Expr::CmpOp op;
        double value = 0;
        bool range_op = AsNumericCompare(*c, &column, &op, &value) &&
                        op != Expr::CmpOp::kNe && histogram(column) != nullptr;
        if (!range_op) {
          selectivity *= EstimateSelectivity(*c);
          continue;
        }
        Interval& iv = intervals[column];
        switch (op) {
          case Expr::CmpOp::kEq:
            iv.lo = std::max(iv.lo, value);
            iv.hi = std::min(iv.hi, value);
            break;
          case Expr::CmpOp::kLt:
          case Expr::CmpOp::kLe:
            iv.hi = std::min(iv.hi, value);
            break;
          case Expr::CmpOp::kGt:
          case Expr::CmpOp::kGe:
            iv.lo = std::max(iv.lo, value);
            break;
          case Expr::CmpOp::kNe:
            break;
        }
      }
      for (const auto& [column, iv] : intervals) {
        const ColumnHistogram* h = histogram(column);
        if (iv.lo > iv.hi) return 0.0;
        if (iv.lo == iv.hi)
          selectivity *= std::max(h->EstimateRange(iv.lo, iv.hi), 1e-4);
        else
          selectivity *= h->EstimateRange(iv.lo, iv.hi);
      }
      return std::clamp(selectivity, 0.0, 1.0);
    }
    case Expr::Kind::kOr: {
      double a = EstimateSelectivity(*expr.children[0]);
      double b = EstimateSelectivity(*expr.children[1]);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
    case Expr::Kind::kNot:
      return 1.0 - EstimateSelectivity(*expr.children[0]);
    case Expr::Kind::kCompare: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (lhs.kind != Expr::Kind::kColumn || rhs.kind != Expr::Kind::kLiteral)
        return 0.3;
      if (const int64_t* i = std::get_if<int64_t>(&rhs.literal)) {
        const ColumnHistogram* h = histogram(lhs.column);
        return h != nullptr
                   ? h->EstimateCompare(expr.op, static_cast<double>(*i))
                   : 0.3;
      }
      if (const double* d = std::get_if<double>(&rhs.literal)) {
        const ColumnHistogram* h = histogram(lhs.column);
        return h != nullptr ? h->EstimateCompare(expr.op, *d) : 0.3;
      }
      if (std::holds_alternative<std::string>(rhs.literal)) {
        auto it = string_ndv_.find(lhs.column);
        double ndv = it == string_ndv_.end() ? 10.0 : it->second;
        double eq = 1.0 / ndv;
        return expr.op == Expr::CmpOp::kEq
                   ? eq
                   : (expr.op == Expr::CmpOp::kNe ? 1.0 - eq : 0.3);
      }
      return 0.3;
    }
    case Expr::Kind::kLike:
    case Expr::Kind::kRegex:
      return 0.1;  // pattern predicates: conservative default
    default:
      return 0.3;
  }
}

}  // namespace blendhouse::sql
