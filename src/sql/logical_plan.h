#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/expression.h"
#include "storage/schema.h"
#include "vecindex/types.h"

namespace blendhouse::sql {

/// Logical plan node. Hybrid queries build the pipeline
///   Project <- TopK <- [Filter] <- AnnScan | Scan
/// and the rule-based optimizer then rewrites it (top-k pushdown, distance
/// range pushdown, vector column pruning) before the CBO picks the physical
/// strategy.
struct PlanNode {
  enum class Kind {
    kScan,      // plain table scan
    kAnnScan,   // the new ANN scan operator (paper §II-C)
    kFilter,    // scalar predicate
    kTopK,      // global top-k by distance
    kProject,   // output column selection
  };

  Kind kind;
  std::unique_ptr<PlanNode> child;  // linear pipeline for this dialect

  // kScan / kAnnScan
  std::string table;
  /// Vector column pruning: set false when the query never outputs the
  /// embedding itself, so scans skip materializing it.
  bool read_vector_column = true;

  // kAnnScan
  std::string vector_column;
  std::vector<float> query_vector;
  vecindex::Metric metric = vecindex::Metric::kL2;
  /// Top-k pushed into the scan (0 until the pushdown rule fires).
  size_t pushed_k = 0;
  /// OFFSET pushed alongside top-k: the scan fetches k+offset candidates so
  /// the executor can drop the first `offset` globally (pagination).
  size_t pushed_offset = 0;
  /// Distance range pushed into the scan (< 0 = none).
  double pushed_range = -1.0;
  /// True when the pushed range came from `<` (exclusive bound).
  bool range_exclusive = false;

  // kFilter
  ExprPtr predicate;

  // kTopK
  size_t limit = 0;
  /// Rows skipped before the `limit` returned (LIMIT k OFFSET n).
  size_t offset = 0;

  // kProject
  std::vector<std::string> columns;
  std::string distance_alias;

  PlanNode* FindNode(Kind k);
};

/// Builds the canonical logical plan for a SELECT. Validates columns and
/// the ANN clause against the schema.
common::Result<std::unique_ptr<PlanNode>> BuildLogicalPlan(
    const SelectStmt& stmt, const storage::TableSchema& schema);

/// Rule: distance top-k pushdown — copies the TopK limit into the AnnScan so
/// per-segment scans fetch only k candidates. Returns true when it fired.
bool ApplyTopKPushdown(PlanNode* root);

/// Rule: distance range filter pushdown — moves `alias < r` / `alias <= r`
/// conjuncts out of the Filter into AnnScan.pushed_range (enabling
/// SearchWithRange). Returns true when it fired.
bool ApplyRangeFilterPushdown(PlanNode* root, const std::string& alias);

/// Rule: vector column pruning — disables embedding materialization when no
/// output column needs it. Returns true when it fired.
bool ApplyVectorColumnPruning(PlanNode* root,
                              const storage::TableSchema& schema);

/// Applies all rules in order; returns the number that fired.
int ApplyRewriteRules(PlanNode* root, const storage::TableSchema& schema,
                      const std::string& distance_alias);

/// One-line-per-node EXPLAIN rendering.
std::string ExplainPlan(const PlanNode& root);

vecindex::Metric MetricFromDistanceFn(const std::string& fn);

}  // namespace blendhouse::sql
