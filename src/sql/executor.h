#pragma once

#include <array>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/scheduler.h"
#include "cluster/virtual_warehouse.h"
#include "common/query_ledger.h"
#include "common/result.h"
#include "common/trace.h"
#include "sql/optimizer.h"
#include "sql/settings.h"
#include "storage/lsm_engine.h"

namespace blendhouse::sql {

/// Per-query execution telemetry, surfaced to benches and tests.
struct ExecStats {
  ExecStrategy strategy = ExecStrategy::kPostFilter;
  size_t segments_total = 0;
  size_t segments_after_scalar_prune = 0;
  size_t segments_after_semantic_prune = 0;
  size_t segments_scanned = 0;
  /// Indexed by cluster::CacheOutcome.
  std::array<size_t, 5> cache_outcomes{};
  /// Worker-level filter-bitmap cache traffic (pre-filter segments with a
  /// predicate only; a hit skips BuildBitmap entirely).
  size_t filter_cache_hits = 0;
  size_t filter_cache_misses = 0;
  size_t postfilter_rounds = 0;
  size_t adaptive_expansions = 0;
  size_t retries = 0;
  bool used_plan_cache = false;
  bool used_short_circuit = false;
  int rules_fired = 0;
  double plan_micros = 0;
  double exec_micros = 0;
  /// Async execution time breakdown, fed from the task scheduler: time
  /// segment tasks spent queued on worker pools, wall time actually
  /// computing, and simulated I/O charged through the delay queue. Summed
  /// over all segment tasks of the query — overlapped tasks therefore sum
  /// past exec_micros; with a single in-flight task the three add up to
  /// ~exec_micros.
  double queue_wait_micros = 0;
  double compute_micros = 0;
  double sim_io_micros = 0;
  /// Unified per-query resource ledger (DESIGN.md §15): the fields above are
  /// mirrored into it at Execute() end, and segment tasks contribute the
  /// parts only they can see (per-precision-tier distance computations,
  /// iterator batch stats, fp32-rerank rows, fan-out counts). RunSelect
  /// drains this into system.query_log.
  common::QueryLedger ledger;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<storage::Row> rows;
  ExecStats stats;
};

/// Distributed query executor: schedules pruned segments onto the read VW's
/// workers via the consistent-hash ring, runs the chosen physical strategy
/// per segment on the owning worker's pool, merges partial top-k results,
/// and late-materializes output columns (paper §II-C "Plan execution").
class Executor {
 public:
  Executor(cluster::VirtualWarehouse* read_vw, const QuerySettings& settings)
      : vw_(read_vw), settings_(settings) {}

  /// Attaches a per-query trace: execution spans parent under `parent`.
  /// Without this, Execute creates a private trace so span bookkeeping is
  /// identical on every path (the trace is simply never retained).
  void SetTrace(trace::TracePtr trace, trace::SpanPtr parent) {
    trace_ = std::move(trace);
    parent_span_ = std::move(parent);
  }

  /// Runs an optimized SELECT against one table's engine.
  common::Result<QueryResult> Execute(const OptimizedQuery& query,
                                      storage::LsmEngine& engine);

  /// UPDATE/DELETE support: (segment_id, row offsets) of all committed rows
  /// matching `filter` (deleted rows excluded). Null filter matches all.
  common::Result<std::vector<std::pair<std::string, std::vector<uint64_t>>>>
  FindMatchingRows(storage::LsmEngine& engine, const Expr* filter);

  /// Test-only: invoked after each attempt's placement with the attempt
  /// number, before workers are resolved — lets retry tests mutate the VW
  /// topology at the exact moment a real scaling event would race a query.
  void SetTopologyHookForTest(std::function<void(size_t attempt)> hook) {
    topology_hook_for_test_ = std::move(hook);
  }

 private:
  /// One ANN candidate before materialization.
  struct Candidate {
    float dist;
    vecindex::IdType row;
    std::string segment_id;
  };

  struct SegmentTaskResult {
    std::vector<Candidate> candidates;
    std::array<size_t, 5> cache_outcomes{};
    size_t filter_cache_hits = 0;
    size_t filter_cache_misses = 0;
    size_t rounds = 0;
    /// Ledger slice this task produced: per-tier distance computations from
    /// the thread-local scan counters (a segment task runs start-to-finish
    /// on one pool thread), iterator stats, and fp32-rerank rows.
    common::QueryLedger ledger;
    common::Status status;
    /// True when the task observed its attempt's cancel flag and did no
    /// work; the merge skips it without treating it as a failure.
    bool skipped = false;
  };

  /// Immutable query context shared by every segment task of one query.
  /// Deep copies of the bound query (predicate cloned), schema, and
  /// snapshot live here behind a shared_ptr, so a straggler task from a
  /// cancelled attempt can never dangle into the caller's stack frame.
  struct QueryContext;
  /// Per-attempt streaming merge state: bounded top-k heap, outstanding
  /// counter, cancel flag, time breakdown, completion promise.
  struct AttemptState;

  common::Result<QueryResult> ExecuteAnn(const OptimizedQuery& query,
                                         storage::LsmEngine& engine,
                                         ExecStats* stats);
  common::Result<QueryResult> ExecuteScalar(const OptimizedQuery& query,
                                            storage::LsmEngine& engine,
                                            ExecStats* stats);

  /// Runs the physical strategy over `segments` on their owning workers and
  /// returns the merged candidate set. `compiled_filter` is the per-query
  /// compiled predicate (null when the query has no filter), compiled once
  /// in ExecuteAnn so segment binds share its regexes and LIKE shapes.
  common::Result<std::vector<Candidate>> RunOnWorkers(
      const BoundQuery& bound, const CompiledPredicatePtr& compiled_filter,
      ExecStrategy strategy, const storage::TableSchema& schema,
      const std::vector<storage::SegmentMeta>& segments,
      const storage::TableSnapshot& snapshot, ExecStats* stats);

  /// Static on purpose: segment tasks run on worker pools and may outlive
  /// this Executor (cancelled-attempt stragglers), so they must not capture
  /// `this` — everything they need lives in the shared QueryContext.
  /// `span` is the task's segment_scan span (sub-stage spans parent there).
  static SegmentTaskResult RunSegment(cluster::Worker* worker,
                                      const QueryContext& ctx,
                                      const storage::SegmentMeta& meta,
                                      const trace::SpanPtr& span);

  common::Result<QueryResult> Materialize(const BoundQuery& bound,
                                          const storage::TableSchema& schema,
                                          std::vector<Candidate> candidates);

  /// Segment fetch with cache affinity: current owner's cache, then any
  /// worker's cache (one RPC hop), then remote storage via the owner.
  common::Result<storage::SegmentPtr> FetchForMaterialize(
      const storage::TableSchema& schema, const std::string& segment_id);

  cluster::VirtualWarehouse* vw_;
  QuerySettings settings_;
  trace::TracePtr trace_;
  trace::SpanPtr parent_span_;
  /// The query's "execute" span; segment_scan spans parent here.
  trace::SpanPtr exec_span_;
  std::function<void(size_t attempt)> topology_hook_for_test_;
};

}  // namespace blendhouse::sql
