#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace blendhouse::sql {

struct Token {
  enum class Type {
    kIdentifier,  // foo, L2Distance (also keywords; parser matches by text)
    kInteger,     // 42
    kFloat,       // 3.5, -0.25, 1e-3
    kString,      // 'text'
    kSymbol,      // ( ) [ ] , ; = != < <= > >= *
    kEnd,
  };
  Type type = Type::kEnd;
  std::string text;
  size_t position = 0;  // byte offset, for error messages

  bool Is(Type t) const { return type == t; }
  bool IsSymbol(std::string_view s) const {
    return type == Type::kSymbol && text == s;
  }
  /// Case-insensitive keyword/identifier comparison.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes one SQL statement. Comments ("-- ...") are skipped.
common::Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace blendhouse::sql
