#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/expression.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace blendhouse::sql {

/// CREATE TABLE with optional vector INDEX, PARTITION BY, CLUSTER BY
/// (the paper's Example 1 dialect).
struct CreateTableStmt {
  storage::TableSchema schema;
};

/// INSERT INTO t VALUES (...), (...);
struct InsertStmt {
  std::string table;
  std::vector<storage::Row> rows;
};

/// The ORDER BY <DistanceFn>(col, [q...]) [AS alias] LIMIT k clause —
/// the hybrid-query pattern the planner detects.
struct AnnClause {
  std::string distance_fn;  // "L2Distance" | "InnerProduct" | "CosineDistance"
  std::string vector_column;
  std::vector<float> query_vector;
  std::string alias;  // distance output name; defaults to "dist"
  size_t limit = 0;
  /// LIMIT k OFFSET n — rows to skip before the k returned (pagination).
  size_t offset = 0;
  bool ascending = true;
};

/// SELECT cols FROM t [WHERE pred] [ORDER BY dist(...)] [LIMIT k];
struct SelectStmt {
  std::vector<std::string> select_columns;  // may include the distance alias
  bool select_star = false;
  std::string table;
  /// Table-valued argument of a qualified name — system.query_trace(42).
  std::optional<uint64_t> table_arg;
  ExprPtr where;  // null when absent
  std::optional<AnnClause> ann;
  /// LIMIT for non-ANN queries (ANN limit lives in AnnClause).
  std::optional<size_t> scalar_limit;
  /// OFFSET for non-ANN queries (ANN offset lives in AnnClause).
  std::optional<size_t> scalar_offset;
};

/// EXPLAIN SELECT ... (plan only) or EXPLAIN ANALYZE SELECT ... (executes
/// the query and renders its trace span tree).
struct ExplainStmt {
  bool analyze = false;
  SelectStmt select;
};

/// UPDATE t SET col = value, ... WHERE pred; (realtime update path)
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, storage::Value>> assignments;
  ExprPtr where;
};

/// DELETE FROM t WHERE pred;
struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

/// OPTIMIZE TABLE t; (forces compaction — ClickHouse-style spelling)
struct OptimizeStmt {
  std::string table;
};

/// SET name = value; (session query settings: ef_search, nprobe, ...)
struct SetStmt {
  std::string name;
  storage::Value value;
};

struct Statement {
  enum class Kind {
    kCreateTable,
    kInsert,
    kSelect,
    kExplain,
    kUpdate,
    kDelete,
    kOptimize,
    kSet,
  };
  Kind kind;
  std::optional<CreateTableStmt> create_table;
  std::optional<InsertStmt> insert;
  std::optional<SelectStmt> select;
  std::optional<ExplainStmt> explain;
  std::optional<UpdateStmt> update;
  std::optional<DeleteStmt> del;
  std::optional<OptimizeStmt> optimize;
  std::optional<SetStmt> set;
};

}  // namespace blendhouse::sql
