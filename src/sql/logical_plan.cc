#include "sql/logical_plan.h"

#include <cmath>

namespace blendhouse::sql {

vecindex::Metric MetricFromDistanceFn(const std::string& fn) {
  if (fn == "InnerProduct") return vecindex::Metric::kInnerProduct;
  if (fn == "CosineDistance") return vecindex::Metric::kCosine;
  return vecindex::Metric::kL2;
}

PlanNode* PlanNode::FindNode(Kind k) {
  if (kind == k) return this;
  return child != nullptr ? child->FindNode(k) : nullptr;
}

common::Result<std::unique_ptr<PlanNode>> BuildLogicalPlan(
    const SelectStmt& stmt, const storage::TableSchema& schema) {
  // Leaf: AnnScan for hybrid queries, plain Scan otherwise.
  auto leaf = std::make_unique<PlanNode>();
  leaf->table = stmt.table;
  if (stmt.ann.has_value()) {
    const AnnClause& ann = *stmt.ann;
    leaf->kind = PlanNode::Kind::kAnnScan;
    leaf->vector_column = ann.vector_column;
    leaf->query_vector = ann.query_vector;
    leaf->metric = MetricFromDistanceFn(ann.distance_fn);
    int col = schema.FindColumn(ann.vector_column);
    if (col < 0 ||
        schema.columns[col].type != storage::ColumnType::kFloatVector)
      return common::Status::InvalidArgument(
          "distance function on non-vector column: " + ann.vector_column);
    if (schema.VectorDim() != 0 &&
        ann.query_vector.size() != schema.VectorDim())
      return common::Status::InvalidArgument(
          "query vector dim " + std::to_string(ann.query_vector.size()) +
          " != index dim " + std::to_string(schema.VectorDim()));
  } else {
    leaf->kind = PlanNode::Kind::kScan;
  }

  std::unique_ptr<PlanNode> current = std::move(leaf);

  if (stmt.where != nullptr) {
    // Validate referenced columns exist (the distance alias is allowed; the
    // range pushdown rule extracts it later).
    std::vector<std::string> cols;
    stmt.where->CollectColumns(&cols);
    for (const std::string& c : cols) {
      bool is_alias = stmt.ann.has_value() && c == stmt.ann->alias;
      if (!is_alias && schema.FindColumn(c) < 0)
        return common::Status::InvalidArgument("unknown column in WHERE: " +
                                               c);
    }
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanNode::Kind::kFilter;
    filter->predicate = stmt.where->Clone();
    filter->child = std::move(current);
    current = std::move(filter);
  }

  if (stmt.ann.has_value()) {
    auto topk = std::make_unique<PlanNode>();
    topk->kind = PlanNode::Kind::kTopK;
    topk->limit = stmt.ann->limit;
    topk->offset = stmt.ann->offset;
    topk->child = std::move(current);
    current = std::move(topk);
  }

  auto project = std::make_unique<PlanNode>();
  project->kind = PlanNode::Kind::kProject;
  if (stmt.select_star) {
    for (const auto& c : schema.columns) project->columns.push_back(c.name);
    if (stmt.ann.has_value()) project->columns.push_back(stmt.ann->alias);
  } else {
    project->columns = stmt.select_columns;
  }
  if (stmt.ann.has_value()) project->distance_alias = stmt.ann->alias;
  for (const std::string& c : project->columns) {
    if (c == project->distance_alias) continue;
    if (schema.FindColumn(c) < 0)
      return common::Status::InvalidArgument("unknown column in SELECT: " + c);
  }
  project->child = std::move(current);
  return std::unique_ptr<PlanNode>(std::move(project));
}

bool ApplyTopKPushdown(PlanNode* root) {
  PlanNode* topk = root->FindNode(PlanNode::Kind::kTopK);
  PlanNode* ann = root->FindNode(PlanNode::Kind::kAnnScan);
  if (topk == nullptr || ann == nullptr || topk->limit == 0) return false;
  if (ann->pushed_k == topk->limit && ann->pushed_offset == topk->offset)
    return false;
  ann->pushed_k = topk->limit;
  ann->pushed_offset = topk->offset;
  return true;
}

namespace {

/// Extracts `alias < r` / `alias <= r` conjuncts from a predicate tree
/// (top-level AND chain only), returning the tightest range found. The
/// remaining predicate (possibly null) is stored back into *expr.
bool ExtractRange(ExprPtr* expr, const std::string& alias, double* range,
                  bool* exclusive) {
  Expr* e = expr->get();
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::kAnd) {
    bool fired = ExtractRange(&e->children[0], alias, range, exclusive);
    fired |= ExtractRange(&e->children[1], alias, range, exclusive);
    // Collapse AND nodes whose side got fully consumed.
    if (e->children[0] == nullptr && e->children[1] == nullptr) {
      expr->reset();
    } else if (e->children[0] == nullptr) {
      *expr = std::move(e->children[1]);
    } else if (e->children[1] == nullptr) {
      *expr = std::move(e->children[0]);
    }
    return fired;
  }
  if (e->kind == Expr::Kind::kCompare &&
      (e->op == Expr::CmpOp::kLt || e->op == Expr::CmpOp::kLe) &&
      e->children[0]->kind == Expr::Kind::kColumn &&
      e->children[0]->column == alias &&
      e->children[1]->kind == Expr::Kind::kLiteral) {
    double r = std::nan("");
    if (const int64_t* i = std::get_if<int64_t>(&e->children[1]->literal))
      r = static_cast<double>(*i);
    if (const double* d = std::get_if<double>(&e->children[1]->literal))
      r = *d;
    if (std::isnan(r)) return false;
    if (*range < 0 || r < *range) {
      *range = r;
      *exclusive = e->op == Expr::CmpOp::kLt;
    }
    expr->reset();
    return true;
  }
  return false;
}

}  // namespace

bool ApplyRangeFilterPushdown(PlanNode* root, const std::string& alias) {
  if (alias.empty()) return false;
  PlanNode* ann = root->FindNode(PlanNode::Kind::kAnnScan);
  if (ann == nullptr) return false;
  // Find the filter node and its parent to splice it out if consumed.
  PlanNode* parent = nullptr;
  PlanNode* filter = nullptr;
  for (PlanNode* n = root; n != nullptr; n = n->child.get()) {
    if (n->child != nullptr && n->child->kind == PlanNode::Kind::kFilter) {
      parent = n;
      filter = n->child.get();
      break;
    }
  }
  if (filter == nullptr) return false;
  double range = -1.0;
  bool exclusive = false;
  bool fired = ExtractRange(&filter->predicate, alias, &range, &exclusive);
  if (!fired) return false;
  ann->pushed_range = range;
  ann->range_exclusive = exclusive;
  if (filter->predicate == nullptr && parent != nullptr) {
    // Filter fully consumed: splice it out of the pipeline.
    parent->child = std::move(filter->child);
  }
  return true;
}

bool ApplyVectorColumnPruning(PlanNode* root,
                              const storage::TableSchema& schema) {
  PlanNode* project = root->FindNode(PlanNode::Kind::kProject);
  if (project == nullptr || schema.vector_column < 0) return false;
  const std::string& vec_name = schema.columns[schema.vector_column].name;
  for (const std::string& c : project->columns)
    if (c == vec_name) return false;  // embedding requested: keep it
  PlanNode* leaf = root->FindNode(PlanNode::Kind::kAnnScan);
  if (leaf == nullptr) leaf = root->FindNode(PlanNode::Kind::kScan);
  if (leaf == nullptr || !leaf->read_vector_column) return false;
  leaf->read_vector_column = false;
  return true;
}

int ApplyRewriteRules(PlanNode* root, const storage::TableSchema& schema,
                      const std::string& distance_alias) {
  int fired = 0;
  fired += ApplyTopKPushdown(root) ? 1 : 0;
  fired += ApplyRangeFilterPushdown(root, distance_alias) ? 1 : 0;
  fired += ApplyVectorColumnPruning(root, schema) ? 1 : 0;
  return fired;
}

std::string ExplainPlan(const PlanNode& root) {
  std::string out;
  const PlanNode* n = &root;
  int depth = 0;
  while (n != nullptr) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    switch (n->kind) {
      case PlanNode::Kind::kProject: {
        out += "Project [";
        for (size_t i = 0; i < n->columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += n->columns[i];
        }
        out += "]";
        break;
      }
      case PlanNode::Kind::kTopK:
        out += "TopK limit=" + std::to_string(n->limit);
        if (n->offset > 0) out += " offset=" + std::to_string(n->offset);
        break;
      case PlanNode::Kind::kFilter:
        out += "Filter " +
               (n->predicate != nullptr ? n->predicate->ToString() : "true");
        break;
      case PlanNode::Kind::kAnnScan:
        out += "AnnScan " + n->table + "." + n->vector_column +
               " k=" + std::to_string(n->pushed_k);
        if (n->pushed_offset > 0)
          out += " offset=" + std::to_string(n->pushed_offset);
        if (n->pushed_range >= 0)
          out += " range<=" + std::to_string(n->pushed_range);
        if (!n->read_vector_column) out += " (vector column pruned)";
        break;
      case PlanNode::Kind::kScan:
        out += "Scan " + n->table;
        if (!n->read_vector_column) out += " (vector column pruned)";
        break;
    }
    out += "\n";
    n = n->child.get();
    ++depth;
  }
  return out;
}

}  // namespace blendhouse::sql
