#include "sql/expression.h"

#include <cmath>
#include <locale>

namespace blendhouse::sql {

namespace {

// libstdc++'s std::ctype<char>::narrow lazily fills a cache shared through
// the classic locale's facet; concurrent first-time std::regex compiles (one
// per segment task) race on that fill. The stored values are identical, but
// it is still a data race — touch every char once here, while dynamic
// initialization is single-threaded.
const bool g_ctype_narrow_warmed = [] {
  const auto& ct = std::use_facet<std::ctype<char>>(std::locale::classic());
  for (int c = 0; c < 256; ++c) (void)ct.narrow(static_cast<char>(c), '\0');
  return true;
}();

double LiteralToDouble(const storage::Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v))
    return static_cast<double>(*i);
  if (const double* d = std::get_if<double>(&v)) return *d;
  return std::nan("");
}

bool IsNumericLiteral(const storage::Value& v) {
  return std::holds_alternative<int64_t>(v) ||
         std::holds_alternative<double>(v);
}

bool CompareDoubles(Expr::CmpOp op, double a, double b) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return a == b;
    case Expr::CmpOp::kNe:
      return a != b;
    case Expr::CmpOp::kLt:
      return a < b;
    case Expr::CmpOp::kLe:
      return a <= b;
    case Expr::CmpOp::kGt:
      return a > b;
    case Expr::CmpOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(Expr::CmpOp op, std::string_view a, std::string_view b) {
  int c = a.compare(b);
  switch (op) {
    case Expr::CmpOp::kEq:
      return c == 0;
    case Expr::CmpOp::kNe:
      return c != 0;
    case Expr::CmpOp::kLt:
      return c < 0;
    case Expr::CmpOp::kLe:
      return c <= 0;
    case Expr::CmpOp::kGt:
      return c > 0;
    case Expr::CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

const char* OpName(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return "=";
    case Expr::CmpOp::kNe:
      return "!=";
    case Expr::CmpOp::kLt:
      return "<";
    case Expr::CmpOp::kLe:
      return "<=";
    case Expr::CmpOp::kGt:
      return ">";
    case Expr::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace

// ---- Builders --------------------------------------------------------------

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCompare;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(a));
  return e;
}

ExprPtr Expr::Like(ExprPtr col, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLike;
  e->children.push_back(std::move(col));
  e->pattern = std::move(pattern);
  return e;
}

ExprPtr Expr::Regex(ExprPtr col, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kRegex;
  e->children.push_back(std::move(col));
  e->pattern = std::move(pattern);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->column = column;
  e->literal = literal;
  e->op = op;
  e->pattern = pattern;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == Kind::kColumn) out->push_back(column);
  for (const auto& c : children) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column;
    case Kind::kLiteral: {
      if (const int64_t* i = std::get_if<int64_t>(&literal))
        return std::to_string(*i);
      if (const double* d = std::get_if<double>(&literal))
        return std::to_string(*d);
      if (const std::string* s = std::get_if<std::string>(&literal))
        return "'" + *s + "'";
      return "<vec>";
    }
    case Kind::kCompare:
      return "(" + children[0]->ToString() + " " + OpName(op) + " " +
             children[1]->ToString() + ")";
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
    case Kind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case Kind::kLike:
      return "(" + children[0]->ToString() + " LIKE '" + pattern + "')";
    case Kind::kRegex:
      return "(" + children[0]->ToString() + " REGEXP '" + pattern + "')";
  }
  return "?";
}

// ---- LIKE ------------------------------------------------------------------

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// ---- PredicateEvaluator ----------------------------------------------------

common::Status PredicateEvaluator::BuildNode(const Expr& expr,
                                             const storage::Segment& segment,
                                             Node* node) {
  node->kind = expr.kind;
  node->op = expr.op;
  node->literal = expr.literal;
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      node->column = segment.FindColumn(expr.column);
      if (node->column == nullptr)
        return common::Status::NotFound("column: " + expr.column);
      break;
    }
    case Expr::Kind::kLiteral:
      break;
    case Expr::Kind::kRegex:
      try {
        node->regex = std::regex(expr.pattern, std::regex::optimize);
      } catch (const std::regex_error&) {
        return common::Status::InvalidArgument("bad regex: " + expr.pattern);
      }
      break;
    case Expr::Kind::kLike:
      node->like_pattern = expr.pattern;
      break;
    default:
      break;
  }
  node->children.resize(expr.children.size());
  for (size_t i = 0; i < expr.children.size(); ++i)
    BH_RETURN_IF_ERROR(BuildNode(*expr.children[i], segment,
                                 &node->children[i]));
  return common::Status::Ok();
}

common::Result<PredicateEvaluator> PredicateEvaluator::Bind(
    const Expr& expr, const storage::Segment& segment) {
  PredicateEvaluator ev;
  ev.segment_ = &segment;
  BH_RETURN_IF_ERROR(BuildNode(expr, segment, &ev.root_));
  return ev;
}

bool PredicateEvaluator::EvalNode(const Node& node, size_t row) const {
  switch (node.kind) {
    case Expr::Kind::kAnd:
      return EvalNode(node.children[0], row) && EvalNode(node.children[1], row);
    case Expr::Kind::kOr:
      return EvalNode(node.children[0], row) || EvalNode(node.children[1], row);
    case Expr::Kind::kNot:
      return !EvalNode(node.children[0], row);
    case Expr::Kind::kCompare: {
      const Node& lhs = node.children[0];
      const Node& rhs = node.children[1];
      // Supported shape: column op literal (normalized by the parser).
      if (lhs.kind == Expr::Kind::kColumn &&
          rhs.kind == Expr::Kind::kLiteral) {
        const storage::Column& col = *lhs.column;
        if (col.type() == storage::ColumnType::kString) {
          const std::string* s = std::get_if<std::string>(&rhs.literal);
          if (s == nullptr) return false;
          return CompareStrings(node.op, col.GetString(row), *s);
        }
        if (!IsNumericLiteral(rhs.literal)) return false;
        return CompareDoubles(node.op, col.GetNumeric(row),
                              LiteralToDouble(rhs.literal));
      }
      return false;
    }
    case Expr::Kind::kLike: {
      const Node& col_node = node.children[0];
      if (col_node.column == nullptr ||
          col_node.column->type() != storage::ColumnType::kString)
        return false;
      return LikeMatch(col_node.column->GetString(row), node.like_pattern);
    }
    case Expr::Kind::kRegex: {
      const Node& col_node = node.children[0];
      if (col_node.column == nullptr ||
          col_node.column->type() != storage::ColumnType::kString)
        return false;
      std::string_view text = col_node.column->GetString(row);
      return std::regex_search(text.begin(), text.end(), node.regex);
    }
    default:
      return false;
  }
}

bool PredicateEvaluator::EvalRow(size_t row) const {
  return EvalNode(root_, row);
}

bool PredicateEvaluator::MayMatchRange(const Node& node,
                                       size_t granule) const {
  switch (node.kind) {
    case Expr::Kind::kAnd:
      return MayMatchRange(node.children[0], granule) &&
             MayMatchRange(node.children[1], granule);
    case Expr::Kind::kOr:
      return MayMatchRange(node.children[0], granule) ||
             MayMatchRange(node.children[1], granule);
    case Expr::Kind::kCompare: {
      const Node& lhs = node.children[0];
      const Node& rhs = node.children[1];
      if (lhs.kind != Expr::Kind::kColumn ||
          rhs.kind != Expr::Kind::kLiteral ||
          !IsNumericLiteral(rhs.literal))
        return true;
      const storage::GranuleMarks* marks = lhs.column->granule_marks();
      if (marks == nullptr || granule >= marks->NumGranules()) return true;
      double v = LiteralToDouble(rhs.literal);
      double lo = marks->min_vals[granule];
      double hi = marks->max_vals[granule];
      switch (node.op) {
        case Expr::CmpOp::kEq:
          return lo <= v && v <= hi;
        case Expr::CmpOp::kLt:
          return lo < v;
        case Expr::CmpOp::kLe:
          return lo <= v;
        case Expr::CmpOp::kGt:
          return hi > v;
        case Expr::CmpOp::kGe:
          return hi >= v;
        case Expr::CmpOp::kNe:
          return true;
      }
      return true;
    }
    default:
      // NOT / LIKE / REGEX: no usable range info.
      return true;
  }
}

common::Bitset PredicateEvaluator::BuildBitmap(
    const common::Bitset* deletes, bool use_granule_pruning) const {
  size_t n = segment_->num_rows();
  common::Bitset bitmap(n);
  size_t granule_rows = 128;
  // Find any column with marks to define granule geometry.
  for (size_t g = 0; g * granule_rows < n; ++g) {
    if (use_granule_pruning && !MayMatchRange(root_, g)) continue;
    size_t end = std::min(n, (g + 1) * granule_rows);
    for (size_t i = g * granule_rows; i < end; ++i) {
      if (deletes != nullptr && deletes->Test(i)) continue;
      if (EvalNode(root_, i)) bitmap.Set(i);
    }
  }
  return bitmap;
}

// ---- Segment-level pruning -------------------------------------------------

bool MayMatchSegment(const Expr& expr, const storage::SegmentMeta& meta) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return MayMatchSegment(*expr.children[0], meta) &&
             MayMatchSegment(*expr.children[1], meta);
    case Expr::Kind::kOr:
      return MayMatchSegment(*expr.children[0], meta) ||
             MayMatchSegment(*expr.children[1], meta);
    case Expr::Kind::kCompare: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (lhs.kind != Expr::Kind::kColumn ||
          rhs.kind != Expr::Kind::kLiteral || !IsNumericLiteral(rhs.literal))
        return true;
      auto it = meta.numeric_ranges.find(lhs.column);
      if (it == meta.numeric_ranges.end()) return true;
      double v = LiteralToDouble(rhs.literal);
      double lo = it->second.first;
      double hi = it->second.second;
      switch (expr.op) {
        case Expr::CmpOp::kEq:
          return lo <= v && v <= hi;
        case Expr::CmpOp::kLt:
          return lo < v;
        case Expr::CmpOp::kLe:
          return lo <= v;
        case Expr::CmpOp::kGt:
          return hi > v;
        case Expr::CmpOp::kGe:
          return hi >= v;
        case Expr::CmpOp::kNe:
          return true;
      }
      return true;
    }
    default:
      return true;  // conservative for NOT/LIKE/REGEX
  }
}

}  // namespace blendhouse::sql
