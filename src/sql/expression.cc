#include "sql/expression.h"

#include <algorithm>
#include <cmath>
#include <locale>

#include "common/assert.h"

namespace blendhouse::sql {

namespace {

// libstdc++'s std::ctype<char>::narrow lazily fills a cache shared through
// the classic locale's facet; concurrent first-time std::regex compiles (one
// per segment task) race on that fill. The stored values are identical, but
// it is still a data race — touch every char once here, while dynamic
// initialization is single-threaded.
const bool g_ctype_narrow_warmed = [] {
  const auto& ct = std::use_facet<std::ctype<char>>(std::locale::classic());
  for (int c = 0; c < 256; ++c) (void)ct.narrow(static_cast<char>(c), '\0');
  return true;
}();

double LiteralToDouble(const storage::Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v))
    return static_cast<double>(*i);
  if (const double* d = std::get_if<double>(&v)) return *d;
  return std::nan("");
}

bool IsNumericLiteral(const storage::Value& v) {
  return std::holds_alternative<int64_t>(v) ||
         std::holds_alternative<double>(v);
}

bool CompareDoubles(Expr::CmpOp op, double a, double b) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return a == b;
    case Expr::CmpOp::kNe:
      return a != b;
    case Expr::CmpOp::kLt:
      return a < b;
    case Expr::CmpOp::kLe:
      return a <= b;
    case Expr::CmpOp::kGt:
      return a > b;
    case Expr::CmpOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareStrings(Expr::CmpOp op, std::string_view a, std::string_view b) {
  int c = a.compare(b);
  switch (op) {
    case Expr::CmpOp::kEq:
      return c == 0;
    case Expr::CmpOp::kNe:
      return c != 0;
    case Expr::CmpOp::kLt:
      return c < 0;
    case Expr::CmpOp::kLe:
      return c <= 0;
    case Expr::CmpOp::kGt:
      return c > 0;
    case Expr::CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

const char* OpName(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return "=";
    case Expr::CmpOp::kNe:
      return "!=";
    case Expr::CmpOp::kLt:
      return "<";
    case Expr::CmpOp::kLe:
      return "<=";
    case Expr::CmpOp::kGt:
      return ">";
    case Expr::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

// ---- Columnar word-fill kernels --------------------------------------------

constexpr size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

/// Fills `words` with pred(row) over rows [begin, end); bit 0 of words[0] is
/// row `begin`. Every word in the range is fully written (tail bits zero).
template <typename Pred>
void FillRowPredWords(size_t begin, size_t end, uint64_t* words, Pred pred) {
  const size_t n = end - begin;
  const size_t full = n >> 6;
  for (size_t wi = 0; wi < full; ++wi) {
    const size_t base = begin + (wi << 6);
    uint64_t w = 0;
    for (unsigned b = 0; b < 64; ++b)
      w |= static_cast<uint64_t>(pred(base + b)) << b;
    words[wi] = w;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const size_t base = begin + (full << 6);
    uint64_t w = 0;
    for (unsigned b = 0; b < tail; ++b)
      w |= static_cast<uint64_t>(pred(base + b)) << b;
    words[full] = w;
  }
}

/// Typed compare leaf: a tight branchless loop over the raw column storage,
/// 64 rows per emitted word. Int64 is widened to double per row, matching
/// Column::GetNumeric, so results are bit-identical to EvalRow (including
/// NaN behaviour: every comparison false except !=).
template <typename T, typename Cmp>
void FillCompareWords(const T* vals, size_t begin, size_t end, uint64_t* words,
                      Cmp cmp) {
  const size_t n = end - begin;
  const size_t full = n >> 6;
  for (size_t wi = 0; wi < full; ++wi) {
    const T* v = vals + begin + (wi << 6);
    uint64_t w = 0;
    for (unsigned b = 0; b < 64; ++b)
      w |= static_cast<uint64_t>(cmp(static_cast<double>(v[b]))) << b;
    words[wi] = w;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const T* v = vals + begin + (full << 6);
    uint64_t w = 0;
    for (unsigned b = 0; b < tail; ++b)
      w |= static_cast<uint64_t>(cmp(static_cast<double>(v[b]))) << b;
    words[full] = w;
  }
}

template <typename T>
void CompareColumnWords(const T* vals, Expr::CmpOp op, double lit,
                        size_t begin, size_t end, uint64_t* words) {
  switch (op) {
    case Expr::CmpOp::kEq:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v == lit; });
      return;
    case Expr::CmpOp::kNe:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v != lit; });
      return;
    case Expr::CmpOp::kLt:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v < lit; });
      return;
    case Expr::CmpOp::kLe:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v <= lit; });
      return;
    case Expr::CmpOp::kGt:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v > lit; });
      return;
    case Expr::CmpOp::kGe:
      FillCompareWords(vals, begin, end, words,
                       [lit](double v) { return v >= lit; });
      return;
  }
  std::fill(words, words + WordsFor(end - begin), uint64_t{0});
}

}  // namespace

// ---- Builders --------------------------------------------------------------

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCompare;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::And(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAnd;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

ExprPtr Expr::Or(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kOr;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

ExprPtr Expr::Not(ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->children.push_back(std::move(a));
  return e;
}

ExprPtr Expr::Like(ExprPtr col, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLike;
  e->children.push_back(std::move(col));
  e->pattern = std::move(pattern);
  return e;
}

ExprPtr Expr::Regex(ExprPtr col, std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kRegex;
  e->children.push_back(std::move(col));
  e->pattern = std::move(pattern);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->column = column;
  e->literal = literal;
  e->op = op;
  e->pattern = pattern;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind == Kind::kColumn) out->push_back(column);
  for (const auto& c : children) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column;
    case Kind::kLiteral: {
      if (const int64_t* i = std::get_if<int64_t>(&literal))
        return std::to_string(*i);
      if (const double* d = std::get_if<double>(&literal))
        return std::to_string(*d);
      if (const std::string* s = std::get_if<std::string>(&literal))
        return "'" + *s + "'";
      return "<vec>";
    }
    case Kind::kCompare:
      return "(" + children[0]->ToString() + " " + OpName(op) + " " +
             children[1]->ToString() + ")";
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
    case Kind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case Kind::kLike:
      return "(" + children[0]->ToString() + " LIKE '" + pattern + "')";
    case Kind::kRegex:
      return "(" + children[0]->ToString() + " REGEXP '" + pattern + "')";
  }
  return "?";
}

// ---- LIKE ------------------------------------------------------------------

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// ---- CompiledPredicate -----------------------------------------------------

common::Status CompiledPredicate::CompileNode(const Expr& expr, CNode* node) {
  node->kind = expr.kind;
  node->op = expr.op;
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      node->column = expr.column;
      break;
    case Expr::Kind::kLiteral:
      node->literal = expr.literal;
      node->literal_is_numeric = IsNumericLiteral(expr.literal);
      if (node->literal_is_numeric)
        node->num_literal = LiteralToDouble(expr.literal);
      break;
    case Expr::Kind::kRegex:
      try {
        node->regex = std::regex(expr.pattern, std::regex::optimize);
      } catch (const std::regex_error&) {
        return common::Status::InvalidArgument("bad regex: " + expr.pattern);
      }
      node->cost = 128;
      break;
    case Expr::Kind::kLike: {
      // Classify the pattern into an anchored fast path so the common
      // shapes (exact / 'abc%' / '%abc' / '%abc%') never hit the
      // backtracking matcher.
      const std::string& p = expr.pattern;
      node->like_pattern = p;
      auto wildcard_free = [](std::string_view s) {
        return s.find_first_of("%_") == std::string_view::npos;
      };
      const std::string_view pv(p);
      if (wildcard_free(pv)) {
        node->like_shape = LikeShape::kExact;
        node->like_literal = p;
        node->cost = 10;
      } else if (p.size() >= 2 && p.front() == '%' && p.back() == '%' &&
                 wildcard_free(pv.substr(1, p.size() - 2))) {
        node->like_shape = LikeShape::kContains;
        node->like_literal = p.substr(1, p.size() - 2);
        node->cost = 16;
      } else if (p.back() == '%' && wildcard_free(pv.substr(0, p.size() - 1))) {
        node->like_shape = LikeShape::kPrefix;
        node->like_literal = p.substr(0, p.size() - 1);
        node->cost = 10;
      } else if (p.front() == '%' && wildcard_free(pv.substr(1))) {
        node->like_shape = LikeShape::kSuffix;
        node->like_literal = p.substr(1);
        node->cost = 10;
      } else {
        node->like_shape = LikeShape::kGeneric;
        node->cost = 32;
      }
      break;
    }
    default:
      break;
  }
  node->children.resize(expr.children.size());
  for (size_t i = 0; i < expr.children.size(); ++i)
    BH_RETURN_IF_ERROR(CompileNode(*expr.children[i], &node->children[i]));
  // Cost roll-up (children are compiled at this point). Drives both
  // cheapest-first conjunct ordering and the lazy-evaluation threshold.
  switch (expr.kind) {
    case Expr::Kind::kCompare: {
      const bool string_cmp =
          node->children.size() == 2 &&
          node->children[1].kind == Expr::Kind::kLiteral &&
          std::holds_alternative<std::string>(node->children[1].literal);
      node->cost = string_cmp ? 8 : 1;
      break;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      node->cost = 0;
      for (const CNode& c : node->children) node->cost += c.cost;
      break;
    case Expr::Kind::kNot:
      node->cost = node->children.empty() ? 0 : node->children[0].cost;
      break;
    default:
      break;
  }
  return common::Status::Ok();
}

common::Result<std::shared_ptr<const CompiledPredicate>>
CompiledPredicate::Compile(const Expr& expr) {
  auto compiled = std::make_shared<CompiledPredicate>();
  BH_RETURN_IF_ERROR(CompileNode(expr, &compiled->root_));
  compiled->fingerprint_ = expr.ToString();
  return std::shared_ptr<const CompiledPredicate>(std::move(compiled));
}

// ---- PredicateEvaluator ----------------------------------------------------

common::Status PredicateEvaluator::BindNode(const CNode& cnode, Node* node) {
  node->c = &cnode;
  if (cnode.kind == Expr::Kind::kColumn) {
    node->column = segment_->FindColumn(cnode.column);
    if (node->column == nullptr)
      return common::Status::NotFound("column: " + cnode.column);
  }
  node->children.resize(cnode.children.size());
  for (size_t i = 0; i < cnode.children.size(); ++i)
    BH_RETURN_IF_ERROR(BindNode(cnode.children[i], &node->children[i]));
  return common::Status::Ok();
}

common::Result<PredicateEvaluator> PredicateEvaluator::Bind(
    CompiledPredicatePtr compiled, const storage::Segment& segment) {
  PredicateEvaluator ev;
  ev.segment_ = &segment;
  ev.compiled_ = std::move(compiled);
  BH_RETURN_IF_ERROR(ev.BindNode(ev.compiled_->root_, &ev.root_));
  return ev;
}

common::Result<PredicateEvaluator> PredicateEvaluator::Bind(
    const Expr& expr, const storage::Segment& segment) {
  auto compiled = CompiledPredicate::Compile(expr);
  BH_RETURN_IF_ERROR(compiled.status());
  return Bind(std::move(compiled).value(), segment);
}

bool PredicateEvaluator::MatchLike(const CompiledPredicate::CNode& c,
                                   std::string_view text) {
  const std::string& lit = c.like_literal;
  switch (c.like_shape) {
    case CompiledPredicate::LikeShape::kExact:
      return text == lit;
    case CompiledPredicate::LikeShape::kPrefix:
      return text.size() >= lit.size() &&
             text.compare(0, lit.size(), lit) == 0;
    case CompiledPredicate::LikeShape::kSuffix:
      return text.size() >= lit.size() &&
             text.compare(text.size() - lit.size(), lit.size(), lit) == 0;
    case CompiledPredicate::LikeShape::kContains:
      return text.find(lit) != std::string_view::npos;
    case CompiledPredicate::LikeShape::kGeneric:
      break;
  }
  return LikeMatch(text, c.like_pattern);
}

bool PredicateEvaluator::EvalNode(const Node& node, size_t row) const {
  switch (node.c->kind) {
    case Expr::Kind::kAnd:
      return EvalNode(node.children[0], row) && EvalNode(node.children[1], row);
    case Expr::Kind::kOr:
      return EvalNode(node.children[0], row) || EvalNode(node.children[1], row);
    case Expr::Kind::kNot:
      return !EvalNode(node.children[0], row);
    case Expr::Kind::kCompare: {
      const Node& lhs = node.children[0];
      const Node& rhs = node.children[1];
      // Supported shape: column op literal (normalized by the parser).
      if (lhs.c->kind == Expr::Kind::kColumn &&
          rhs.c->kind == Expr::Kind::kLiteral) {
        const storage::Column& col = *lhs.column;
        if (col.type() == storage::ColumnType::kString) {
          const std::string* s = std::get_if<std::string>(&rhs.c->literal);
          if (s == nullptr) return false;
          return CompareStrings(node.c->op, col.GetString(row), *s);
        }
        if (!rhs.c->literal_is_numeric) return false;
        return CompareDoubles(node.c->op, col.GetNumeric(row),
                              rhs.c->num_literal);
      }
      return false;
    }
    case Expr::Kind::kLike: {
      const Node& col_node = node.children[0];
      if (col_node.column == nullptr ||
          col_node.column->type() != storage::ColumnType::kString)
        return false;
      return MatchLike(*node.c, col_node.column->GetString(row));
    }
    case Expr::Kind::kRegex: {
      const Node& col_node = node.children[0];
      if (col_node.column == nullptr ||
          col_node.column->type() != storage::ColumnType::kString)
        return false;
      std::string_view text = col_node.column->GetString(row);
      return std::regex_search(text.begin(), text.end(), node.c->regex);
    }
    default:
      return false;
  }
}

bool PredicateEvaluator::EvalRow(size_t row) const {
  return EvalNode(root_, row);
}

bool PredicateEvaluator::MayMatchRange(const Node& node,
                                       size_t granule) const {
  switch (node.c->kind) {
    case Expr::Kind::kAnd:
      return MayMatchRange(node.children[0], granule) &&
             MayMatchRange(node.children[1], granule);
    case Expr::Kind::kOr:
      return MayMatchRange(node.children[0], granule) ||
             MayMatchRange(node.children[1], granule);
    case Expr::Kind::kCompare: {
      const Node& lhs = node.children[0];
      const Node& rhs = node.children[1];
      if (lhs.c->kind != Expr::Kind::kColumn ||
          rhs.c->kind != Expr::Kind::kLiteral || !rhs.c->literal_is_numeric)
        return true;
      const storage::GranuleMarks* marks = lhs.column->granule_marks();
      if (marks == nullptr || granule >= marks->NumGranules()) return true;
      double v = rhs.c->num_literal;
      double lo = marks->min_vals[granule];
      double hi = marks->max_vals[granule];
      switch (node.c->op) {
        case Expr::CmpOp::kEq:
          return lo <= v && v <= hi;
        case Expr::CmpOp::kLt:
          return lo < v;
        case Expr::CmpOp::kLe:
          return lo <= v;
        case Expr::CmpOp::kGt:
          return hi > v;
        case Expr::CmpOp::kGe:
          return hi >= v;
        case Expr::CmpOp::kNe:
          return true;
      }
      return true;
    }
    default:
      // NOT / LIKE / REGEX: no usable range info.
      return true;
  }
}

// ---- Vectorized evaluation -------------------------------------------------

namespace {

/// Rows per EvalRange block: a multiple of both the granule size (128) and
/// the bitmap word size, small enough that AND/OR temporaries live on the
/// stack.
constexpr size_t kEvalBlockRows = 4096;
constexpr size_t kEvalBlockWords = kEvalBlockRows / 64;

}  // namespace

void PredicateEvaluator::LeafRange(const Node& node, size_t begin, size_t end,
                                   uint64_t* words) const {
  switch (node.c->kind) {
    case Expr::Kind::kCompare: {
      if (node.children.size() == 2 &&
          node.children[0].c->kind == Expr::Kind::kColumn &&
          node.children[1].c->kind == Expr::Kind::kLiteral) {
        const storage::Column& col = *node.children[0].column;
        const CNode& rhs = *node.children[1].c;
        if (col.type() == storage::ColumnType::kInt64 &&
            rhs.literal_is_numeric) {
          CompareColumnWords(col.raw_ints().data(), node.c->op,
                             rhs.num_literal, begin, end, words);
          return;
        }
        if (col.type() == storage::ColumnType::kFloat64 &&
            rhs.literal_is_numeric) {
          CompareColumnWords(col.raw_doubles().data(), node.c->op,
                             rhs.num_literal, begin, end, words);
          return;
        }
        if (col.type() == storage::ColumnType::kString) {
          const std::string* s = std::get_if<std::string>(&rhs.literal);
          if (s == nullptr) break;  // type mismatch: all-false, like EvalNode
          const Expr::CmpOp op = node.c->op;
          FillRowPredWords(begin, end, words, [&col, s, op](size_t row) {
            return CompareStrings(op, col.GetString(row), *s);
          });
          return;
        }
      }
      break;
    }
    case Expr::Kind::kLike: {
      const Node& cn = node.children[0];
      if (cn.column == nullptr ||
          cn.column->type() != storage::ColumnType::kString)
        break;
      const storage::Column& col = *cn.column;
      const CNode* c = node.c;
      FillRowPredWords(begin, end, words, [&col, c](size_t row) {
        return MatchLike(*c, col.GetString(row));
      });
      return;
    }
    case Expr::Kind::kRegex: {
      const Node& cn = node.children[0];
      if (cn.column == nullptr ||
          cn.column->type() != storage::ColumnType::kString)
        break;
      const storage::Column& col = *cn.column;
      const std::regex& re = node.c->regex;
      FillRowPredWords(begin, end, words, [&col, &re](size_t row) {
        std::string_view text = col.GetString(row);
        return std::regex_search(text.begin(), text.end(), re);
      });
      return;
    }
    default:
      break;
  }
  // Unsupported shape: EvalNode returns false for every row.
  std::fill(words, words + WordsFor(end - begin), uint64_t{0});
}

void PredicateEvaluator::RefineRange(const Node& node, size_t begin,
                                     size_t end, uint64_t* words) const {
  const size_t width = WordsFor(end - begin);
  for (size_t wi = 0; wi < width; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
      const size_t row = begin + (wi << 6) + bit;
      if (!EvalNode(node, row)) words[wi] &= ~(uint64_t{1} << bit);
      w &= w - 1;
    }
  }
}

void PredicateEvaluator::OrRefineRange(const Node& node, size_t begin,
                                       size_t end, uint64_t* words) const {
  const size_t nbits = end - begin;
  const size_t width = WordsFor(nbits);
  for (size_t wi = 0; wi < width; ++wi) {
    // Only visit clear bits that map to real rows of this range.
    const uint64_t valid = ((wi + 1) << 6) <= nbits
                               ? ~uint64_t{0}
                               : (uint64_t{1} << (nbits & 63)) - 1;
    uint64_t w = ~words[wi] & valid;
    while (w != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
      const size_t row = begin + (wi << 6) + bit;
      if (EvalNode(node, row)) words[wi] |= uint64_t{1} << bit;
      w &= w - 1;
    }
  }
}

void PredicateEvaluator::EvalRange(const Node& node, size_t begin, size_t end,
                                   uint64_t* words) const {
  BH_DCHECK_MSG((begin & 63) == 0 && end - begin <= kEvalBlockRows,
                "EvalRange block misaligned or oversized");
  const size_t width = WordsFor(end - begin);
  switch (node.c->kind) {
    case Expr::Kind::kAnd: {
      // Cheapest conjunct first; the expensive arm then only runs on
      // surviving rows (lazy) or word-ANDs in (cheap).
      const Node* first = &node.children[0];
      const Node* second = &node.children[1];
      if (first->c->cost > second->c->cost) std::swap(first, second);
      EvalRange(*first, begin, end, words);
      bool any = false;
      for (size_t i = 0; i < width; ++i)
        if (words[i] != 0) {
          any = true;
          break;
        }
      if (!any) return;
      if (second->c->cost >= CompiledPredicate::kLazyEvalCost) {
        RefineRange(*second, begin, end, words);
        return;
      }
      uint64_t tmp[kEvalBlockWords];
      EvalRange(*second, begin, end, tmp);
      for (size_t i = 0; i < width; ++i) words[i] &= tmp[i];
      return;
    }
    case Expr::Kind::kOr: {
      const Node* first = &node.children[0];
      const Node* second = &node.children[1];
      if (first->c->cost > second->c->cost) std::swap(first, second);
      EvalRange(*first, begin, end, words);
      if (second->c->cost >= CompiledPredicate::kLazyEvalCost) {
        // Expensive disjunct only runs on rows the cheap arm rejected.
        OrRefineRange(*second, begin, end, words);
        return;
      }
      uint64_t tmp[kEvalBlockWords];
      EvalRange(*second, begin, end, tmp);
      for (size_t i = 0; i < width; ++i) words[i] |= tmp[i];
      return;
    }
    case Expr::Kind::kNot: {
      EvalRange(node.children[0], begin, end, words);
      for (size_t i = 0; i < width; ++i) words[i] = ~words[i];
      const size_t tail = (end - begin) & 63;
      if (tail != 0) words[width - 1] &= (uint64_t{1} << tail) - 1;
      return;
    }
    default:
      LeafRange(node, begin, end, words);
      return;
  }
}

common::Bitset PredicateEvaluator::BuildBitmap(
    const common::Bitset* deletes, bool use_granule_pruning) const {
  const size_t n = segment_->num_rows();
  common::Bitset bitmap(n);
  if (n == 0) return bitmap;
  // Granule geometry matches SegmentBuilder's marks (128 rows), so granule
  // boundaries are always 64-bit-word aligned.
  constexpr size_t kGranuleRows = 128;
  const size_t num_granules = (n + kGranuleRows - 1) / kGranuleRows;
  uint64_t* words = bitmap.mutable_words().data();
  size_t g = 0;
  while (g < num_granules) {
    if (use_granule_pruning && !MayMatchRange(root_, g)) {
      ++g;
      continue;
    }
    // Coalesce the run of surviving granules into one columnar sweep,
    // blocked so word-level temporaries stay on the stack.
    const size_t run_begin = g;
    do {
      ++g;
    } while (g < num_granules &&
             (!use_granule_pruning || MayMatchRange(root_, g)));
    const size_t begin = run_begin * kGranuleRows;
    const size_t end = std::min(n, g * kGranuleRows);
    for (size_t b = begin; b < end; b += kEvalBlockRows)
      EvalRange(root_, b, std::min(end, b + kEvalBlockRows),
                words + (b >> 6));
  }
  if (deletes != nullptr) {
    // Fold the delete bitmap with one word-level AndNot pass; a shorter
    // bitmap means "no deletes past its end" (the Test() convention).
    auto& bw = bitmap.mutable_words();
    const auto& dw = deletes->words();
    const size_t m = std::min(bw.size(), dw.size());
    for (size_t i = 0; i < m; ++i) bw[i] &= ~dw[i];
  }
  return bitmap;
}

// ---- Segment-level pruning -------------------------------------------------

bool MayMatchSegment(const Expr& expr, const storage::SegmentMeta& meta) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return MayMatchSegment(*expr.children[0], meta) &&
             MayMatchSegment(*expr.children[1], meta);
    case Expr::Kind::kOr:
      return MayMatchSegment(*expr.children[0], meta) ||
             MayMatchSegment(*expr.children[1], meta);
    case Expr::Kind::kCompare: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (lhs.kind != Expr::Kind::kColumn ||
          rhs.kind != Expr::Kind::kLiteral || !IsNumericLiteral(rhs.literal))
        return true;
      auto it = meta.numeric_ranges.find(lhs.column);
      if (it == meta.numeric_ranges.end()) return true;
      double v = LiteralToDouble(rhs.literal);
      double lo = it->second.first;
      double hi = it->second.second;
      switch (expr.op) {
        case Expr::CmpOp::kEq:
          return lo <= v && v <= hi;
        case Expr::CmpOp::kLt:
          return lo < v;
        case Expr::CmpOp::kLe:
          return lo <= v;
        case Expr::CmpOp::kGt:
          return hi > v;
        case Expr::CmpOp::kGe:
          return hi >= v;
        case Expr::CmpOp::kNe:
          return true;
      }
      return true;
    }
    default:
      return true;  // conservative for NOT/LIKE/REGEX
  }
}

}  // namespace blendhouse::sql
