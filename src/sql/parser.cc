#include "sql/parser.h"

#include <algorithm>
#include <cstdlib>

#include "sql/lexer.h"

namespace blendhouse::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  common::Result<Statement> Parse() {
    const Token& t = Peek();
    if (t.IsKeyword("CREATE")) return ParseCreateTable();
    if (t.IsKeyword("INSERT")) return ParseInsert();
    if (t.IsKeyword("SELECT")) return ParseSelect();
    if (t.IsKeyword("EXPLAIN")) return ParseExplain();
    if (t.IsKeyword("UPDATE")) return ParseUpdate();
    if (t.IsKeyword("DELETE")) return ParseDelete();
    if (t.IsKeyword("OPTIMIZE")) return ParseOptimize();
    if (t.IsKeyword("SET")) return ParseSet();
    return Error("expected a statement keyword");
  }

 private:
  const Token& Peek(size_t off = 0) const {
    size_t i = std::min(pos_ + off, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  common::Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw))
      return common::Status::InvalidArgument(
          "expected '" + std::string(kw) + "' near offset " +
          std::to_string(Peek().position));
    return common::Status::Ok();
  }
  common::Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s))
      return common::Status::InvalidArgument(
          "expected '" + std::string(s) + "' near offset " +
          std::to_string(Peek().position));
    return common::Status::Ok();
  }
  common::Result<std::string> ExpectIdentifier() {
    if (!Peek().Is(Token::Type::kIdentifier))
      return common::Status::InvalidArgument(
          "expected identifier near offset " +
          std::to_string(Peek().position));
    return Advance().text;
  }
  common::Status Error(std::string_view msg) const {
    return common::Status::InvalidArgument(
        std::string(msg) + " near offset " + std::to_string(Peek().position));
  }
  void SkipStatementEnd() {
    MatchSymbol(";");
  }

  // ---- values --------------------------------------------------------------

  common::Result<storage::Value> ParseValue() {
    const Token& t = Peek();
    if (t.Is(Token::Type::kInteger)) {
      Advance();
      return storage::Value(
          static_cast<int64_t>(std::strtoll(t.text.c_str(), nullptr, 10)));
    }
    if (t.Is(Token::Type::kFloat)) {
      Advance();
      return storage::Value(std::strtod(t.text.c_str(), nullptr));
    }
    if (t.Is(Token::Type::kString)) {
      Advance();
      return storage::Value(t.text);
    }
    if (t.IsSymbol("[")) {
      auto vec = ParseVectorLiteral();
      if (!vec.ok()) return vec.status();
      return storage::Value(std::move(*vec));
    }
    return Error("expected a literal value");
  }

  common::Result<std::vector<float>> ParseVectorLiteral() {
    BH_RETURN_IF_ERROR(ExpectSymbol("["));
    std::vector<float> vec;
    if (!Peek().IsSymbol("]")) {
      for (;;) {
        const Token& t = Peek();
        if (!t.Is(Token::Type::kInteger) && !t.Is(Token::Type::kFloat))
          return Error("expected number in vector literal");
        vec.push_back(std::strtof(t.text.c_str(), nullptr));
        Advance();
        if (!MatchSymbol(",")) break;
      }
    }
    BH_RETURN_IF_ERROR(ExpectSymbol("]"));
    return vec;
  }

  // ---- predicates ----------------------------------------------------------

  common::Result<ExprPtr> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs.status();
    ExprPtr expr = std::move(*lhs);
    while (MatchKeyword("OR")) {
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs.status();
      expr = Expr::Or(std::move(expr), std::move(*rhs));
    }
    return expr;
  }

  common::Result<ExprPtr> ParseAndExpr() {
    auto lhs = ParseUnaryExpr();
    if (!lhs.ok()) return lhs.status();
    ExprPtr expr = std::move(*lhs);
    while (MatchKeyword("AND")) {
      auto rhs = ParseUnaryExpr();
      if (!rhs.ok()) return rhs.status();
      expr = Expr::And(std::move(expr), std::move(*rhs));
    }
    return expr;
  }

  common::Result<ExprPtr> ParseUnaryExpr() {
    if (MatchKeyword("NOT")) {
      auto inner = ParseUnaryExpr();
      if (!inner.ok()) return inner.status();
      return Expr::Not(std::move(*inner));
    }
    return ParsePrimaryExpr();
  }

  common::Result<ExprPtr> ParsePrimaryExpr() {
    if (MatchSymbol("(")) {
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner.status();
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    auto column = ExpectIdentifier();
    if (!column.ok()) return column.status();

    if (MatchKeyword("BETWEEN")) {
      auto lo = ParseValue();
      if (!lo.ok()) return lo.status();
      BH_RETURN_IF_ERROR(ExpectKeyword("AND"));
      auto hi = ParseValue();
      if (!hi.ok()) return hi.status();
      return Expr::And(
          Expr::Compare(Expr::CmpOp::kGe, Expr::Column(*column),
                        Expr::Literal(std::move(*lo))),
          Expr::Compare(Expr::CmpOp::kLe, Expr::Column(*column),
                        Expr::Literal(std::move(*hi))));
    }
    if (MatchKeyword("LIKE")) {
      if (!Peek().Is(Token::Type::kString))
        return Error("LIKE expects a string pattern");
      std::string pattern = Advance().text;
      return Expr::Like(Expr::Column(*column), std::move(pattern));
    }
    if (MatchKeyword("REGEXP") || MatchKeyword("MATCH")) {
      if (!Peek().Is(Token::Type::kString))
        return Error("REGEXP expects a string pattern");
      std::string pattern = Advance().text;
      return Expr::Regex(Expr::Column(*column), std::move(pattern));
    }

    Expr::CmpOp op;
    const Token& t = Peek();
    if (t.IsSymbol("=")) {
      op = Expr::CmpOp::kEq;
    } else if (t.IsSymbol("!=") || t.IsSymbol("<>")) {
      op = Expr::CmpOp::kNe;
    } else if (t.IsSymbol("<=")) {
      op = Expr::CmpOp::kLe;
    } else if (t.IsSymbol("<")) {
      op = Expr::CmpOp::kLt;
    } else if (t.IsSymbol(">=")) {
      op = Expr::CmpOp::kGe;
    } else if (t.IsSymbol(">")) {
      op = Expr::CmpOp::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    Advance();
    auto value = ParseValue();
    if (!value.ok()) return value.status();
    return Expr::Compare(op, Expr::Column(*column),
                         Expr::Literal(std::move(*value)));
  }

  // ---- CREATE TABLE ---------------------------------------------------------

  common::Result<storage::ColumnType> ParseColumnType() {
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    std::string t = *name;
    std::transform(t.begin(), t.end(), t.begin(), ::toupper);
    if (t == "INT64" || t == "UINT64" || t == "INT32" || t == "UINT32" ||
        t == "DATETIME")
      return storage::ColumnType::kInt64;
    if (t == "FLOAT32" || t == "FLOAT64" || t == "DOUBLE")
      return storage::ColumnType::kFloat64;
    if (t == "STRING") return storage::ColumnType::kString;
    if (t == "ARRAY") {
      BH_RETURN_IF_ERROR(ExpectSymbol("("));
      auto inner = ExpectIdentifier();  // Float32
      if (!inner.ok()) return inner.status();
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return storage::ColumnType::kFloatVector;
    }
    return Error("unknown column type: " + *name);
  }

  common::Status ParseIndexDef(storage::TableSchema* schema) {
    // INDEX name column TYPE <IndexType>('K=V', ...)
    auto index_name = ExpectIdentifier();
    if (!index_name.ok()) return index_name.status();
    auto column = ExpectIdentifier();
    if (!column.ok()) return column.status();
    BH_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
    auto type = ExpectIdentifier();
    if (!type.ok()) return type.status();

    vecindex::IndexSpec spec;
    spec.type = *type;
    std::transform(spec.type.begin(), spec.type.end(), spec.type.begin(),
                   ::toupper);
    if (MatchSymbol("(")) {
      if (!Peek().IsSymbol(")")) {
        for (;;) {
          if (!Peek().Is(Token::Type::kString))
            return Error("index params must be 'KEY=VALUE' strings");
          std::string kv = Advance().text;
          size_t eq = kv.find('=');
          if (eq == std::string::npos)
            return common::Status::InvalidArgument("bad index param: " + kv);
          std::string key = kv.substr(0, eq);
          std::transform(key.begin(), key.end(), key.begin(), ::toupper);
          spec.params[key] = kv.substr(eq + 1);
          if (!MatchSymbol(",")) break;
        }
      }
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    spec.dim = static_cast<size_t>(spec.GetInt("DIM", 0));
    if (auto it = spec.params.find("METRIC"); it != spec.params.end()) {
      std::string m = it->second;
      std::transform(m.begin(), m.end(), m.begin(), ::toupper);
      if (m == "IP")
        spec.metric = vecindex::Metric::kInnerProduct;
      else if (m == "COSINE")
        spec.metric = vecindex::Metric::kCosine;
    }

    int col = schema->FindColumn(*column);
    if (col < 0)
      return common::Status::InvalidArgument("index on unknown column: " +
                                             *column);
    schema->index_spec = std::move(spec);
    schema->vector_column = col;
    return common::Status::Ok();
  }

  /// Partition item: `col` or `fn(col)` — the function (e.g. toYYYYMMDD) is
  /// recorded but partitioning uses the column value directly.
  common::Result<std::string> ParsePartitionItem() {
    auto first = ExpectIdentifier();
    if (!first.ok()) return first.status();
    if (MatchSymbol("(")) {
      auto inner = ExpectIdentifier();
      if (!inner.ok()) return inner.status();
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return *inner;
    }
    return *first;
  }

  common::Result<Statement> ParseCreateTable() {
    BH_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    BH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.schema.table_name = *name;
    BH_RETURN_IF_ERROR(ExpectSymbol("("));

    for (;;) {
      if (Peek().IsKeyword("INDEX")) {
        Advance();
        BH_RETURN_IF_ERROR(ParseIndexDef(&stmt.schema));
      } else {
        auto col_name = ExpectIdentifier();
        if (!col_name.ok()) return col_name.status();
        auto col_type = ParseColumnType();
        if (!col_type.ok()) return col_type.status();
        stmt.schema.columns.push_back({*col_name, *col_type});
      }
      if (!MatchSymbol(",")) break;
    }
    BH_RETURN_IF_ERROR(ExpectSymbol(")"));

    while (!Peek().Is(Token::Type::kEnd) && !Peek().IsSymbol(";")) {
      if (MatchKeyword("ORDER")) {
        BH_RETURN_IF_ERROR(ExpectKeyword("BY"));
        auto col = ParsePartitionItem();  // allow fn(col) here too
        if (!col.ok()) return col.status();
        // Sorting key recorded implicitly via ingestion order; accepted for
        // dialect compatibility.
      } else if (MatchKeyword("PARTITION")) {
        BH_RETURN_IF_ERROR(ExpectKeyword("BY"));
        std::vector<std::string> items;
        if (MatchSymbol("(")) {
          for (;;) {
            auto item = ParsePartitionItem();
            if (!item.ok()) return item.status();
            items.push_back(*item);
            if (!MatchSymbol(",")) break;
          }
          BH_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          auto item = ParsePartitionItem();
          if (!item.ok()) return item.status();
          items.push_back(*item);
        }
        for (const std::string& item : items) {
          int col = stmt.schema.FindColumn(item);
          if (col < 0)
            return common::Status::InvalidArgument(
                "PARTITION BY unknown column: " + item);
          stmt.schema.partition_columns.push_back(col);
        }
      } else if (MatchKeyword("CLUSTER")) {
        BH_RETURN_IF_ERROR(ExpectKeyword("BY"));
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        BH_RETURN_IF_ERROR(ExpectKeyword("INTO"));
        if (!Peek().Is(Token::Type::kInteger))
          return Error("CLUSTER BY expects a bucket count");
        stmt.schema.semantic_buckets =
            static_cast<size_t>(std::strtoull(Advance().text.c_str(),
                                              nullptr, 10));
        BH_RETURN_IF_ERROR(ExpectKeyword("BUCKETS"));
      } else {
        return Error("unexpected clause in CREATE TABLE");
      }
    }
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kCreateTable;
    out.create_table = std::move(stmt);
    return out;
  }

  // ---- INSERT ---------------------------------------------------------------

  common::Result<Statement> ParseInsert() {
    BH_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    BH_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = *name;
    BH_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      BH_RETURN_IF_ERROR(ExpectSymbol("("));
      storage::Row row;
      for (;;) {
        auto v = ParseValue();
        if (!v.ok()) return v.status();
        row.values.push_back(std::move(*v));
        if (!MatchSymbol(",")) break;
      }
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (!MatchSymbol(",")) break;
    }
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kInsert;
    out.insert = std::move(stmt);
    return out;
  }

  // ---- SELECT ---------------------------------------------------------------

  bool IsDistanceFn(const Token& t) const {
    return t.IsKeyword("L2Distance") || t.IsKeyword("InnerProduct") ||
           t.IsKeyword("CosineDistance");
  }

  common::Result<Statement> ParseSelect() {
    BH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    if (MatchSymbol("*")) {
      stmt.select_star = true;
    } else {
      for (;;) {
        auto col = ExpectIdentifier();
        if (!col.ok()) return col.status();
        stmt.select_columns.push_back(*col);
        if (!MatchSymbol(",")) break;
      }
    }
    BH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto table = ExpectIdentifier();
    if (!table.ok()) return table.status();
    stmt.table = *table;
    // Qualified names (database.table) — used by the system.metrics virtual
    // table; stored as one dotted string.
    if (MatchSymbol(".")) {
      auto second = ExpectIdentifier();
      if (!second.ok()) return second.status();
      stmt.table += '.';
      stmt.table += *second;
      // Table-valued argument — system.query_trace(<trace_id>).
      if (MatchSymbol("(")) {
        if (!Peek().Is(Token::Type::kInteger))
          return Error("table argument expects an integer");
        stmt.table_arg = static_cast<uint64_t>(
            std::strtoull(Advance().text.c_str(), nullptr, 10));
        BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
    }

    if (MatchKeyword("WHERE")) {
      auto pred = ParseOrExpr();
      if (!pred.ok()) return pred.status();
      stmt.where = std::move(*pred);
    }

    if (MatchKeyword("ORDER")) {
      BH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (!IsDistanceFn(Peek()))
        return Error(
            "ORDER BY supports only distance functions "
            "(L2Distance/InnerProduct/CosineDistance)");
      AnnClause ann;
      ann.distance_fn = Advance().text;
      BH_RETURN_IF_ERROR(ExpectSymbol("("));
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      ann.vector_column = *col;
      BH_RETURN_IF_ERROR(ExpectSymbol(","));
      auto vec = ParseVectorLiteral();
      if (!vec.ok()) return vec.status();
      ann.query_vector = std::move(*vec);
      BH_RETURN_IF_ERROR(ExpectSymbol(")"));
      ann.alias = "dist";
      if (MatchKeyword("AS")) {
        auto alias = ExpectIdentifier();
        if (!alias.ok()) return alias.status();
        ann.alias = *alias;
      }
      if (MatchKeyword("DESC")) ann.ascending = false;
      else MatchKeyword("ASC");
      stmt.ann = std::move(ann);
    }

    if (MatchKeyword("LIMIT")) {
      if (!Peek().Is(Token::Type::kInteger))
        return Error("LIMIT expects an integer");
      size_t k = static_cast<size_t>(
          std::strtoull(Advance().text.c_str(), nullptr, 10));
      if (stmt.ann.has_value())
        stmt.ann->limit = k;
      else
        stmt.scalar_limit = k;
      if (MatchKeyword("OFFSET")) {
        if (!Peek().Is(Token::Type::kInteger))
          return Error("OFFSET expects an integer");
        size_t n = static_cast<size_t>(
            std::strtoull(Advance().text.c_str(), nullptr, 10));
        if (stmt.ann.has_value())
          stmt.ann->offset = n;
        else
          stmt.scalar_offset = n;
      }
    }
    SkipStatementEnd();

    if (stmt.ann.has_value() && stmt.ann->limit == 0)
      return common::Status::InvalidArgument(
          "vector search requires LIMIT k");

    Statement out;
    out.kind = Statement::Kind::kSelect;
    out.select = std::move(stmt);
    return out;
  }

  common::Result<Statement> ParseExplain() {
    BH_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
    ExplainStmt stmt;
    stmt.analyze = MatchKeyword("ANALYZE");
    auto inner = ParseSelect();
    if (!inner.ok()) return inner.status();
    stmt.select = std::move(*inner->select);

    Statement out;
    out.kind = Statement::Kind::kExplain;
    out.explain = std::move(stmt);
    return out;
  }

  // ---- UPDATE / DELETE / OPTIMIZE --------------------------------------------

  common::Result<Statement> ParseUpdate() {
    BH_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = *name;
    BH_RETURN_IF_ERROR(ExpectKeyword("SET"));
    for (;;) {
      auto col = ExpectIdentifier();
      if (!col.ok()) return col.status();
      BH_RETURN_IF_ERROR(ExpectSymbol("="));
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      stmt.assignments.emplace_back(*col, std::move(*value));
      if (!MatchSymbol(",")) break;
    }
    BH_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    auto pred = ParseOrExpr();
    if (!pred.ok()) return pred.status();
    stmt.where = std::move(*pred);
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kUpdate;
    out.update = std::move(stmt);
    return out;
  }

  common::Result<Statement> ParseDelete() {
    BH_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    BH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = *name;
    BH_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    auto pred = ParseOrExpr();
    if (!pred.ok()) return pred.status();
    stmt.where = std::move(*pred);
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kDelete;
    out.del = std::move(stmt);
    return out;
  }

  common::Result<Statement> ParseSet() {
    BH_RETURN_IF_ERROR(ExpectKeyword("SET"));
    SetStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.name = *name;
    BH_RETURN_IF_ERROR(ExpectSymbol("="));
    // Accept bare ON/OFF/TRUE/FALSE identifiers as booleans.
    if (Peek().Is(Token::Type::kIdentifier)) {
      if (Peek().IsKeyword("ON") || Peek().IsKeyword("TRUE")) {
        Advance();
        stmt.value = int64_t{1};
      } else if (Peek().IsKeyword("OFF") || Peek().IsKeyword("FALSE")) {
        Advance();
        stmt.value = int64_t{0};
      } else {
        stmt.value = Advance().text;  // strategy names etc.
      }
    } else {
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      stmt.value = std::move(*value);
    }
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kSet;
    out.set = std::move(stmt);
    return out;
  }

  common::Result<Statement> ParseOptimize() {
    BH_RETURN_IF_ERROR(ExpectKeyword("OPTIMIZE"));
    BH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    OptimizeStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) return name.status();
    stmt.table = *name;
    MatchKeyword("FINAL");
    SkipStatementEnd();

    Statement out;
    out.kind = Statement::Kind::kOptimize;
    out.optimize = std::move(stmt);
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Statement> ParseStatement(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

common::Result<std::string> ParameterizedSignature(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  std::string sig;
  size_t i = 0;
  const std::vector<Token>& toks = *tokens;
  while (i < toks.size() && !toks[i].Is(Token::Type::kEnd)) {
    const Token& t = toks[i];
    if (t.IsSymbol("[")) {
      // Collapse a whole vector literal to one placeholder.
      size_t depth = 0;
      while (i < toks.size()) {
        if (toks[i].IsSymbol("[")) ++depth;
        if (toks[i].IsSymbol("]") && --depth == 0) break;
        ++i;
      }
      ++i;
      sig += "? ";
      continue;
    }
    if (t.Is(Token::Type::kInteger) || t.Is(Token::Type::kFloat) ||
        t.Is(Token::Type::kString)) {
      sig += "? ";
    } else {
      std::string text = t.text;
      if (t.Is(Token::Type::kIdentifier))
        std::transform(text.begin(), text.end(), text.begin(), ::toupper);
      sig += text;
      sig += ' ';
    }
    ++i;
  }
  return sig;
}

}  // namespace blendhouse::sql
