#pragma once

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace blendhouse::sql {

/// Recursive-descent parser for the hybrid-query SQL dialect of the paper's
/// Example 1. Supported statements:
///
///   CREATE TABLE t (col Type, ..., INDEX name col TYPE HNSW('DIM=96',...))
///     [ORDER BY col] [PARTITION BY (col, ...)]
///     [CLUSTER BY col INTO n BUCKETS];
///   INSERT INTO t VALUES (v, ..., [f1, f2, ...]), ...;
///   SELECT cols FROM t [WHERE pred]
///     [ORDER BY L2Distance(col, [q...]) AS d] [LIMIT k];
///   UPDATE t SET col = v, ... WHERE pred;
///   DELETE FROM t WHERE pred;
///   OPTIMIZE TABLE t;
///
/// Predicates: comparisons, BETWEEN, AND/OR/NOT, LIKE, REGEXP.
/// Distance functions: L2Distance, InnerProduct, CosineDistance.
common::Result<Statement> ParseStatement(const std::string& sql);

/// Replaces literals/vectors in a SELECT with placeholders, producing the
/// parameterized signature used as the plan-cache key (paper §IV-C), e.g.
/// "SELECT id FROM t WHERE x > ? ORDER BY L2Distance(emb,?) LIMIT ?".
common::Result<std::string> ParameterizedSignature(const std::string& sql);

}  // namespace blendhouse::sql
