#include "sql/lexer.h"

#include <cctype>

namespace blendhouse::sql {

bool Token::IsKeyword(std::string_view kw) const {
  if (type != Type::kIdentifier || text.size() != kw.size()) return false;
  for (size_t i = 0; i < kw.size(); ++i)
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i])))
      return false;
  return true;
}

common::Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? sql[i + off] : '\0';
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && peek(1) == '-') {  // comment to end of line
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }

    Token tok;
    tok.position = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t begin = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_'))
        ++i;
      tok.type = Token::Type::kIdentifier;
      tok.text = std::string(sql.substr(begin, i - begin));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) ||
               (c == '-' && (std::isdigit(static_cast<unsigned char>(peek(1))) ||
                             peek(1) == '.'))) {
      size_t begin = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !is_float) {
          is_float = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                    sql[i + 1] == '-' || sql[i + 1] == '+')) {
          is_float = true;
          i += 2;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
          break;
        } else {
          break;
        }
      }
      tok.type = is_float ? Token::Type::kFloat : Token::Type::kInteger;
      tok.text = std::string(sql.substr(begin, i - begin));
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'' && peek(1) == '\'') {  // escaped quote
          value += '\'';
          i += 2;
        } else if (sql[i] == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          value += sql[i++];
        }
      }
      if (!closed)
        return common::Status::InvalidArgument("unterminated string literal");
      tok.type = Token::Type::kString;
      tok.text = std::move(value);
    } else {
      // Multi-char operators first.
      if ((c == '!' && peek(1) == '=') || (c == '<' && peek(1) == '=') ||
          (c == '>' && peek(1) == '=') || (c == '<' && peek(1) == '>')) {
        tok.type = Token::Type::kSymbol;
        tok.text = std::string(sql.substr(i, 2));
        i += 2;
      } else if (std::string_view("()[],;=<>*.").find(c) !=
                 std::string_view::npos) {
        tok.type = Token::Type::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return common::Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
      }
    }
    tokens.push_back(std::move(tok));
  }

  Token end;
  end.type = Token::Type::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace blendhouse::sql
