#pragma once

#include <cstddef>
#include <string>

namespace blendhouse::sql {

/// Physical execution strategy for a hybrid (filtered vector search) query.
/// Maps to the paper's Fig. 8: Plan A / Plan B / Plan C.
enum class ExecStrategy {
  kBruteForce = 0,  // Plan A: filter first, exact distances on survivors
  kPreFilter,       // Plan B: bitmap from filter, then bitmap ANN scan
  kPostFilter,      // Plan C: iterator ANN scan first, filter candidates
};

const char* ExecStrategyName(ExecStrategy s);

/// Per-operation cost constants (Table II). Units are arbitrary but
/// consistent; defaults are calibrated so one float multiply-add ~ 1.
struct CostModelParams {
  /// c_d: fetch one vector and compute an exact pairwise distance.
  /// Scales with dimensionality; set via ForDim().
  double c_d = 96.0;
  /// c_c: fetch a code and run ADC (PQ) — or a full distance for indexes
  /// without codes, where c_c == c_d.
  double c_c = 16.0;
  /// c_p: one bitmap membership test.
  double c_p = 1.0;
  /// Structured index scan cost per row (the T0 term is t0_per_row * n).
  double t0_per_row = 0.5;
  /// sigma: result amplification of ANN scan operators (refine factor).
  double sigma = 2.0;

  /// Defaults scaled for a `dim`-dimensional index of the given type.
  /// `graph_degree` is the HNSW M parameter (ignored for IVF indexes):
  /// every node a graph scan settles expands ~M neighbors, each costing a
  /// full distance evaluation, so per-visit costs carry an M factor.
  static CostModelParams ForIndex(size_t dim, const std::string& index_type,
                                  size_t graph_degree = 16);
};

/// Inputs shared by the three plan cost formulas.
struct PlanCostInputs {
  /// n: total tuples under consideration.
  size_t n = 0;
  /// s: fraction of tuples passing the structured predicate (from the
  /// histogram estimator).
  double s = 1.0;
  /// beta: fraction of tuples visited by a plain ANN scan (ef_search / n or
  /// nprobe/nlist).
  double beta = 0.05;
  /// gamma: fraction visited by the ANN *bitmap* scan.
  double gamma = 0.05;
  /// k: requested result count.
  size_t k = 10;
};

/// Eq. (1): cost_A = T0 + s*n*c_d.
double CostPlanA(const PlanCostInputs& in, const CostModelParams& p);
/// Eq. (2): cost_B = T0 + gamma*n*(1/s)*(c_p + s*c_c) + sigma*k*c_d.
double CostPlanB(const PlanCostInputs& in, const CostModelParams& p);
/// Eq. (3): cost_C = beta*n*(1/s)*c_c + sigma*k*c_d.
double CostPlanC(const PlanCostInputs& in, const CostModelParams& p);

struct StrategyChoice {
  ExecStrategy strategy;
  double cost_a, cost_b, cost_c;
};

/// The CBO decision: evaluates all three formulas and picks the minimum.
StrategyChoice ChooseStrategy(const PlanCostInputs& in,
                              const CostModelParams& p);

}  // namespace blendhouse::sql
