#include "sql/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <utility>

#include "common/assert.h"
#include "common/future.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "vecindex/distance.h"
#include "vecindex/generic_iterator.h"
#include "vecindex/scan_counters.h"

namespace blendhouse::sql {

namespace {

/// Scalar prune callback: numeric min/max ranges plus string-equality
/// checks against partition key parts.
bool SegmentMayMatch(const Expr& expr, const storage::SegmentMeta& meta,
                     const storage::TableSchema& schema) {
  if (!MayMatchSegment(expr, meta)) return false;
  // String equality on a partition column prunes by the encoded key parts.
  if (expr.kind == Expr::Kind::kAnd)
    return SegmentMayMatch(*expr.children[0], meta, schema) &&
           SegmentMayMatch(*expr.children[1], meta, schema);
  if (expr.kind == Expr::Kind::kCompare && expr.op == Expr::CmpOp::kEq &&
      expr.children[0]->kind == Expr::Kind::kColumn &&
      expr.children[1]->kind == Expr::Kind::kLiteral) {
    const std::string* want =
        std::get_if<std::string>(&expr.children[1]->literal);
    if (want == nullptr || meta.partition_key.empty()) return true;
    int col = schema.FindColumn(expr.children[0]->column);
    // Is this column part of the partition key?
    for (size_t i = 0; i < schema.partition_columns.size(); ++i) {
      if (schema.partition_columns[i] != col) continue;
      // Extract the i-th '|'-separated part of the key.
      std::string_view key = meta.partition_key;
      size_t part = 0, begin = 0;
      for (size_t j = 0; j <= key.size(); ++j) {
        if (j == key.size() || key[j] == '|') {
          if (part == i)
            return key.substr(begin, j - begin) == *want;
          ++part;
          begin = j + 1;
        }
      }
    }
  }
  return true;
}

float OutputDistance(vecindex::Metric metric, float internal) {
  // IP is internally negated so smaller = more similar; report the raw dot.
  return metric == vecindex::Metric::kInnerProduct ? -internal : internal;
}

/// Deep copy of a bound query: the predicate tree is cloned so the copy
/// shares nothing with the caller's stack.
BoundQuery CopyBoundQuery(const BoundQuery& b) {
  BoundQuery c;
  c.table = b.table;
  if (b.filter != nullptr) c.filter = b.filter->Clone();
  c.has_ann = b.has_ann;
  c.vector_column = b.vector_column;
  c.query_vector = b.query_vector;
  c.metric = b.metric;
  c.k = b.k;
  c.offset = b.offset;
  c.range = b.range;
  c.range_exclusive = b.range_exclusive;
  c.output_columns = b.output_columns;
  c.distance_alias = b.distance_alias;
  c.read_vector_column = b.read_vector_column;
  c.scalar_limit = b.scalar_limit;
  c.scalar_offset = b.scalar_offset;
  return c;
}

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Runs one sub-stage of a segment task under its own child span, with the
/// stage's simulated I/O attributed to that span. The nested
/// DeferredChargeScope captures the stage's charges (innermost scope wins),
/// so the I/O is handed back to the enclosing worker-level scope afterwards —
/// without the re-charge the task's AsyncTaskStats would lose it.
template <typename Fn>
auto TracedStage(const trace::TracePtr& trace, const trace::SpanPtr& parent,
                 const char* name, Fn&& fn) {
  if (trace == nullptr) return fn(static_cast<trace::Span*>(nullptr));
  trace::SpanPtr span = trace->StartSpan(name, parent);
  auto start = std::chrono::steady_clock::now();
  uint64_t sim = 0;
  auto result = [&] {
    common::DeferredChargeScope scope;
    auto r = fn(span.get());
    sim = scope.accumulated_micros();
    return r;
  }();
  span->SetBreakdown(static_cast<double>(ElapsedMicros(start)),
                     static_cast<double>(sim), 0);
  span->End();
  if (sim > 0) common::ChargeSimLatency(sim);
  return result;
}

}  // namespace

struct Executor::QueryContext {
  trace::TracePtr trace;
  BoundQuery bound;
  /// Compiled once per query (regexes, LIKE shapes, literal conversions);
  /// every segment task binds against this shared immutable form. Null when
  /// the query has no filter.
  CompiledPredicatePtr compiled_filter;
  ExecStrategy strategy;
  storage::TableSchema schema;
  storage::TableSnapshot snapshot;
  QuerySettings settings;
};

struct Executor::AttemptState {
  explicit AttemptState(size_t k) : k(k) {}

  const size_t k;
  /// Pins the workers this attempt resolved: every task closure captures the
  /// state, so the lease is released by the attempt's last straggler — not at
  /// query return — and a concurrent scale-down cannot destroy a Worker the
  /// attempt still touches.
  cluster::VirtualWarehouse::QueryLease lease;
  /// Read by segment tasks before doing work; set on first failure and on
  /// retry so stragglers of a dead attempt short-circuit instead of running.
  std::atomic<bool> cancelled{false};

  common::Mutex mu{common::lockrank::kQueryFanIn};
  /// Bounded streaming top-k: max-heap by distance of at most k candidates,
  /// folded as partial results complete.
  std::vector<Candidate> heap GUARDED_BY(mu);
  size_t outstanding GUARDED_BY(mu) = 0;
  /// The completion promise fired — either on the first failure (so retry
  /// starts without draining stragglers) or when the last task folded.
  bool completed GUARDED_BY(mu) = false;
  common::Status first_error GUARDED_BY(mu);
  size_t segments_scanned GUARDED_BY(mu) = 0;
  size_t rounds GUARDED_BY(mu) = 0;
  std::array<size_t, 5> cache_outcomes GUARDED_BY(mu){};
  size_t filter_cache_hits GUARDED_BY(mu) = 0;
  size_t filter_cache_misses GUARDED_BY(mu) = 0;
  uint64_t queue_wait_micros GUARDED_BY(mu) = 0;
  uint64_t compute_micros GUARDED_BY(mu) = 0;
  uint64_t sim_io_micros GUARDED_BY(mu) = 0;
  /// Fold of the segment tasks' ledger slices (scan counters, iterator
  /// stats, rerank rows); merged into ExecStats::ledger on success.
  common::QueryLedger ledger GUARDED_BY(mu);
  common::Promise<common::Status> done;

  void FoldCandidate(Candidate c) REQUIRES(mu) {
    auto worse = [](const Candidate& a, const Candidate& b) {
      return a.dist < b.dist;
    };
    if (heap.size() < k) {
      heap.push_back(std::move(c));
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (!heap.empty() && c.dist < heap.front().dist) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = std::move(c);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
};

common::Result<QueryResult> Executor::Execute(const OptimizedQuery& query,
                                              storage::LsmEngine& engine) {
  ExecStats stats;
  stats.strategy = query.choice.strategy;
  stats.rules_fired = query.rules_fired;
  // Every execution traces; callers that never attached one simply drop the
  // private trace on return. The span's wall clock doubles as exec_micros,
  // so there is no separate ad-hoc timer to keep consistent with the spans.
  if (trace_ == nullptr) trace_ = trace::Trace::Make("query");
  exec_span_ = trace_->StartSpan("execute", parent_span_);
  exec_span_->SetTag("strategy", ExecStrategyName(query.choice.strategy));
  auto result = query.bound.has_ann ? ExecuteAnn(query, engine, &stats)
                                    : ExecuteScalar(query, engine, &stats);
  stats.exec_micros = exec_span_->ElapsedMicros();
  exec_span_->SetBreakdown(stats.compute_micros, stats.sim_io_micros,
                           stats.queue_wait_micros);
  exec_span_->End();
  exec_span_ = nullptr;
  // Mirror the breakdown and the per-field tallies into the unified ledger.
  // Inline paths (scalar scans) never populate the async breakdown; charge
  // their wall time as compute so the ledger always accounts the query.
  stats.ledger.queue_wait_micros = stats.queue_wait_micros;
  stats.ledger.compute_micros = stats.compute_micros;
  stats.ledger.sim_io_micros = stats.sim_io_micros;
  if (stats.ledger.compute_micros + stats.ledger.sim_io_micros +
          stats.ledger.queue_wait_micros ==
      0)
    stats.ledger.compute_micros = stats.exec_micros;
  stats.ledger.filter_cache_hits = stats.filter_cache_hits;
  stats.ledger.filter_cache_misses = stats.filter_cache_misses;
  stats.ledger.segments_scanned = stats.segments_scanned;
  stats.ledger.retries = stats.retries;
  static common::metrics::HistogramMetric* exec_hist =
      common::metrics::MetricsRegistry::Instance().GetHistogram(
          "bh_sql_exec_micros");
  exec_hist->Record(stats.exec_micros);
  if (!result.ok()) return result.status();
  result->stats = stats;
  return result;
}

// ---------------------------------------------------------------------------
// ANN path
// ---------------------------------------------------------------------------

common::Result<QueryResult> Executor::ExecuteAnn(const OptimizedQuery& query,
                                                 storage::LsmEngine& engine,
                                                 ExecStats* stats) {
  const BoundQuery& bound = query.bound;
  const storage::TableSchema& schema = engine.schema();
  storage::TableSnapshot snapshot = engine.Snapshot();
  stats->segments_total = snapshot.segments.size();

  // Scalar segment pruning (partition keys + numeric ranges).
  std::vector<storage::SegmentMeta> segments = snapshot.segments;
  if (settings_.scalar_pruning && bound.filter != nullptr) {
    segments = cluster::Scheduler::PruneScalar(
        segments, [&](const storage::SegmentMeta& m) {
          return SegmentMayMatch(*bound.filter, m, schema);
        });
  }
  stats->segments_after_scalar_prune = segments.size();

  // Compile the predicate once per query: regexes, LIKE shape analysis,
  // and literal conversions are shared by every segment task of every
  // adaptive round (a bad regex also fails here, once, instead of once per
  // segment).
  CompiledPredicatePtr compiled_filter;
  if (bound.filter != nullptr) {
    auto compiled = CompiledPredicate::Compile(*bound.filter);
    if (!compiled.ok()) return compiled.status();
    compiled_filter = std::move(compiled).value();
  }

  // Semantic pruning with runtime-adaptive expansion: probe the nearest
  // buckets first; if too few results qualify, widen and scan only the
  // segments not yet covered.
  // Immutable snapshot: a concurrent first flush may publish the trained
  // partitioner mid-query, but this query keeps pruning with one view.
  std::shared_ptr<const storage::SemanticPartitioner> partitioner =
      engine.semantic_partitioner();
  size_t probe = settings_.semantic_probe_buckets;
  bool semantic = settings_.semantic_pruning && partitioner != nullptr &&
                  partitioner->trained() && schema.semantic_buckets > 0;

  std::vector<Candidate> all_candidates;
  std::vector<std::string> scanned_ids;
  for (;;) {
    std::vector<storage::SegmentMeta> round_segments =
        semantic ? cluster::Scheduler::PruneSemantic(
                       segments, *partitioner, bound.query_vector.data(), probe)
                 : segments;
    if (stats->segments_after_semantic_prune == 0)
      stats->segments_after_semantic_prune = round_segments.size();
    // Skip what earlier rounds already scanned.
    round_segments.erase(
        std::remove_if(round_segments.begin(), round_segments.end(),
                       [&](const storage::SegmentMeta& m) {
                         return std::find(scanned_ids.begin(),
                                          scanned_ids.end(),
                                          m.segment_id) != scanned_ids.end();
                       }),
        round_segments.end());

    auto candidates =
        RunOnWorkers(bound, compiled_filter, query.choice.strategy, schema,
                     round_segments, snapshot, stats);
    if (!candidates.ok()) return candidates.status();
    for (const Candidate& c : *candidates) all_candidates.push_back(c);
    for (const storage::SegmentMeta& m : round_segments)
      scanned_ids.push_back(m.segment_id);

    if (!semantic || !settings_.adaptive_semantic) break;
    if (all_candidates.size() >= bound.k + bound.offset) break;
    if (probe >= partitioner->num_buckets()) break;
    probe = std::min(partitioner->num_buckets(), probe * 2);
    ++stats->adaptive_expansions;
  }

  // Global top-(k+offset) merge of the streamed per-round top-k sets, then
  // pagination: the first `offset` rows of the global order belong to
  // earlier pages and are dropped only here, after the merge — a segment
  // cannot know which of its candidates the global order skips.
  std::sort(all_candidates.begin(), all_candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist < b.dist;
            });
  if (all_candidates.size() > bound.k + bound.offset)
    all_candidates.resize(bound.k + bound.offset);
  if (bound.offset > 0)
    all_candidates.erase(
        all_candidates.begin(),
        all_candidates.begin() + static_cast<ptrdiff_t>(std::min(
                                     bound.offset, all_candidates.size())));

  // Materialization runs on the caller thread; account its time in the
  // breakdown (sim charges deferred, then paid once below) so queue-wait +
  // compute + sim-I/O covers the whole execution, not just segment tasks.
  trace::SpanPtr mat_span = trace_->StartSpan("materialize", exec_span_);
  auto mat_start = std::chrono::steady_clock::now();
  uint64_t mat_sim = 0;
  common::Result<QueryResult> out = [&] {
    common::DeferredChargeScope scope;
    auto r = Materialize(bound, schema, std::move(all_candidates));
    mat_sim = scope.accumulated_micros();
    return r;
  }();
  double mat_compute = static_cast<double>(ElapsedMicros(mat_start));
  stats->compute_micros += mat_compute;
  stats->sim_io_micros += static_cast<double>(mat_sim);
  mat_span->SetTag("rows", std::to_string(out.ok() ? out->rows.size() : 0));
  mat_span->SetBreakdown(mat_compute, static_cast<double>(mat_sim), 0);
  mat_span->End();
  if (mat_sim > 0) common::ChargeSimLatency(mat_sim);
  return out;
}

common::Result<std::vector<Executor::Candidate>> Executor::RunOnWorkers(
    const BoundQuery& bound, const CompiledPredicatePtr& compiled_filter,
    ExecStrategy strategy, const storage::TableSchema& schema,
    const std::vector<storage::SegmentMeta>& segments,
    const storage::TableSnapshot& snapshot, ExecStats* stats) {
  if (segments.empty()) return std::vector<Candidate>{};

  // Shared immutable query context: segment tasks capture this (and only
  // this) by shared_ptr, so a straggler from a cancelled attempt keeps the
  // data it reads alive instead of dangling into our stack frame.
  auto ctx = std::make_shared<const QueryContext>(
      QueryContext{trace_, CopyBoundQuery(bound), compiled_filter, strategy,
                   schema, snapshot, settings_});
  common::TaskScheduler* sched = &vw_->task_scheduler();

  for (size_t attempt = 0;; ++attempt) {
    auto assignment =
        cluster::Scheduler::Assign(*vw_, schema.table_name, segments);
    if (topology_hook_for_test_) topology_hook_for_test_(attempt);

    // Leased from resolution onward (after the hook: the hook may scale down,
    // and RemoveWorker waits for leases — taking ours first would self-
    // deadlock). Moved into AttemptState below so the attempt's stragglers
    // keep their workers alive past our return.
    cluster::VirtualWarehouse::QueryLease lease = vw_->AcquireQueryLease();

    // Resolve the whole assignment before dispatching anything, so a stale
    // placement (topology changed mid-planning) costs no task churn.
    std::vector<std::pair<cluster::Worker*,
                          const std::vector<storage::SegmentMeta>*>>
        resolved;
    bool assignment_failed = false;
    for (auto& [worker_id, metas] : assignment) {
      cluster::Worker* worker = vw_->worker(worker_id);
      if (worker == nullptr) {
        assignment_failed = true;
        break;
      }
      resolved.emplace_back(worker, &metas);
    }

    common::Status failure;
    if (!assignment_failed) {
      auto state = std::make_shared<AttemptState>(bound.k + bound.offset);
      state->lease = std::move(lease);
      {
        common::MutexLock lock(state->mu);
        state->outstanding = segments.size();
      }
      common::Future<common::Status> done = state->done.GetFuture();

      // One task per *segment*: fine granularity keeps every pool thread of
      // every owning worker busy, and the merge streams below as results
      // complete instead of barriering per worker.
      for (auto& [worker, metas] : resolved) {
        for (const storage::SegmentMeta& meta : *metas) {
          auto slot = std::make_shared<SegmentTaskResult>();
          cluster::Worker* w = worker;
          // Span opened at dispatch so it covers pool queueing; both
          // continuations share the SpanPtr, so it survives the hop through
          // the worker pool and the delay queue, and is closed exactly once
          // in `done` (which runs for every dispatched task — success,
          // failure, skip).
          trace::SpanPtr span = trace_->StartSpan("segment_scan", exec_span_);
          span->SetTag("segment", meta.segment_id);
          span->SetTag("worker", w->id());
          if (attempt > 0) span->SetTag("attempt", std::to_string(attempt));
          // Stable submitter-affinity hint: tasks for one segment land on
          // one pool/scheduler shard across attempts and queries, keeping
          // per-segment state warm (work stealing rebalances skew).
          const size_t affinity = std::hash<std::string>{}(meta.segment_id);
          worker->SearchSegmentAsync(
              sched,
              /*search=*/
              [ctx, state, slot, w, meta, span] {
                if (state->cancelled.load(std::memory_order_acquire)) {
                  slot->skipped = true;
                  return;
                }
                *slot = RunSegment(w, *ctx, meta, span);
              },
              /*done=*/
              [state, slot, span](const cluster::AsyncTaskStats& ts) {
                span->SetBreakdown(static_cast<double>(ts.compute_micros),
                                   static_cast<double>(ts.sim_io_micros),
                                   static_cast<double>(ts.queue_wait_micros));
                span->SetTag("shard", std::to_string(ts.shard));
                if (slot->skipped) span->SetTag("skipped", "true");
                if (!slot->skipped && !slot->status.ok())
                  span->SetTag("error", slot->status.ToString());
                span->End();
                bool fire = false;
                common::Status outcome;
                {
                  common::MutexLock lock(state->mu);
                  state->queue_wait_micros += ts.queue_wait_micros;
                  state->compute_micros += ts.compute_micros;
                  state->sim_io_micros += ts.sim_io_micros;
                  if (!slot->skipped) {
                    if (!slot->status.ok()) {
                      // First failure completes the attempt immediately (the
                      // caller retries without draining stragglers) and flags
                      // the rest to short-circuit.
                      state->cancelled.store(true, std::memory_order_release);
                      if (state->first_error.ok())
                        state->first_error = slot->status;
                      if (!state->completed) {
                        state->completed = true;
                        fire = true;
                        outcome = state->first_error;
                      }
                    } else {
                      ++state->segments_scanned;
                      state->rounds += slot->rounds;
                      for (size_t i = 0; i < slot->cache_outcomes.size(); ++i)
                        state->cache_outcomes[i] += slot->cache_outcomes[i];
                      state->filter_cache_hits += slot->filter_cache_hits;
                      state->filter_cache_misses += slot->filter_cache_misses;
                      state->ledger.Merge(slot->ledger);
                      for (Candidate& c : slot->candidates)
                        state->FoldCandidate(std::move(c));
                    }
                  }
                  if (--state->outstanding == 0 && !state->completed) {
                    state->completed = true;
                    fire = true;
                    outcome = state->first_error;
                  }
                }
                // Fire the completion promise only after releasing state->mu:
                // SetValue may run the waiter's continuation inline, and that
                // continuation must be free to take any lock (the PR5
                // RemoveWorker deadlock shape; lockgraph.py flags SetValue
                // under a held lock as callback-under-lock).
                if (fire) state->done.SetValue(std::move(outcome));
              },
              affinity);
        }
      }

      // Sync bridge at the executor API boundary: park this caller until the
      // streaming merge completes (or fails fast).
      common::Status status = done.Get();
      if (status.ok()) {
        common::MutexLock lock(state->mu);
        stats->segments_scanned += state->segments_scanned;
        stats->postfilter_rounds += state->rounds;
        for (size_t i = 0; i < state->cache_outcomes.size(); ++i)
          stats->cache_outcomes[i] += state->cache_outcomes[i];
        stats->filter_cache_hits += state->filter_cache_hits;
        stats->filter_cache_misses += state->filter_cache_misses;
        stats->queue_wait_micros +=
            static_cast<double>(state->queue_wait_micros);
        stats->compute_micros += static_cast<double>(state->compute_micros);
        stats->sim_io_micros += static_cast<double>(state->sim_io_micros);
        stats->ledger.Merge(state->ledger);
        // Winning attempt's fan-out width (workers tasks were dispatched to).
        stats->ledger.workers_fanout += resolved.size();
        std::sort(state->heap.begin(), state->heap.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return a.dist < b.dist;
                  });
        return std::move(state->heap);
      }
      failure = status;
      // The failed attempt's stragglers drain in the background against the
      // shared context; cancelled is already set, so they no-op.
      state->cancelled.store(true, std::memory_order_release);
    }

    // Query-level retry (fault tolerance, §II-E): re-snapshot the topology
    // and re-run once, without blocking on the dead attempt.
    if (attempt >= settings_.max_query_retries) {
      return assignment_failed
                 ? common::Status::Aborted("worker set changed during query")
                 : failure;
    }
    ++stats->retries;
  }
}

Executor::SegmentTaskResult Executor::RunSegment(
    cluster::Worker* worker, const QueryContext& ctx,
    const storage::SegmentMeta& meta, const trace::SpanPtr& span) {
  const BoundQuery& bound = ctx.bound;
  const storage::TableSchema& schema = ctx.schema;
  const QuerySettings& settings = ctx.settings;
  SegmentTaskResult result;
  // The whole segment task runs on this one pool thread, so the scope's
  // delta at return is exactly this task's distance work, per precision
  // tier — attributed to the query's ledger without the kernels knowing.
  vecindex::scanstats::ScanCounterScope scan_scope;
  const common::Bitset* deletes = ctx.snapshot.DeletesFor(meta.segment_id);
  // Pagination widens the per-segment fetch: any of this segment's first
  // k+offset rows may survive the global merge's offset drop.
  size_t k = bound.k + bound.offset;

  vecindex::SearchParams params;
  params.k = static_cast<int>(k);
  params.ef_search = settings.ef_search;
  params.nprobe = settings.nprobe;
  params.refine_factor = settings.refine_factor;

  // Two-tier quantized scan (DESIGN.md §13): when the acquired index stores
  // reduced-precision codes, its first pass returns approximate distances
  // over a widened top-k (up to settings.rerank_depth survivors), and this
  // task reranks them in fp32 from the segment's vector column below. The
  // range bound is deferred to the exact distances.
  bool rerank_fp32 = false;
  auto widen_for_rerank = [&](const vecindex::VectorIndex& index) {
    if (index.StoragePrecision() == vecindex::Precision::kFp32) return;
    size_t depth = std::min<size_t>(
        static_cast<size_t>(std::max(1, settings.rerank_depth)),
        meta.num_rows);
    params.k = static_cast<int>(std::max(k, depth));
    rerank_fp32 = true;
  };

  auto push_candidates = [&](const std::vector<vecindex::Neighbor>& hits) {
    for (const vecindex::Neighbor& n : hits) {
      if (!rerank_fp32 && !bound.InRange(n.distance)) continue;
      result.candidates.push_back({n.distance, n.id, {}});
    }
  };

  switch (ctx.strategy) {
    case ExecStrategy::kBruteForce: {
      // Plan A: scalar filter first, exact distances on survivors only.
      auto segment = TracedStage(
          ctx.trace, span, "fetch_segment", [&](trace::Span*) {
            return worker->GetSegment(schema, meta.segment_id,
                                      settings.use_column_cache);
          });
      if (!segment.ok()) {
        result.status = segment.status();
        return result;
      }
      result.cache_outcomes[static_cast<size_t>(
          cluster::CacheOutcome::kBruteForce)]++;
      const storage::Column* vec_col =
          (*segment)->FindColumn(bound.vector_column);
      if (vec_col == nullptr) {
        result.status = common::Status::Internal("vector column missing");
        return result;
      }
      // Survivor bitmap built vectorized (deletes folded word-level), then
      // exact distances only on set bits.
      common::Bitset bitmap;
      if (bound.filter != nullptr) {
        auto bind =
            PredicateEvaluator::Bind(ctx.compiled_filter, **segment);
        if (!bind.ok()) {
          result.status = bind.status();
          return result;
        }
        bitmap = bind->BuildBitmap(deletes, settings.use_granule_pruning);
      } else {
        bitmap = common::Bitset((*segment)->num_rows(), /*initial=*/true);
        if (deletes != nullptr) {
          if (deletes->size() == bitmap.size()) {
            bitmap.AndNot(*deletes);
          } else {
            // Defensive: snapshot invariants size deletes to num_rows.
            deletes->ForEachSetBit([&](size_t i) {
              if (i < bitmap.size()) bitmap.Clear(i);
            });
          }
        }
      }
      // Top-k max-heap over qualifying rows.
      std::priority_queue<vecindex::Neighbor> heap;
      const float* qv = bound.query_vector.data();
      bitmap.ForEachSetBit([&](size_t i) {
        float d = vecindex::Distance(bound.metric, qv, vec_col->GetVector(i),
                                     vec_col->vector_dim());
        if (!bound.InRange(d)) return;
        if (heap.size() < k) {
          heap.push({static_cast<vecindex::IdType>(i), d});
        } else if (d < heap.top().distance) {
          heap.pop();
          heap.push({static_cast<vecindex::IdType>(i), d});
        }
      });
      while (!heap.empty()) {
        result.candidates.push_back({heap.top().distance, heap.top().id, {}});
        heap.pop();
      }
      break;
    }

    case ExecStrategy::kPreFilter: {
      // Plan B: build the qualifying-row bitmap, then a bitmap ANN scan.
      common::Bitset bitmap;
      std::shared_ptr<const common::Bitset> cached;  // keeps a hit alive
      if (bound.filter != nullptr) {
        // Worker-level bitmap reuse: keyed by segment identity, predicate
        // fingerprint, and the segment's delete epoch (a MarkDeleted commit
        // bumps the epoch, so stale bitmaps are never looked up again).
        std::string cache_key;
        if (settings.use_filter_bitmap_cache &&
            ctx.compiled_filter != nullptr) {
          cache_key = schema.table_name + '/' + meta.segment_id + '@' +
                      std::to_string(
                          ctx.snapshot.DeleteEpochFor(meta.segment_id)) +
                      '#' + ctx.compiled_filter->fingerprint();
          cached = worker->GetCachedFilterBitmap(cache_key);
          if (cached != nullptr) {
            ++result.filter_cache_hits;
            if (span != nullptr) span->SetTag("filter_cache", "hit");
          }
        }
        if (cached == nullptr) {
          auto fresh = TracedStage(
              ctx.trace, span, "build_filter_bitmap",
              [&](trace::Span* sp)
                  -> common::Result<std::shared_ptr<common::Bitset>> {
                if (sp != nullptr) sp->SetTag("filter_cache", "miss");
                auto segment = worker->GetSegment(schema, meta.segment_id,
                                                  settings.use_column_cache);
                if (!segment.ok()) return segment.status();
                auto bind =
                    PredicateEvaluator::Bind(ctx.compiled_filter, **segment);
                if (!bind.ok()) return bind.status();
                return std::make_shared<common::Bitset>(
                    bind->BuildBitmap(deletes, settings.use_granule_pruning));
              });
          if (!fresh.ok()) {
            result.status = fresh.status();
            return result;
          }
          if (!cache_key.empty()) {
            ++result.filter_cache_misses;
            worker->PutFilterBitmap(cache_key, *fresh);
          }
          cached = std::move(*fresh);
        }
        if (!cached->Any()) break;  // nothing qualifies in this segment
        params.filter = cached.get();
      } else if (deletes != nullptr) {
        // Deletes-only: one word-level AndNot over a full bitmap instead of
        // a per-row Test/Clear loop.
        bitmap = common::Bitset(meta.num_rows, /*initial=*/true);
        if (deletes->size() == bitmap.size()) {
          bitmap.AndNot(*deletes);
        } else {
          // Defensive: snapshot invariants size deletes to num_rows.
          deletes->ForEachSetBit([&](size_t i) {
            if (i < bitmap.size()) bitmap.Clear(i);
          });
        }
        if (!bitmap.Any()) break;
        params.filter = &bitmap;
      }
      auto acquired = TracedStage(
          ctx.trace, span, "acquire_index", [&](trace::Span* sp) {
            auto r = worker->AcquireIndex(schema, meta, settings.acquire);
            if (sp != nullptr && r.ok())
              sp->SetTag("outcome", cluster::CacheOutcomeName(r->outcome));
            return r;
          });
      if (!acquired.ok()) {
        result.status = acquired.status();
        return result;
      }
      result.cache_outcomes[static_cast<size_t>(acquired->outcome)]++;
      widen_for_rerank(*acquired->index);
      common::Result<std::vector<vecindex::Neighbor>> hits =
          bound.range >= 0
              ? acquired->index->SearchWithRange(
                    bound.query_vector.data(),
                    static_cast<float>(bound.range), params)
              : acquired->index->SearchWithFilter(bound.query_vector.data(),
                                                  params);
      if (!hits.ok()) {
        result.status = hits.status();
        return result;
      }
      push_candidates(*hits);
      break;
    }

    case ExecStrategy::kPostFilter: {
      // Plan C: iterator ANN scan first, filter candidates, refill until k
      // qualify (partial top-k pushed below the scalar filter).
      auto acquired = TracedStage(
          ctx.trace, span, "acquire_index", [&](trace::Span* sp) {
            auto r = worker->AcquireIndex(schema, meta, settings.acquire);
            if (sp != nullptr && r.ok())
              sp->SetTag("outcome", cluster::CacheOutcomeName(r->outcome));
            return r;
          });
      if (!acquired.ok()) {
        result.status = acquired.status();
        return result;
      }
      result.cache_outcomes[static_cast<size_t>(acquired->outcome)]++;
      widen_for_rerank(*acquired->index);
      if (bound.filter == nullptr && bound.range < 0 && deletes == nullptr) {
        // Nothing to post-filter (no predicate, no range, no delete bitmap):
        // a plain top-k index search is cheaper than an incremental
        // iterator.
        auto hits =
            acquired->index->SearchWithFilter(bound.query_vector.data(),
                                              params);
        if (!hits.ok()) {
          result.status = hits.status();
          return result;
        }
        push_candidates(*hits);
        break;
      }
      // Native resumable iterators retain search state across Next() calls
      // (cached score array / probe cursor / beam frontier), so refills
      // extend the search instead of restarting it; use_native_iterators
      // false forces the generic restart wrapper for A/B comparison.
      const bool native = settings.use_native_iterators &&
                          acquired->index->HasNativeIterator();
      auto iter = [&]() -> common::Result<
                            std::unique_ptr<vecindex::SearchIterator>> {
        if (settings.use_native_iterators)
          return acquired->index->MakeIterator(bound.query_vector.data(),
                                               params);
        return std::unique_ptr<vecindex::SearchIterator>(
            std::make_unique<vecindex::GenericSearchIterator>(
                acquired->index.get(), bound.query_vector.data(), params));
      }();
      if (!iter.ok()) {
        result.status = iter.status();
        return result;
      }
      if (span != nullptr)
        span->SetTag("iterator", native ? "native" : "generic");
      storage::SegmentPtr segment;  // fetched lazily, only if needed
      std::optional<PredicateEvaluator> eval;
      size_t batch_size =
          std::max<size_t>(k, k * std::max(1, settings.refine_factor));
      size_t found = 0;
      // A native iterator only moves forward, so exhaustion (empty batch)
      // is its natural stop and no round cap is needed. The restart wrapper
      // re-searches from scratch every refill and keeps the historical
      // bound.
      const size_t max_rounds = native ? std::numeric_limits<size_t>::max()
                                       : settings.max_postfilter_rounds;
      for (size_t round = 0; round < max_rounds; ++round) {
        std::vector<vecindex::Neighbor> batch = (*iter)->Next(batch_size);
        if (batch.empty()) break;
        BH_DCHECK(vecindex::IsSortedBatch(batch));
        ++result.rounds;
        for (const vecindex::Neighbor& n : batch) {
          size_t row = static_cast<size_t>(n.id);
          if (deletes != nullptr && deletes->Test(row)) continue;
          if (!rerank_fp32 && !bound.InRange(n.distance)) continue;
          if (bound.filter != nullptr) {
            if (segment == nullptr) {
              auto fetched = worker->GetSegment(schema, meta.segment_id,
                                                settings.use_column_cache);
              if (!fetched.ok()) {
                result.status = fetched.status();
                return result;
              }
              segment = *fetched;
              auto bind =
                  PredicateEvaluator::Bind(ctx.compiled_filter, *segment);
              if (!bind.ok()) {
                result.status = bind.status();
                return result;
              }
              eval = std::move(*bind);
            }
            if (!eval->EvalRow(row)) continue;
          }
          result.candidates.push_back({n.distance, n.id, {}});
          ++found;
        }
        if (found >= k) break;
        // Distances grew past the range: no point iterating further. Sound
        // because of the sorted-batch contract — batch.back() is the worst
        // hit in this batch, so the whole batch is past the radius.
        if (bound.range >= 0 && !batch.empty() &&
            batch.back().distance > bound.range)
          break;
      }
      vecindex::SearchIterator::Stats istats = (*iter)->GetStats();
      static common::metrics::Counter* iter_batches =
          common::metrics::MetricsRegistry::Instance().GetCounter(
              "bh_iter_batches");
      static common::metrics::Counter* iter_rows =
          common::metrics::MetricsRegistry::Instance().GetCounter(
              "bh_iter_rows_visited");
      static common::metrics::Counter* iter_recompute =
          common::metrics::MetricsRegistry::Instance().GetCounter(
              "bh_iter_recompute_rounds");
      iter_batches->Add(istats.batches);
      iter_rows->Add(istats.rows_visited);
      iter_recompute->Add(istats.recompute_rounds);
      result.ledger.iter_batches += istats.batches;
      result.ledger.iter_rows_visited += istats.rows_visited;
      result.ledger.iter_recompute_rounds += istats.recompute_rounds;
      if (span != nullptr)
        span->SetTag("iter_rows_visited",
                     std::to_string(istats.rows_visited));
      break;
    }
  }

  if (rerank_fp32 && !result.candidates.empty()) {
    // Second tier: exact fp32 distances for the quantized first pass's
    // survivors, straight from the segment's vector column (candidate ids
    // are row offsets). The deferred range bound applies to the exact
    // distances, and the sort below re-ranks before the top-k truncation.
    common::Status reranked = TracedStage(
        ctx.trace, span, "fp32_rerank", [&](trace::Span* sp) {
          auto segment = worker->GetSegment(schema, meta.segment_id,
                                            settings.use_column_cache);
          if (!segment.ok()) return segment.status();
          const storage::Column* vec_col =
              (*segment)->FindColumn(bound.vector_column);
          if (vec_col == nullptr)
            return common::Status::Internal("vector column missing");
          const float* qv = bound.query_vector.data();
          for (Candidate& c : result.candidates)
            c.dist = vecindex::Distance(
                bound.metric, qv,
                vec_col->GetVector(static_cast<size_t>(c.row)),
                vec_col->vector_dim());
          if (sp != nullptr)
            sp->SetTag("rows", std::to_string(result.candidates.size()));
          static common::metrics::Counter* rerank_rows =
              common::metrics::MetricsRegistry::Instance().GetCounter(
                  "bh_exec_fp32_rerank_rows");
          rerank_rows->Add(result.candidates.size());
          result.ledger.fp32_rerank_rows += result.candidates.size();
          return common::Status::Ok();
        });
    if (!reranked.ok()) {
      result.status = reranked;
      return result;
    }
    if (bound.range >= 0) {
      result.candidates.erase(
          std::remove_if(result.candidates.begin(), result.candidates.end(),
                         [&](const Candidate& c) {
                           return !bound.InRange(c.dist);
                         }),
          result.candidates.end());
    }
  }

  // Keep only this segment's partial top-k, tagged with its identity.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist < b.dist;
            });
  if (result.candidates.size() > k) result.candidates.resize(k);
  for (Candidate& c : result.candidates) c.segment_id = meta.segment_id;

  vecindex::scanstats::TierCounts scans = scan_scope.Delta();
  for (size_t i = 0; i < vecindex::scanstats::kNumTiers; ++i)
    result.ledger.distance_comps[i] += scans.dist[i];
  result.ledger.rows_scanned += scans.total();
  result.ledger.segments_scanned += 1;
  if (span != nullptr && scans.total() > 0)
    span->SetTag("distance_comps", std::to_string(scans.total()));
  return result;
}

common::Result<QueryResult> Executor::Materialize(
    const BoundQuery& bound, const storage::TableSchema& schema,
    std::vector<Candidate> candidates) {
  QueryResult out;
  out.column_names = bound.output_columns;

  // Group winning rows by segment for one fetch per segment (reduces the
  // read amplification of scattered ANN results).
  std::map<std::string, std::vector<size_t>> by_segment;  // -> candidate idx
  for (size_t i = 0; i < candidates.size(); ++i)
    by_segment[candidates[i].segment_id].push_back(i);

  std::vector<storage::Row> rows(candidates.size());
  for (auto& [segment_id, idxs] : by_segment) {
    auto segment = FetchForMaterialize(schema, segment_id);
    if (!segment.ok()) return segment.status();
    for (size_t idx : idxs) {
      const Candidate& c = candidates[idx];
      storage::Row row;
      row.values.reserve(bound.output_columns.size());
      for (const std::string& col_name : bound.output_columns) {
        if (col_name == bound.distance_alias && bound.has_ann) {
          row.values.push_back(static_cast<double>(
              OutputDistance(bound.metric, c.dist)));
          continue;
        }
        const storage::Column* col = (*segment)->FindColumn(col_name);
        if (col == nullptr)
          return common::Status::Internal("output column missing: " +
                                          col_name);
        row.values.push_back(col->GetValue(static_cast<size_t>(c.row)));
      }
      rows[idx] = std::move(row);
    }
  }
  out.rows = std::move(rows);
  return out;
}

common::Result<storage::SegmentPtr> Executor::FetchForMaterialize(
    const storage::TableSchema& schema, const std::string& segment_id) {
  cluster::VirtualWarehouse::QueryLease lease = vw_->AcquireQueryLease();
  cluster::Worker* owner = vw_->OwnerOf(
      storage::SegmentKeys::Index(schema.table_name, segment_id));
  if (owner == nullptr) return common::Status::Aborted("no worker available");
  if (!settings_.use_column_cache)
    return owner->GetSegment(schema, segment_id, /*use_cache=*/false);
  if (owner->PeekCachedSegment(schema, segment_id) != nullptr)
    return owner->GetSegment(schema, segment_id, /*use_cache=*/true);
  // Column data is stateless: any worker holding the segment hot can hand
  // the needed rows over for one RPC hop, sparing a cold remote read right
  // after scaling.
  for (cluster::Worker* peer : vw_->workers()) {
    if (peer == owner) continue;
    storage::SegmentPtr cached = peer->PeekCachedSegment(schema, segment_id);
    if (cached != nullptr) {
      return cached;
    }
  }
  return owner->GetSegment(schema, segment_id, /*use_cache=*/true);
}

// ---------------------------------------------------------------------------
// Scalar path (no ANN clause)
// ---------------------------------------------------------------------------

common::Result<QueryResult> Executor::ExecuteScalar(
    const OptimizedQuery& query, storage::LsmEngine& engine,
    ExecStats* stats) {
  const BoundQuery& bound = query.bound;
  const storage::TableSchema& schema = engine.schema();
  storage::TableSnapshot snapshot = engine.Snapshot();
  stats->segments_total = snapshot.segments.size();

  std::vector<storage::SegmentMeta> segments = snapshot.segments;
  if (settings_.scalar_pruning && bound.filter != nullptr) {
    segments = cluster::Scheduler::PruneScalar(
        segments, [&](const storage::SegmentMeta& m) {
          return SegmentMayMatch(*bound.filter, m, schema);
        });
  }
  stats->segments_after_scalar_prune = segments.size();

  QueryResult out;
  out.column_names = bound.output_columns;
  size_t limit = bound.scalar_limit.value_or(
      std::numeric_limits<size_t>::max());
  // OFFSET skips the first qualifying rows in scan order (pagination for
  // non-ANN queries).
  size_t to_skip = bound.scalar_offset.value_or(0);

  CompiledPredicatePtr compiled_filter;
  if (bound.filter != nullptr) {
    auto compiled = CompiledPredicate::Compile(*bound.filter);
    if (!compiled.ok()) return compiled.status();
    compiled_filter = std::move(compiled).value();
  }

  cluster::VirtualWarehouse::QueryLease lease = vw_->AcquireQueryLease();
  for (const storage::SegmentMeta& meta : segments) {
    if (out.rows.size() >= limit) break;
    cluster::Worker* owner = vw_->OwnerOf(
        storage::SegmentKeys::Index(schema.table_name, meta.segment_id));
    if (owner == nullptr)
      return common::Status::Aborted("no worker available");
    auto segment = owner->GetSegment(schema, meta.segment_id,
                                     settings_.use_column_cache);
    if (!segment.ok()) return segment.status();
    ++stats->segments_scanned;
    const common::Bitset* deletes = snapshot.DeletesFor(meta.segment_id);

    std::optional<PredicateEvaluator> eval;
    if (compiled_filter != nullptr) {
      auto bind = PredicateEvaluator::Bind(compiled_filter, **segment);
      if (!bind.ok()) return bind.status();
      eval = std::move(*bind);
    }
    for (size_t i = 0; i < (*segment)->num_rows() && out.rows.size() < limit;
         ++i) {
      ++stats->ledger.rows_scanned;
      if (deletes != nullptr && deletes->Test(i)) continue;
      if (eval.has_value() && !eval->EvalRow(i)) continue;
      if (to_skip > 0) {
        --to_skip;
        continue;
      }
      storage::Row row;
      row.values.reserve(bound.output_columns.size());
      for (const std::string& col_name : bound.output_columns) {
        const storage::Column* col = (*segment)->FindColumn(col_name);
        if (col == nullptr)
          return common::Status::InvalidArgument("unknown column: " +
                                                 col_name);
        row.values.push_back(col->GetValue(i));
      }
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE support
// ---------------------------------------------------------------------------

common::Result<std::vector<std::pair<std::string, std::vector<uint64_t>>>>
Executor::FindMatchingRows(storage::LsmEngine& engine, const Expr* filter) {
  storage::TableSnapshot snapshot = engine.Snapshot();
  std::vector<std::pair<std::string, std::vector<uint64_t>>> matches;
  CompiledPredicatePtr compiled_filter;
  if (filter != nullptr) {
    auto compiled = CompiledPredicate::Compile(*filter);
    if (!compiled.ok()) return compiled.status();
    compiled_filter = std::move(compiled).value();
  }
  for (const storage::SegmentMeta& meta : snapshot.segments) {
    if (filter != nullptr &&
        !SegmentMayMatch(*filter, meta, engine.schema()))
      continue;
    auto segment = engine.FetchSegment(meta.segment_id);
    if (!segment.ok()) return segment.status();
    const common::Bitset* deletes = snapshot.DeletesFor(meta.segment_id);

    std::optional<PredicateEvaluator> eval;
    if (compiled_filter != nullptr) {
      auto bind = PredicateEvaluator::Bind(compiled_filter, **segment);
      if (!bind.ok()) return bind.status();
      eval = std::move(*bind);
    }
    std::vector<uint64_t> offsets;
    if (eval.has_value()) {
      // Vectorized: the bitmap already folds deletes word-level; compact
      // surviving offsets via set-bit iteration.
      common::Bitset bitmap = eval->BuildBitmap(deletes, true);
      offsets.reserve(bitmap.Count());
      bitmap.ForEachSetBit(
          [&](size_t i) { offsets.push_back(static_cast<uint64_t>(i)); });
    } else {
      for (size_t i = 0; i < (*segment)->num_rows(); ++i) {
        if (deletes != nullptr && deletes->Test(i)) continue;
        offsets.push_back(i);
      }
    }
    if (!offsets.empty())
      matches.emplace_back(meta.segment_id, std::move(offsets));
  }
  return matches;
}

}  // namespace blendhouse::sql
