#pragma once

#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "storage/segment.h"

namespace blendhouse::sql {

/// Scalar predicate expression tree (the WHERE clause). Supports the
/// operator set of the paper's workloads: comparisons and ranges over
/// numeric columns, equality over strings, LIKE patterns, and REGEXP
/// matching (the LAION caption workload).
struct Expr {
  enum class Kind {
    kColumn,    // leaf: column reference
    kLiteral,   // leaf: constant
    kCompare,   // lhs op rhs
    kAnd,
    kOr,
    kNot,
    kLike,      // column LIKE 'pat%' ('%' and '_' wildcards)
    kRegex,     // column REGEXP 'pattern'
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind;
  // kColumn
  std::string column;
  // kLiteral
  storage::Value literal = int64_t{0};
  // kCompare
  CmpOp op = CmpOp::kEq;
  // children (kCompare: [lhs, rhs]; kAnd/kOr: [a, b]; kNot: [a];
  // kLike/kRegex: [column-expr])
  std::vector<std::unique_ptr<Expr>> children;
  // kLike / kRegex
  std::string pattern;

  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Literal(storage::Value v);
  static std::unique_ptr<Expr> Compare(CmpOp op, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> And(std::unique_ptr<Expr> a,
                                   std::unique_ptr<Expr> b);
  static std::unique_ptr<Expr> Or(std::unique_ptr<Expr> a,
                                  std::unique_ptr<Expr> b);
  static std::unique_ptr<Expr> Not(std::unique_ptr<Expr> a);
  static std::unique_ptr<Expr> Like(std::unique_ptr<Expr> col,
                                    std::string pattern);
  static std::unique_ptr<Expr> Regex(std::unique_ptr<Expr> col,
                                     std::string pattern);

  std::unique_ptr<Expr> Clone() const;
  std::string ToString() const;

  /// Collects every referenced column name into `out`.
  void CollectColumns(std::vector<std::string>* out) const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Compiled evaluator over one segment: resolves column references to
/// Column pointers and precompiles regexes once, then evaluates per row.
class PredicateEvaluator {
 public:
  /// Binds `expr` against the segment's columns. Fails on unknown columns.
  static common::Result<PredicateEvaluator> Bind(
      const Expr& expr, const storage::Segment& segment);

  bool EvalRow(size_t row) const;

  /// Builds the pre-filter bitmap over all rows (rows where the predicate
  /// holds, minus deleted rows). Uses granule marks to skip whole granules
  /// whose [min,max] cannot satisfy the predicate.
  common::Bitset BuildBitmap(const common::Bitset* deletes,
                             bool use_granule_pruning) const;

 private:
  struct Node {
    Expr::Kind kind;
    Expr::CmpOp op = Expr::CmpOp::kEq;
    const storage::Column* column = nullptr;  // kColumn leaves
    storage::Value literal;
    std::vector<Node> children;
    std::regex regex;       // kRegex
    std::string like_pattern;  // kLike
  };

  bool EvalNode(const Node& node, size_t row) const;
  /// Conservative: may any row in [begin,end) satisfy `node`?
  bool MayMatchRange(const Node& node, size_t granule) const;

  const storage::Segment* segment_ = nullptr;
  Node root_;

  static common::Status BuildNode(const Expr& expr,
                                  const storage::Segment& segment,
                                  Node* node);
};

/// Conservative segment-level prune test: can any row of a segment with
/// these meta stats satisfy `expr`? Used by the scheduler's scalar pruning.
/// Unknown columns / operators conservatively return true.
bool MayMatchSegment(const Expr& expr, const storage::SegmentMeta& meta);

/// Simple SQL LIKE matcher ('%' = any run, '_' = any single char).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace blendhouse::sql
