#pragma once

#include <memory>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "storage/segment.h"

namespace blendhouse::sql {

/// Scalar predicate expression tree (the WHERE clause). Supports the
/// operator set of the paper's workloads: comparisons and ranges over
/// numeric columns, equality over strings, LIKE patterns, and REGEXP
/// matching (the LAION caption workload).
struct Expr {
  enum class Kind {
    kColumn,    // leaf: column reference
    kLiteral,   // leaf: constant
    kCompare,   // lhs op rhs
    kAnd,
    kOr,
    kNot,
    kLike,      // column LIKE 'pat%' ('%' and '_' wildcards)
    kRegex,     // column REGEXP 'pattern'
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind;
  // kColumn
  std::string column;
  // kLiteral
  storage::Value literal = int64_t{0};
  // kCompare
  CmpOp op = CmpOp::kEq;
  // children (kCompare: [lhs, rhs]; kAnd/kOr: [a, b]; kNot: [a];
  // kLike/kRegex: [column-expr])
  std::vector<std::unique_ptr<Expr>> children;
  // kLike / kRegex
  std::string pattern;

  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Literal(storage::Value v);
  static std::unique_ptr<Expr> Compare(CmpOp op, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> And(std::unique_ptr<Expr> a,
                                   std::unique_ptr<Expr> b);
  static std::unique_ptr<Expr> Or(std::unique_ptr<Expr> a,
                                  std::unique_ptr<Expr> b);
  static std::unique_ptr<Expr> Not(std::unique_ptr<Expr> a);
  static std::unique_ptr<Expr> Like(std::unique_ptr<Expr> col,
                                    std::string pattern);
  static std::unique_ptr<Expr> Regex(std::unique_ptr<Expr> col,
                                     std::string pattern);

  std::unique_ptr<Expr> Clone() const;
  std::string ToString() const;

  /// Collects every referenced column name into `out`.
  void CollectColumns(std::vector<std::string>* out) const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Per-query compiled form of an Expr, shared immutably by every segment
/// bind of the query: regexes compiled once (not once per segment), LIKE
/// patterns classified into anchored fast paths (exact / prefix / suffix /
/// substring), literals pre-converted to their comparison domain, and each
/// node tagged with a per-row cost estimate that drives cheapest-first
/// conjunct ordering in the vectorized evaluator.
class CompiledPredicate {
 public:
  /// Compiles `expr`. Fails (InvalidArgument) on a malformed regex, so a bad
  /// pattern is rejected once at bind/plan time instead of per segment.
  static common::Result<std::shared_ptr<const CompiledPredicate>> Compile(
      const Expr& expr);

  /// Canonical textual form of the source expression (literals included);
  /// the predicate component of filter-bitmap cache keys.
  const std::string& fingerprint() const { return fingerprint_; }

 private:
  friend class PredicateEvaluator;

  /// Anchored LIKE fast paths: everything except kGeneric avoids the
  /// backtracking matcher.
  enum class LikeShape { kGeneric, kExact, kPrefix, kSuffix, kContains };

  /// Relative per-row evaluation cost; string leaves at or above
  /// kLazyEvalCost are evaluated lazily (only on rows surviving the cheap
  /// word-level conjuncts).
  static constexpr int kLazyEvalCost = 8;

  struct CNode {
    Expr::Kind kind = Expr::Kind::kLiteral;
    Expr::CmpOp op = Expr::CmpOp::kEq;
    std::string column;      // kColumn
    storage::Value literal;  // kLiteral
    // Pre-converted literal views (kLiteral only).
    double num_literal = 0;
    bool literal_is_numeric = false;
    std::regex regex;  // kRegex, compiled once per query
    LikeShape like_shape = LikeShape::kGeneric;
    std::string like_pattern;  // original pattern (generic matcher)
    std::string like_literal;  // wildcard-free payload of anchored shapes
    int cost = 0;
    std::vector<CNode> children;
  };

  static common::Status CompileNode(const Expr& expr, CNode* node);

  CNode root_;
  std::string fingerprint_;
};

using CompiledPredicatePtr = std::shared_ptr<const CompiledPredicate>;

/// Evaluator of one compiled predicate over one segment: binding resolves
/// column references to Column pointers (all per-query state — regexes,
/// literal conversions, LIKE shapes — lives in the shared CompiledPredicate).
///
/// Two evaluation modes:
///  - EvalRow: row-at-a-time tree interpretation (the reference
///    implementation, and what post-filter candidate checks use).
///  - BuildBitmap: vectorized columnar evaluation — typed leaf kernels emit
///    64-bit bitmap words over granule runs, AND/OR/NOT combine at word
///    level, and expensive leaves (LIKE/REGEXP/string) run only on rows
///    surviving the cheap numeric conjuncts.
class PredicateEvaluator {
 public:
  /// Binds a per-query compiled predicate against the segment's columns.
  /// Fails on unknown columns.
  static common::Result<PredicateEvaluator> Bind(
      CompiledPredicatePtr compiled, const storage::Segment& segment);

  /// Convenience: compile + bind in one step. The executor prefers the
  /// per-query Compile + per-segment Bind split so regexes compile once.
  static common::Result<PredicateEvaluator> Bind(
      const Expr& expr, const storage::Segment& segment);

  bool EvalRow(size_t row) const;

  /// Builds the pre-filter bitmap over all rows (rows where the predicate
  /// holds, minus deleted rows; the delete bitmap is folded with one
  /// word-level AndNot pass). Uses granule marks to skip whole granules
  /// whose [min,max] cannot satisfy the predicate.
  common::Bitset BuildBitmap(const common::Bitset* deletes,
                             bool use_granule_pruning) const;

 private:
  using CNode = CompiledPredicate::CNode;

  /// Thin per-segment mirror of the compiled tree: static node state is
  /// read through `c`, only column resolution is per segment.
  struct Node {
    const CNode* c = nullptr;
    const storage::Column* column = nullptr;  // kColumn leaves
    std::vector<Node> children;
  };

  common::Status BindNode(const CNode& cnode, Node* node);

  /// LIKE via the precompiled shape (exact/prefix/suffix/substring fast
  /// paths; generic patterns fall back to the backtracking matcher). Shared
  /// by EvalNode and the columnar LIKE kernel so both modes agree bit for
  /// bit.
  static bool MatchLike(const CompiledPredicate::CNode& c,
                        std::string_view text);

  bool EvalNode(const Node& node, size_t row) const;
  /// Conservative: may any row in [begin,end) satisfy `node`?
  bool MayMatchRange(const Node& node, size_t granule) const;

  /// Vectorized evaluation of `node` over rows [begin, end) into `words`
  /// (bit 0 of words[0] = row `begin`; begin must be 64-aligned).
  void EvalRange(const Node& node, size_t begin, size_t end,
                 uint64_t* words) const;
  /// Typed columnar leaf kernels emitting words directly.
  void LeafRange(const Node& node, size_t begin, size_t end,
                 uint64_t* words) const;
  /// Lazy AND arm: clears set bits whose row fails `node` (ctz iteration).
  void RefineRange(const Node& node, size_t begin, size_t end,
                   uint64_t* words) const;
  /// Lazy OR arm: sets clear bits whose row satisfies `node`.
  void OrRefineRange(const Node& node, size_t begin, size_t end,
                     uint64_t* words) const;

  const storage::Segment* segment_ = nullptr;
  CompiledPredicatePtr compiled_;  // owns regexes/literals Node points into
  Node root_;
};

/// Conservative segment-level prune test: can any row of a segment with
/// these meta stats satisfy `expr`? Used by the scheduler's scalar pruning.
/// Unknown columns / operators conservatively return true.
bool MayMatchSegment(const Expr& expr, const storage::SegmentMeta& meta);

/// Simple SQL LIKE matcher ('%' = any run, '_' = any single char).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace blendhouse::sql
