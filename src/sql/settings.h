#pragma once

#include <cstddef>
#include <optional>

#include "cluster/worker.h"
#include "sql/cost_model.h"
#include "vecindex/types.h"

namespace blendhouse::sql {

/// Session-level query settings. Every optimization the paper evaluates can
/// be toggled here, which is what the ablation benches flip.
struct QuerySettings {
  // ---- ANN search knobs ----
  int ef_search = 64;
  int nprobe = 8;
  int refine_factor = 2;

  // ---- Reduced-precision pipeline (DESIGN.md §13) ----
  /// Default storage precision injected into CREATE TABLE index specs that
  /// don't set PRECISION themselves (`SET distance_precision = 'int8'`).
  vecindex::Precision distance_precision = vecindex::Precision::kFp32;
  /// Survivors of a quantized first pass that get exact fp32 rerank per
  /// segment; the first-pass k is widened to min(rerank_depth, rows).
  int rerank_depth = 4096;

  // ---- Cost-based optimization (Fig. 15) ----
  bool use_cbo = true;
  /// Strategy used when the CBO is disabled (the paper's CBO-off default).
  ExecStrategy default_strategy = ExecStrategy::kPreFilter;
  /// Hard override for experiments.
  std::optional<ExecStrategy> forced_strategy;

  // ---- Segment pruning (Fig. 16) ----
  bool scalar_pruning = true;
  bool semantic_pruning = true;
  /// Buckets probed initially under semantic pruning.
  size_t semantic_probe_buckets = 2;
  /// Expand probed buckets at runtime when results come up short.
  bool adaptive_semantic = true;

  // ---- Workload-aware read optimizations (Fig. 17, READ_Opt) ----
  bool use_column_cache = true;
  bool use_granule_pruning = true;
  /// Reuse pre-filter bitmaps across queries via the worker-level cache
  /// keyed by (segment, predicate fingerprint, delete epoch).
  bool use_filter_bitmap_cache = true;

  // ---- Workload-aware plan optimizations (Fig. 17, Query_Opt) ----
  bool use_plan_cache = true;
  bool short_circuit = true;

  // ---- Disaggregation behaviour (Fig. 11/18) ----
  cluster::AcquireOptions acquire;

  /// Serve post-filter refills from each index's native resumable iterator
  /// when it has one (retained search state, no restart). Off forces the
  /// generic restart-with-doubled-k wrapper everywhere — the A/B toggle the
  /// postfilter_iterator bench flips.
  bool use_native_iterators = true;

  /// Refill rounds bound for the post-filter loop when it is served by the
  /// generic restart wrapper (each round re-searches from scratch, so the
  /// loop must be bounded). Native resumable iterators ignore this: they
  /// only ever move forward, so exhaustion is their natural stop.
  size_t max_postfilter_rounds = 16;

  /// Query-level retries on worker/scheduling failures (fault tolerance).
  size_t max_query_retries = 1;

  /// Tail-based trace retention floor (DESIGN.md §15): any query slower
  /// than this many milliseconds keeps its trace, regardless of its
  /// fingerprint's rolling p99. 0 leaves only the adaptive p99 rule (and
  /// the always-keep-errors rule) active. `SET slow_query_threshold_ms`.
  double slow_query_threshold_ms = 0;
};

}  // namespace blendhouse::sql
