#pragma once

#include <cstddef>

#include "vecindex/types.h"

namespace blendhouse::vecindex {

/// Squared Euclidean distance. Plain loop written for compiler
/// autovectorization; all indexes share these kernels.
float L2Sqr(const float* a, const float* b, size_t dim);

/// Dot product.
float InnerProduct(const float* a, const float* b, size_t dim);

/// 1 - cosine similarity (so that smaller = closer, like L2).
float CosineDistance(const float* a, const float* b, size_t dim);

/// Metric-dispatched distance where smaller always means closer:
/// L2 -> squared L2; IP -> -dot; Cosine -> 1-cos.
float Distance(Metric metric, const float* a, const float* b, size_t dim);

/// Distance from `query` to `n` packed vectors, writing n outputs.
void BatchDistance(Metric metric, const float* query, const float* base,
                   size_t n, size_t dim, float* out);

}  // namespace blendhouse::vecindex
