#pragma once

#include <cstddef>

#include "vecindex/kernels/kernels.h"
#include "vecindex/types.h"

namespace blendhouse::vecindex {

// Distance entry points. All of them route through the SIMD kernel layer
// (vecindex/kernels/): AVX-512 / AVX2 / NEON / scalar selected once at
// startup. Hot paths should resolve a DistanceFn / BatchDistanceFn once per
// index instance via ResolveDistance / ResolveBatchDistance instead of
// re-dispatching on Metric per call.

/// Squared Euclidean distance.
float L2Sqr(const float* a, const float* b, size_t dim);

/// Dot product.
float InnerProduct(const float* a, const float* b, size_t dim);

/// 1 - cosine similarity (so that smaller = closer, like L2). Returns 1.0
/// when either vector has zero norm.
float CosineDistance(const float* a, const float* b, size_t dim);

/// Squared Euclidean norm of one vector (= InnerProduct(v, v)).
float SquaredNorm(const float* v, size_t dim);

/// Metric-dispatched distance where smaller always means closer:
/// L2 -> squared L2; IP -> -dot; Cosine -> 1-cos. Cold-path convenience;
/// prefer ResolveDistance on scans.
float Distance(Metric metric, const float* a, const float* b, size_t dim);

/// Comparable-distance function resolved once for a metric; same smaller =
/// closer convention as Distance(). Re-resolve after
/// kernels::SetActiveTier.
using DistanceFn = kernels::DistFn;
DistanceFn ResolveDistance(Metric metric);

/// Batched one-query-vs-many variant (4-way register blocking + prefetch in
/// the SIMD tiers). base holds n packed dim-length rows.
using BatchDistanceFn = kernels::BatchDistFn;
BatchDistanceFn ResolveBatchDistance(Metric metric);

/// Distance from `query` to `n` packed vectors, writing n outputs.
void BatchDistance(Metric metric, const float* query, const float* base,
                   size_t n, size_t dim, float* out);

/// Cosine distance from a raw dot product and precomputed Euclidean
/// magnitudes (NOT squared norms). Zero magnitude on either side yields 1.0
/// — the shared zero-norm convention.
inline float CosineFromDot(float dot, float query_norm, float base_norm) {
  float denom = query_norm * base_norm;
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - dot / denom;
}

/// Cosine fast path for scans with precomputed base magnitudes: batched dot
/// kernel, then CosineFromDot per row. Avoids recomputing every stored
/// vector's norm on every query.
void BatchCosineWithNorms(const float* query, const float* base,
                          const float* base_norms, float query_norm, size_t n,
                          size_t dim, float* out);

}  // namespace blendhouse::vecindex
