#include "vecindex/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "vecindex/distance.h"

namespace blendhouse::vecindex {

namespace {

/// k-means++ seeding: first centroid uniform, then each next centroid chosen
/// with probability proportional to squared distance to nearest chosen one.
std::vector<float> SeedPlusPlus(const float* data, size_t n, size_t dim,
                                size_t k, std::mt19937_64* gen) {
  std::vector<float> centroids;
  centroids.reserve(k * dim);
  std::uniform_int_distribution<size_t> pick(0, n - 1);
  size_t first = pick(*gen);
  centroids.insert(centroids.end(), data + first * dim,
                   data + (first + 1) * dim);

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  std::vector<float> last_dist(n);
  for (size_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + (c - 1) * dim;
    kernels::Get().batch_l2sqr(last, data, n, dim, last_dist.data());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (last_dist[i] < min_dist[i]) min_dist[i] = last_dist[i];
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      std::uniform_real_distribution<double> u(0.0, total);
      double target = u(*gen);
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = pick(*gen);
    }
    centroids.insert(centroids.end(), data + chosen * dim,
                     data + (chosen + 1) * dim);
  }
  return centroids;
}

}  // namespace

size_t NearestCentroid(const float* v, const float* centroids, size_t k,
                       size_t dim, float* best_dist) {
  constexpr size_t kChunk = 256;
  float dist[kChunk];
  kernels::BatchDistFn batch_l2sqr = kernels::Get().batch_l2sqr;
  size_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (size_t begin = 0; begin < k; begin += kChunk) {
    size_t n = std::min(kChunk, k - begin);
    batch_l2sqr(v, centroids + begin * dim, n, dim, dist);
    for (size_t c = 0; c < n; ++c) {
      if (dist[c] < best_d) {
        best_d = dist[c];
        best = begin + c;
      }
    }
  }
  if (best_dist != nullptr) *best_dist = best_d;
  return best;
}

common::Result<KMeansResult> RunKMeans(const float* data, size_t n, size_t dim,
                                       const KMeansOptions& options) {
  if (n == 0 || dim == 0)
    return common::Status::InvalidArgument("kmeans: empty input");
  size_t k = std::min(options.k, n);
  if (k == 0) return common::Status::InvalidArgument("kmeans: k == 0");

  std::mt19937_64 gen(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(data, n, dim, k, &gen);
  result.assignments.assign(n, 0);

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  std::vector<float> point_dist(n);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    size_t changed = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t c = NearestCentroid(data + i * dim, result.centroids.data(), k,
                                 dim, &point_dist[i]);
      if (c != result.assignments[i]) {
        result.assignments[i] = static_cast<uint32_t>(c);
        ++changed;
      }
    }
    result.iterations_run = iter + 1;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c * dim + d] += data[i * dim + d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed the empty cluster with the point farthest from its centroid.
        size_t far = static_cast<size_t>(
            std::max_element(point_dist.begin(), point_dist.end()) -
            point_dist.begin());
        std::copy(data + far * dim, data + (far + 1) * dim,
                  result.centroids.begin() + c * dim);
        point_dist[far] = 0.0f;
        continue;
      }
      for (size_t d = 0; d < dim; ++d)
        result.centroids[c * dim + d] =
            static_cast<float>(sums[c * dim + d] / counts[c]);
    }

    if (static_cast<double>(changed) <
        options.convergence_fraction * static_cast<double>(n))
      break;
  }
  return result;
}

}  // namespace blendhouse::vecindex
