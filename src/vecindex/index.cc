#include "vecindex/index.h"

#include <memory>

#include <algorithm>

#include "vecindex/generic_iterator.h"

namespace blendhouse::vecindex {

common::Result<std::vector<Neighbor>> VectorIndex::SearchWithRange(
    const float* query, float radius, const SearchParams& params) const {
  auto iter_result = MakeIterator(query, params);
  if (!iter_result.ok()) return iter_result.status();
  std::unique_ptr<SearchIterator> iter = std::move(*iter_result);

  std::vector<Neighbor> out;
  constexpr size_t kBatch = 64;
  for (;;) {
    std::vector<Neighbor> batch = iter->Next(kBatch);
    if (batch.empty()) break;
    size_t in_range = 0;
    for (const Neighbor& n : batch) {
      if (n.distance <= radius) {
        out.push_back(n);
        ++in_range;
      }
    }
    // Iterators yield in roughly increasing distance; once an entire batch
    // falls beyond the radius there is nothing closer left to find.
    if (in_range == 0) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

common::Result<std::unique_ptr<SearchIterator>> VectorIndex::MakeIterator(
    const float* query, const SearchParams& params) const {
  return std::unique_ptr<SearchIterator>(
      std::make_unique<GenericSearchIterator>(this, query, params));
}

}  // namespace blendhouse::vecindex
