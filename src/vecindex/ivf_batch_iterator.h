#pragma once

#include <vector>

#include "vecindex/index.h"
#include "vecindex/ivf_index.h"

namespace blendhouse::vecindex {

/// Native resumable iterator for IVF indexes whose list scans yield final
/// distances (IVFFLAT, including the quantized precision tiers).
///
/// Centroids are ranked once at construction; inverted lists are then
/// probed lazily in centroid-distance order, `nprobe` at a time. The probe
/// cursor and the sorted result window stay alive across Next() calls, so a
/// deeper batch *extends* nprobe — lists already visited are never
/// rescanned, which is the whole win over the generic restart wrapper
/// (whose every refill re-probes and re-scans from scratch).
class IvfBatchIterator : public SearchIterator {
 public:
  IvfBatchIterator(const IvfIndexBase* index, const float* query,
                   SearchParams params);

  std::vector<Neighbor> Next(size_t batch_size) override;
  size_t VisitedCount() const override { return stats_.rows_visited; }
  Stats GetStats() const override { return stats_; }

 private:
  /// Probes the next window of up to nprobe unvisited lists, merging their
  /// hits into the sorted pending window. False when no lists remain.
  bool ProbeNextWindow();

  const IvfIndexBase* index_;
  std::vector<float> query_;
  SearchParams params_;
  /// All centroids ranked by (distance, list id) at construction — the
  /// probe schedule, identical to the one-shot search's ranking.
  std::vector<Neighbor> centroid_order_;
  /// Lists probed so far (prefix of centroid_order_).
  size_t probed_ = 0;
  /// Codec query context (ADC scratch for PQ codecs); scratch_ owns the
  /// bytes ctx_ may point into.
  std::vector<float> scratch_;
  const void* ctx_ = nullptr;
  /// Hits from probed lists, sorted by (distance, id); [cursor_, end) are
  /// not yet served.
  std::vector<Neighbor> pending_;
  size_t cursor_ = 0;
  Stats stats_;
};

}  // namespace blendhouse::vecindex
