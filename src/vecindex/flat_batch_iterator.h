#pragma once

#include <vector>

#include "vecindex/flat_index.h"
#include "vecindex/index.h"
#include "vecindex/quantizer.h"

namespace blendhouse::vecindex {

/// Native resumable iterator for FLAT segments.
///
/// The first Next() runs exactly one full scan — filter-compacted,
/// SIMD-batched, precision-tiered, identical to FlatIndex::SearchWithFilter
/// — and caches every surviving (id, distance) as a min-heap. Every batch
/// (including the first) is then incremental heap-selection: pop batch_size
/// closest rows, O(t log n) per batch instead of the generic wrapper's
/// restarted O(n) scans with doubled k. Concatenated batches are therefore
/// bit-identical to the one-shot sorted top-n at any depth.
class FlatBatchIterator : public SearchIterator {
 public:
  FlatBatchIterator(const FlatIndex* index, const float* query,
                    SearchParams params);

  std::vector<Neighbor> Next(size_t batch_size) override;
  size_t VisitedCount() const override { return stats_.rows_visited; }
  Stats GetStats() const override { return stats_; }

 private:
  const FlatIndex* index_;
  std::vector<float> query_;
  SearchParams params_;
  /// Prepared query (fp32 pointer or quantized codes); points into query_,
  /// which outlives it.
  PrecisionStore::QueryCtx ctx_;
  /// Min-heap by (distance, id) after the first Next(); shrinks as batches
  /// are served.
  std::vector<Neighbor> scored_;
  bool scanned_ = false;
  Stats stats_;
};

}  // namespace blendhouse::vecindex
