#pragma once

#include <cstdint>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "vecindex/kernels/kernels.h"

namespace blendhouse::vecindex {

/// Product quantizer (Jegou et al.): splits vectors into `m` subspaces and
/// quantizes each against its own codebook of `ks` centroids.
///
/// `nbits` of 8 gives the classic PQ (ks=256, one byte per subspace); 4 gives
/// the fast-scan flavor the paper calls PQFS (ks=16, packed two codes per
/// byte here simply as one nibble per subspace stored bytewise).
class ProductQuantizer {
 public:
  /// Trains `m` codebooks over the training set. `dim % m` must be 0.
  common::Status Train(const float* data, size_t n, size_t dim, size_t m,
                       size_t nbits, uint64_t seed = 42);

  bool trained() const { return !codebooks_.empty(); }
  size_t dim() const { return dim_; }
  size_t m() const { return m_; }
  size_t ks() const { return ks_; }
  /// Bytes per encoded vector (one byte per subspace, both for 8 and 4 bits;
  /// the 4-bit variant trades codebook size, not storage layout, for speed).
  size_t code_size() const { return m_; }

  void Encode(const float* v, uint8_t* code) const;
  void Decode(const uint8_t* code, float* v) const;

  /// Builds the asymmetric-distance (ADC) lookup table for `query`:
  /// m * ks floats; entry [s*ks + c] is the squared L2 distance between the
  /// query's s-th subvector and centroid c of codebook s.
  void BuildAdcTable(const float* query, float* table) const;

  /// Approximate squared distance via table lookups (cost `c_c` in the
  /// paper's cost model, Eq. 2/3). Gather-based in the SIMD kernel tiers.
  float AdcDistance(const float* table, const uint8_t* code) const {
    return kernels::Get().pq_adc(table, code, m_, ks_);
  }

  /// ADC distances for `n` consecutive codes (n * code_size() bytes),
  /// written to out[0..n). Prefetches upcoming codes.
  void AdcDistanceBatch(const float* table, const uint8_t* codes, size_t n,
                        float* out) const {
    kernels::Get().pq_adc_batch(table, codes, n, m_, ks_, out);
  }

  size_t MemoryUsage() const {
    return codebooks_.size() * sizeof(float);
  }

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  size_t dim_ = 0;
  size_t m_ = 0;
  size_t ks_ = 0;
  size_t dsub_ = 0;
  /// m codebooks, each ks * dsub floats, packed consecutively.
  std::vector<float> codebooks_;
};

}  // namespace blendhouse::vecindex
