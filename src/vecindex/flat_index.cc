#include "vecindex/flat_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/io.h"

namespace blendhouse::vecindex {

namespace {
/// Rows per batched-kernel call; bounds the stack distance buffer and keeps
/// the chunk resident in L1/L2 while the heap is updated.
constexpr size_t kScanChunk = 256;
}  // namespace

common::Status FlatIndex::Train(const float* /*data*/, size_t /*n*/) {
  return common::Status::Ok();  // brute force needs no training
}

common::Status FlatIndex::AddWithIds(const float* data, const IdType* ids,
                                     size_t n) {
  data_.insert(data_.end(), data, data + n * dim_);
  ids_.insert(ids_.end(), ids, ids + n);
  if (metric_ == Metric::kCosine) {
    norms_.reserve(norms_.size() + n);
    for (size_t i = 0; i < n; ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

void FlatIndex::ScanChunk(const float* query, float query_norm, size_t begin,
                          size_t n, float* out) const {
  const float* base = data_.data() + begin * dim_;
  if (metric_ == Metric::kCosine) {
    BatchCosineWithNorms(query, base, norms_.data() + begin, query_norm, n,
                         dim_, out);
  } else {
    BatchDistance(metric_, query, base, n, dim_, out);
  }
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("flat: k must be positive");
  // Max-heap of the best k so far; pop when a closer candidate arrives.
  std::priority_queue<Neighbor> heap;
  size_t k = static_cast<size_t>(params.k);
  auto offer = [&](IdType id, float d) {
    if (heap.size() < k) {
      heap.push({id, d});
    } else if (d < heap.top().distance) {
      heap.pop();
      heap.push({id, d});
    }
  };
  if (params.filter == nullptr) {
    // Unfiltered: batched kernel over fixed-size chunks.
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(query, query_norm, begin, n, dist);
      for (size_t i = 0; i < n; ++i) offer(ids_[begin + i], dist[i]);
    }
  } else {
    // Filtered: per-row so excluded vectors cost no distance computation.
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      offer(ids_[i], dist_(query, data_.data() + i * dim_, dim_));
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithRange(
    const float* query, float radius, const SearchParams& params) const {
  std::vector<Neighbor> out;
  if (params.filter == nullptr) {
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(query, query_norm, begin, n, dist);
      for (size_t i = 0; i < n; ++i)
        if (dist[i] <= radius) out.push_back({ids_[begin + i], dist[i]});
    }
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      float d = dist_(query, data_.data() + i * dim_, dim_);
      if (d <= radius) out.push_back({ids_[i], d});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

common::Status FlatIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.WriteVector(data_);
  w.WriteVector(ids_);
  return common::Status::Ok();
}

common::Status FlatIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("flat: wrong type tag");
  uint64_t dim = 0;
  uint32_t metric = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  dist_ = ResolveDistance(metric_);
  BH_RETURN_IF_ERROR(r.ReadVector(&data_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  if (ids_.size() * dim_ != data_.size())
    return common::Status::Corruption("flat: size mismatch");
  // Norms are derived state: recompute rather than serialize, so the on-disk
  // format is unchanged from pre-kernel builds.
  norms_.clear();
  if (metric_ == Metric::kCosine) {
    norms_.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data_.data() + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
