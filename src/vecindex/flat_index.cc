#include "vecindex/flat_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/io.h"
#include "vecindex/flat_batch_iterator.h"

namespace blendhouse::vecindex {

namespace {
/// Rows per batched-kernel call; bounds the stack distance buffer and keeps
/// the chunk resident in L1/L2 while the heap is updated.
constexpr size_t kScanChunk = 256;
}  // namespace

common::Status FlatIndex::Train(const float* data, size_t n) {
  // Brute force needs no structure; int8 precision uses the sample to fix
  // its symmetric scale before any rows are encoded.
  if (quantized()) store_.Train(data, n);
  return common::Status::Ok();
}

common::Status FlatIndex::AddWithIds(const float* data, const IdType* ids,
                                     size_t n) {
  if (ids_are_offsets_) {
    const size_t base = ids_.size();
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] != static_cast<IdType>(base + i)) {
        ids_are_offsets_ = false;
        break;
      }
    }
  }
  ids_.insert(ids_.end(), ids, ids + n);
  if (quantized()) {
    // Codes only — no fp32 copy is retained (the resident-memory win).
    store_.Append(data, n);
    return common::Status::Ok();
  }
  data_.insert(data_.end(), data, data + n * dim_);
  if (metric_ == Metric::kCosine) {
    norms_.reserve(norms_.size() + n);
    for (size_t i = 0; i < n; ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

PrecisionStore::QueryCtx FlatIndex::MakeQueryCtx(const float* query) const {
  PrecisionStore::QueryCtx ctx;
  if (quantized()) {
    store_.PrepareQuery(query, &ctx);
  } else {
    ctx.query = query;
    ctx.query_norm = metric_ == Metric::kCosine
                         ? std::sqrt(SquaredNorm(query, dim_))
                         : 0.0f;
  }
  return ctx;
}

void FlatIndex::ScanChunk(const PrecisionStore::QueryCtx& ctx, size_t begin,
                          size_t n, float* out) const {
  if (quantized()) {
    store_.BatchDistance(ctx, begin, n, out);
    return;
  }
  const float* base = data_.data() + begin * dim_;
  if (metric_ == Metric::kCosine) {
    BatchCosineWithNorms(ctx.query, base, norms_.data() + begin,
                         ctx.query_norm, n, dim_, out);
  } else {
    BatchDistance(metric_, ctx.query, base, n, dim_, out);
  }
}

template <typename Emit>
void FlatIndex::ScanFiltered(const PrecisionStore::QueryCtx& ctx,
                             const common::Bitset& filter, Emit&& emit) const {
  const size_t n = ids_.size();
  const size_t row_bytes = quantized() ? store_.row_bytes() : 0;
  uint32_t rows[kScanChunk];
  float dist[kScanChunk];
  size_t cnt = 0;
  common::AlignedVector<float> gathered;        // sized on first scattered tile
  common::AlignedVector<uint8_t> gathered_codes;  // quantized counterpart
  std::vector<float> gathered_norms;
  auto flush = [&] {
    if (cnt == 0) return;
    if (static_cast<size_t>(rows[cnt - 1] - rows[0]) + 1 == cnt) {
      // Contiguous survivor run: the kernels scan storage in place.
      ScanChunk(ctx, rows[0], cnt, dist);
    } else if (quantized()) {
      // Scattered survivors over packed codes: gather the encoded rows (and
      // their magnitudes for cosine) into a dense byte tile and let one
      // batched reduced-precision kernel call cover them.
      if (gathered_codes.empty()) gathered_codes.resize(kScanChunk * row_bytes);
      for (size_t i = 0; i < cnt; ++i)
        std::memcpy(gathered_codes.data() + i * row_bytes, store_.RowPtr(rows[i]),
                    row_bytes);
      const float* norms = nullptr;
      if (metric_ == Metric::kCosine) {
        if (gathered_norms.empty()) gathered_norms.resize(kScanChunk);
        for (size_t i = 0; i < cnt; ++i)
          gathered_norms[i] = store_.norms()[rows[i]];
        norms = gathered_norms.data();
      }
      store_.BatchDistanceCodes(ctx, gathered_codes.data(), norms, cnt, dist);
    } else {
      // Scattered survivors: gather into a dense tile so one batched kernel
      // call covers them (excluded rows still cost no distance math).
      if (gathered.empty()) gathered.resize(kScanChunk * dim_);
      for (size_t i = 0; i < cnt; ++i)
        std::copy_n(data_.data() + static_cast<size_t>(rows[i]) * dim_, dim_,
                    gathered.data() + i * dim_);
      if (metric_ == Metric::kCosine) {
        if (gathered_norms.empty()) gathered_norms.resize(kScanChunk);
        for (size_t i = 0; i < cnt; ++i) gathered_norms[i] = norms_[rows[i]];
        BatchCosineWithNorms(ctx.query, gathered.data(), gathered_norms.data(),
                             ctx.query_norm, cnt, dim_, dist);
      } else {
        BatchDistance(metric_, ctx.query, gathered.data(), cnt, dim_, dist);
      }
    }
    for (size_t i = 0; i < cnt; ++i) emit(ids_[rows[i]], dist[i]);
    cnt = 0;
  };
  filter.ForEachSetBit([&](size_t row) {
    if (row >= n) return;  // filter may be sized past the index
    rows[cnt++] = static_cast<uint32_t>(row);
    if (cnt == kScanChunk) flush();
  });
  flush();
}

void FlatIndex::ComputeAllDistances(const PrecisionStore::QueryCtx& ctx,
                                    const common::Bitset* filter,
                                    std::vector<Neighbor>* out) const {
  if (filter == nullptr) {
    out->reserve(ids_.size());
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(ctx, begin, n, dist);
      for (size_t i = 0; i < n; ++i)
        out->push_back({ids_[begin + i], dist[i]});
    }
  } else if (ids_are_offsets_) {
    ScanFiltered(ctx, *filter,
                 [&](IdType id, float d) { out->push_back({id, d}); });
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!filter->Test(static_cast<size_t>(ids_[i]))) continue;
      out->push_back(
          {ids_[i], quantized()
                        ? store_.Distance1(ctx, i)
                        : dist_(ctx.query, data_.data() + i * dim_, dim_)});
    }
  }
}

common::Result<std::unique_ptr<SearchIterator>> FlatIndex::MakeIterator(
    const float* query, const SearchParams& params) const {
  return std::unique_ptr<SearchIterator>(
      std::make_unique<FlatBatchIterator>(this, query, params));
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("flat: k must be positive");
  // Max-heap of the best k so far; pop when a closer candidate arrives.
  std::priority_queue<Neighbor> heap;
  size_t k = static_cast<size_t>(params.k);
  auto offer = [&](IdType id, float d) {
    if (heap.size() < k) {
      heap.push({id, d});
    } else if (d < heap.top().distance) {
      heap.pop();
      heap.push({id, d});
    }
  };
  const PrecisionStore::QueryCtx ctx = MakeQueryCtx(query);
  if (params.filter == nullptr) {
    // Unfiltered: batched kernel over fixed-size chunks.
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(ctx, begin, n, dist);
      for (size_t i = 0; i < n; ++i) offer(ids_[begin + i], dist[i]);
    }
  } else if (ids_are_offsets_) {
    // Filter bits address row offsets == storage positions: compact
    // survivors from set bits and batch their distances.
    ScanFiltered(ctx, *params.filter, offer);
  } else {
    // Remapped ids (bits address ids, not positions): per-row fallback.
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      offer(ids_[i], quantized() ? store_.Distance1(ctx, i)
                                 : dist_(query, data_.data() + i * dim_, dim_));
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithRange(
    const float* query, float radius, const SearchParams& params) const {
  std::vector<Neighbor> out;
  const PrecisionStore::QueryCtx ctx = MakeQueryCtx(query);
  if (params.filter == nullptr) {
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(ctx, begin, n, dist);
      for (size_t i = 0; i < n; ++i)
        if (dist[i] <= radius) out.push_back({ids_[begin + i], dist[i]});
    }
  } else if (ids_are_offsets_) {
    ScanFiltered(ctx, *params.filter, [&](IdType id, float d) {
      if (d <= radius) out.push_back({id, d});
    });
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      float d = quantized() ? store_.Distance1(ctx, i)
                            : dist_(query, data_.data() + i * dim_, dim_);
      if (d <= radius) out.push_back({ids_[i], d});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

common::Status FlatIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.Write<uint8_t>(static_cast<uint8_t>(precision_));
  if (quantized()) {
    store_.Serialize(&w);
    w.WriteVector(ids_);
    return common::Status::Ok();
  }
  w.WriteVector(data_);
  w.WriteVector(ids_);
  return common::Status::Ok();
}

common::Status FlatIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("flat: wrong type tag");
  uint64_t dim = 0;
  uint32_t metric = 0;
  uint8_t precision = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  BH_RETURN_IF_ERROR(r.Read(&precision));
  if (precision > static_cast<uint8_t>(Precision::kInt8))
    return common::Status::Corruption("flat: bad precision tag");
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  precision_ = static_cast<Precision>(precision);
  dist_ = ResolveDistance(metric_);
  data_.clear();
  norms_.clear();
  if (quantized()) {
    BH_RETURN_IF_ERROR(store_.Deserialize(&r));
    BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
    if (store_.precision() != precision_ || store_.dim() != dim_ ||
        store_.size() != ids_.size())
      return common::Status::Corruption("flat: store mismatch");
    ids_are_offsets_ = true;
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] != static_cast<IdType>(i)) {
        ids_are_offsets_ = false;
        break;
      }
    }
    return common::Status::Ok();
  }
  BH_RETURN_IF_ERROR(r.ReadVector(&data_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  if (ids_.size() * dim_ != data_.size())
    return common::Status::Corruption("flat: size mismatch");
  // Derived state (not serialized): identity-id detection for the
  // filter-aware scan path.
  ids_are_offsets_ = true;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] != static_cast<IdType>(i)) {
      ids_are_offsets_ = false;
      break;
    }
  }
  // Norms are derived state: recompute rather than serialize, so the on-disk
  // format is unchanged from pre-kernel builds.
  norms_.clear();
  if (metric_ == Metric::kCosine) {
    norms_.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data_.data() + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
