#include "vecindex/flat_index.h"

#include <algorithm>
#include <queue>

#include "common/io.h"
#include "vecindex/distance.h"

namespace blendhouse::vecindex {

common::Status FlatIndex::Train(const float* /*data*/, size_t /*n*/) {
  return common::Status::Ok();  // brute force needs no training
}

common::Status FlatIndex::AddWithIds(const float* data, const IdType* ids,
                                     size_t n) {
  data_.insert(data_.end(), data, data + n * dim_);
  ids_.insert(ids_.end(), ids, ids + n);
  return common::Status::Ok();
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("flat: k must be positive");
  // Max-heap of the best k so far; pop when a closer candidate arrives.
  std::priority_queue<Neighbor> heap;
  size_t k = static_cast<size_t>(params.k);
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (params.filter != nullptr &&
        !params.filter->Test(static_cast<size_t>(ids_[i])))
      continue;
    float d = Distance(metric_, query, data_.data() + i * dim_, dim_);
    if (heap.size() < k) {
      heap.push({ids_[i], d});
    } else if (d < heap.top().distance) {
      heap.pop();
      heap.push({ids_[i], d});
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithRange(
    const float* query, float radius, const SearchParams& params) const {
  std::vector<Neighbor> out;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (params.filter != nullptr &&
        !params.filter->Test(static_cast<size_t>(ids_[i])))
      continue;
    float d = Distance(metric_, query, data_.data() + i * dim_, dim_);
    if (d <= radius) out.push_back({ids_[i], d});
  }
  std::sort(out.begin(), out.end());
  return out;
}

common::Status FlatIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.WriteVector(data_);
  w.WriteVector(ids_);
  return common::Status::Ok();
}

common::Status FlatIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("flat: wrong type tag");
  uint64_t dim = 0;
  uint32_t metric = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  BH_RETURN_IF_ERROR(r.ReadVector(&data_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  if (ids_.size() * dim_ != data_.size())
    return common::Status::Corruption("flat: size mismatch");
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
