#include "vecindex/flat_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/io.h"

namespace blendhouse::vecindex {

namespace {
/// Rows per batched-kernel call; bounds the stack distance buffer and keeps
/// the chunk resident in L1/L2 while the heap is updated.
constexpr size_t kScanChunk = 256;
}  // namespace

common::Status FlatIndex::Train(const float* /*data*/, size_t /*n*/) {
  return common::Status::Ok();  // brute force needs no training
}

common::Status FlatIndex::AddWithIds(const float* data, const IdType* ids,
                                     size_t n) {
  if (ids_are_offsets_) {
    const size_t base = ids_.size();
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] != static_cast<IdType>(base + i)) {
        ids_are_offsets_ = false;
        break;
      }
    }
  }
  data_.insert(data_.end(), data, data + n * dim_);
  ids_.insert(ids_.end(), ids, ids + n);
  if (metric_ == Metric::kCosine) {
    norms_.reserve(norms_.size() + n);
    for (size_t i = 0; i < n; ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

void FlatIndex::ScanChunk(const float* query, float query_norm, size_t begin,
                          size_t n, float* out) const {
  const float* base = data_.data() + begin * dim_;
  if (metric_ == Metric::kCosine) {
    BatchCosineWithNorms(query, base, norms_.data() + begin, query_norm, n,
                         dim_, out);
  } else {
    BatchDistance(metric_, query, base, n, dim_, out);
  }
}

template <typename Emit>
void FlatIndex::ScanFiltered(const float* query, const common::Bitset& filter,
                             Emit&& emit) const {
  const float query_norm = metric_ == Metric::kCosine
                               ? std::sqrt(SquaredNorm(query, dim_))
                               : 0.0f;
  const size_t n = ids_.size();
  uint32_t rows[kScanChunk];
  float dist[kScanChunk];
  size_t cnt = 0;
  common::AlignedVector<float> gathered;  // sized on first scattered tile
  std::vector<float> gathered_norms;
  auto flush = [&] {
    if (cnt == 0) return;
    if (static_cast<size_t>(rows[cnt - 1] - rows[0]) + 1 == cnt) {
      // Contiguous survivor run: the kernels scan storage in place.
      ScanChunk(query, query_norm, rows[0], cnt, dist);
    } else {
      // Scattered survivors: gather into a dense tile so one batched kernel
      // call covers them (excluded rows still cost no distance math).
      if (gathered.empty()) gathered.resize(kScanChunk * dim_);
      for (size_t i = 0; i < cnt; ++i)
        std::copy_n(data_.data() + static_cast<size_t>(rows[i]) * dim_, dim_,
                    gathered.data() + i * dim_);
      if (metric_ == Metric::kCosine) {
        if (gathered_norms.empty()) gathered_norms.resize(kScanChunk);
        for (size_t i = 0; i < cnt; ++i) gathered_norms[i] = norms_[rows[i]];
        BatchCosineWithNorms(query, gathered.data(), gathered_norms.data(),
                             query_norm, cnt, dim_, dist);
      } else {
        BatchDistance(metric_, query, gathered.data(), cnt, dim_, dist);
      }
    }
    for (size_t i = 0; i < cnt; ++i) emit(ids_[rows[i]], dist[i]);
    cnt = 0;
  };
  filter.ForEachSetBit([&](size_t row) {
    if (row >= n) return;  // filter may be sized past the index
    rows[cnt++] = static_cast<uint32_t>(row);
    if (cnt == kScanChunk) flush();
  });
  flush();
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("flat: k must be positive");
  // Max-heap of the best k so far; pop when a closer candidate arrives.
  std::priority_queue<Neighbor> heap;
  size_t k = static_cast<size_t>(params.k);
  auto offer = [&](IdType id, float d) {
    if (heap.size() < k) {
      heap.push({id, d});
    } else if (d < heap.top().distance) {
      heap.pop();
      heap.push({id, d});
    }
  };
  if (params.filter == nullptr) {
    // Unfiltered: batched kernel over fixed-size chunks.
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(query, query_norm, begin, n, dist);
      for (size_t i = 0; i < n; ++i) offer(ids_[begin + i], dist[i]);
    }
  } else if (ids_are_offsets_) {
    // Filter bits address row offsets == storage positions: compact
    // survivors from set bits and batch their distances.
    ScanFiltered(query, *params.filter, offer);
  } else {
    // Remapped ids (bits address ids, not positions): per-row fallback.
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      offer(ids_[i], dist_(query, data_.data() + i * dim_, dim_));
    }
  }
  std::vector<Neighbor> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top();
    heap.pop();
  }
  return out;
}

common::Result<std::vector<Neighbor>> FlatIndex::SearchWithRange(
    const float* query, float radius, const SearchParams& params) const {
  std::vector<Neighbor> out;
  if (params.filter == nullptr) {
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    float dist[kScanChunk];
    for (size_t begin = 0; begin < ids_.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, ids_.size() - begin);
      ScanChunk(query, query_norm, begin, n, dist);
      for (size_t i = 0; i < n; ++i)
        if (dist[i] <= radius) out.push_back({ids_[begin + i], dist[i]});
    }
  } else if (ids_are_offsets_) {
    ScanFiltered(query, *params.filter, [&](IdType id, float d) {
      if (d <= radius) out.push_back({id, d});
    });
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(ids_[i]))) continue;
      float d = dist_(query, data_.data() + i * dim_, dim_);
      if (d <= radius) out.push_back({ids_[i], d});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

common::Status FlatIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.WriteVector(data_);
  w.WriteVector(ids_);
  return common::Status::Ok();
}

common::Status FlatIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("flat: wrong type tag");
  uint64_t dim = 0;
  uint32_t metric = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  dist_ = ResolveDistance(metric_);
  BH_RETURN_IF_ERROR(r.ReadVector(&data_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  if (ids_.size() * dim_ != data_.size())
    return common::Status::Corruption("flat: size mismatch");
  // Derived state (not serialized): identity-id detection for the
  // filter-aware scan path.
  ids_are_offsets_ = true;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] != static_cast<IdType>(i)) {
      ids_are_offsets_ = false;
      break;
    }
  }
  // Norms are derived state: recompute rather than serialize, so the on-disk
  // format is unchanged from pre-kernel builds.
  norms_.clear();
  if (metric_ == Metric::kCosine) {
    norms_.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i)
      norms_.push_back(std::sqrt(SquaredNorm(data_.data() + i * dim_, dim_)));
  }
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
