#include "vecindex/flat_batch_iterator.h"

#include <algorithm>

#include "common/assert.h"

namespace blendhouse::vecindex {

FlatBatchIterator::FlatBatchIterator(const FlatIndex* index,
                                     const float* query, SearchParams params)
    : index_(index),
      query_(query, query + index->Dim()),
      params_(params) {}

std::vector<Neighbor> FlatBatchIterator::Next(size_t batch_size) {
  if (!scanned_) {
    // The one and only scan: all distances land in scored_, then heapify.
    // The QueryCtx is built against our own query copy so a caller freeing
    // its buffer between batches cannot dangle the prepared query.
    scanned_ = true;
    ctx_ = index_->MakeQueryCtx(query_.data());
    index_->ComputeAllDistances(ctx_, params_.filter, &scored_);
    stats_.rows_visited = scored_.size();
    std::make_heap(scored_.begin(), scored_.end(), std::greater<>());
  }
  std::vector<Neighbor> out;
  out.reserve(std::min(batch_size, scored_.size()));
  while (out.size() < batch_size && !scored_.empty()) {
    std::pop_heap(scored_.begin(), scored_.end(), std::greater<>());
    out.push_back(scored_.back());
    scored_.pop_back();
  }
  BH_DCHECK(IsSortedBatch(out));
  if (!out.empty()) ++stats_.batches;
  return out;
}

}  // namespace blendhouse::vecindex
