#include "vecindex/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/io.h"
#include "vecindex/ivf_batch_iterator.h"
#include "vecindex/kmeans.h"

namespace blendhouse::vecindex {

namespace {
/// Rows per batched-kernel call during posting-list scans.
constexpr size_t kScanChunk = 256;
}  // namespace

common::Status IvfIndexBase::Train(const float* data, size_t n) {
  if (n == 0) return common::Status::InvalidArgument("ivf: empty train set");
  KMeansOptions opts;
  opts.k = options_.nlist;
  opts.seed = options_.seed;
  auto km = RunKMeans(data, n, dim_, opts);
  if (!km.ok()) return km.status();
  centroids_.assign(km->centroids.begin(), km->centroids.end());
  lists_.assign(centroids_.size() / dim_, {});
  return TrainCodec(data, n);
}

common::Status IvfIndexBase::AddWithIds(const float* data, const IdType* ids,
                                        size_t n) {
  if (!trained()) BH_RETURN_IF_ERROR(Train(data, n));
  for (size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim_;
    size_t c = NearestCentroid(v, centroids_.data(), nlist(), dim_);
    lists_[c].ids.push_back(ids[i]);
    EncodeInto(v, &lists_[c]);
  }
  size_ += n;
  return common::Status::Ok();
}

void IvfIndexBase::RefreshDerivedState() {
  dist_ = ResolveDistance(metric_);
  // Norms are derived state: recomputed instead of serialized so the on-disk
  // format is unchanged from pre-kernel builds.
  for (auto& list : lists_) {
    list.norms.clear();
    if (metric_ != Metric::kCosine || list.vectors.empty()) continue;
    size_t count = list.vectors.size() / dim_;
    list.norms.reserve(count);
    for (size_t i = 0; i < count; ++i)
      list.norms.push_back(
          std::sqrt(SquaredNorm(list.vectors.data() + i * dim_, dim_)));
  }
}

common::Result<std::vector<Neighbor>> IvfIndexBase::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("ivf: k must be positive");
  if (!trained()) return common::Status::Internal("ivf: not trained");

  // Rank lists by centroid distance (one batched kernel call), probe the
  // nearest nprobe.
  std::vector<float> centroid_dist(nlist());
  BatchDistance(metric_, query, centroids_.data(), nlist(), dim_,
                centroid_dist.data());
  std::vector<Neighbor> centroid_order(nlist());
  for (size_t c = 0; c < nlist(); ++c)
    centroid_order[c] = {static_cast<IdType>(c), centroid_dist[c]};
  size_t nprobe =
      std::min<size_t>(std::max(1, params.nprobe), nlist());
  // Full sort (not partial) so equal-distance centroids land in the same
  // canonical order the batch iterator's probe schedule uses.
  std::sort(centroid_order.begin(), centroid_order.end());

  std::vector<float> scratch;
  const void* ctx = PrepareQuery(query, &scratch);

  std::vector<Hit> hits;
  for (size_t p = 0; p < nprobe; ++p) {
    uint32_t list_idx = static_cast<uint32_t>(centroid_order[p].id);
    ScanList(lists_[list_idx], list_idx, query, ctx, params, &hits);
  }

  size_t k = static_cast<size_t>(params.k);
  size_t keep = NeedsRefine()
                    ? std::min(hits.size(),
                               k * static_cast<size_t>(std::max(
                                       1, params.refine_factor)) *
                                   RefineAmplification())
                    : std::min(hits.size(), k);
  auto hit_less = [](const Hit& a, const Hit& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(), hit_less);
  hits.resize(keep);

  if (NeedsRefine()) {
    // Re-rank the shortlist with exact distances from the stored raw vectors
    // (the sigma*k*c_d refine term of Eq. 2/3). Cosine uses the cached base
    // norms: dot kernel + CosineFromDot, no per-hit norm recompute.
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    for (Hit& h : hits) {
      const PostingList& list = lists_[h.list];
      if (list.vectors.size() < (size_t{h.pos} + 1) * dim_) continue;
      const float* vec = list.vectors.data() + size_t{h.pos} * dim_;
      if (metric_ == Metric::kCosine && h.pos < list.norms.size()) {
        h.distance = CosineFromDot(InnerProduct(query, vec, dim_), query_norm,
                                   list.norms[h.pos]);
      } else {
        h.distance = dist_(query, vec, dim_);
      }
    }
    std::sort(hits.begin(), hits.end(), hit_less);
    if (hits.size() > k) hits.resize(k);
  }

  std::vector<Neighbor> out;
  out.reserve(hits.size());
  for (const Hit& h : hits) out.push_back({h.id, h.distance});
  return out;
}

common::Result<std::unique_ptr<SearchIterator>> IvfIndexBase::MakeIterator(
    const float* query, const SearchParams& params) const {
  // Refining codecs (PQ) fall back to restart-with-doubled-k: their final
  // distances come from a k-dependent refine shortlist that incremental
  // probing cannot reproduce. Untrained indexes have no centroids to rank.
  if (NeedsRefine() || !trained())
    return VectorIndex::MakeIterator(query, params);
  return std::unique_ptr<SearchIterator>(
      std::make_unique<IvfBatchIterator>(this, query, params));
}

// ---- IVFFLAT ---------------------------------------------------------------

common::Status IvfFlatIndex::TrainCodec(const float* data, size_t n) {
  if (!quantized()) return common::Status::Ok();
  // One store per posting list, all sharing the int8 scale calibrated from
  // the full train sample so distances are comparable across probed lists.
  stores_.assign(nlist(), {});
  for (auto& store : stores_) {
    store.Configure(precision_, dim_, metric_);
    store.Train(data, n);
  }
  return common::Status::Ok();
}

void IvfFlatIndex::EncodeInto(const float* vec, PostingList* list) {
  if (quantized()) {
    // Codes only — the posting list keeps no fp32 copy.
    stores_[static_cast<size_t>(list - lists_.data())].Append(vec, 1);
    return;
  }
  list->vectors.insert(list->vectors.end(), vec, vec + dim_);
  if (metric_ == Metric::kCosine)
    list->norms.push_back(std::sqrt(SquaredNorm(vec, dim_)));
}

void IvfFlatIndex::ScanList(const PostingList& list, uint32_t list_idx,
                            const float* query, const void* /*ctx*/,
                            const SearchParams& params,
                            std::vector<Hit>* out) const {
  if (quantized()) {
    // Quantized first pass: the probed list's packed codes run through the
    // batched reduced-precision kernels; the executor reranks survivors in
    // fp32 from the vector column. Mirrors the fp32 path's filter-aware
    // compaction (contiguous runs in place, scattered survivors gathered
    // into a dense byte tile).
    const PrecisionStore& store = stores_[list_idx];
    PrecisionStore::QueryCtx qctx;
    store.PrepareQuery(query, &qctx);
    const size_t row_bytes = store.row_bytes();
    float dist[kScanChunk];
    if (params.filter == nullptr) {
      for (size_t begin = 0; begin < list.ids.size(); begin += kScanChunk) {
        size_t n = std::min(kScanChunk, list.ids.size() - begin);
        store.BatchDistance(qctx, begin, n, dist);
        for (size_t i = 0; i < n; ++i)
          out->push_back({dist[i], list.ids[begin + i], list_idx,
                          static_cast<uint32_t>(begin + i)});
      }
      return;
    }
    uint32_t pos[kScanChunk];
    size_t cnt = 0;
    common::AlignedVector<uint8_t> code_tile;  // sized on first scattered tile
    std::vector<float> norm_tile;
    auto flush = [&] {
      if (cnt == 0) return;
      if (static_cast<size_t>(pos[cnt - 1] - pos[0]) + 1 == cnt) {
        store.BatchDistance(qctx, pos[0], cnt, dist);
      } else {
        if (code_tile.empty()) code_tile.resize(kScanChunk * row_bytes);
        for (size_t i = 0; i < cnt; ++i)
          std::memcpy(code_tile.data() + i * row_bytes, store.RowPtr(pos[i]),
                      row_bytes);
        const float* norms = nullptr;
        if (metric_ == Metric::kCosine) {
          if (norm_tile.empty()) norm_tile.resize(kScanChunk);
          for (size_t i = 0; i < cnt; ++i) norm_tile[i] = store.norms()[pos[i]];
          norms = norm_tile.data();
        }
        store.BatchDistanceCodes(qctx, code_tile.data(), norms, cnt, dist);
      }
      for (size_t i = 0; i < cnt; ++i)
        out->push_back({dist[i], list.ids[pos[i]], list_idx, pos[i]});
      cnt = 0;
    };
    for (size_t i = 0; i < list.ids.size(); ++i) {
      if (!params.filter->Test(static_cast<size_t>(list.ids[i]))) continue;
      pos[cnt++] = static_cast<uint32_t>(i);
      if (cnt == kScanChunk) flush();
    }
    flush();
    return;
  }
  if (params.filter == nullptr) {
    // Unfiltered: batched kernel over fixed-size chunks; Cosine rides the
    // precomputed base norms so the kernel is dot-product only.
    float query_norm = metric_ == Metric::kCosine
                           ? std::sqrt(SquaredNorm(query, dim_))
                           : 0.0f;
    float dist[kScanChunk];
    for (size_t begin = 0; begin < list.ids.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, list.ids.size() - begin);
      const float* base = list.vectors.data() + begin * dim_;
      if (metric_ == Metric::kCosine) {
        BatchCosineWithNorms(query, base, list.norms.data() + begin,
                             query_norm, n, dim_, dist);
      } else {
        BatchDistance(metric_, query, base, n, dim_, dist);
      }
      for (size_t i = 0; i < n; ++i)
        out->push_back({dist[i], list.ids[begin + i], list_idx,
                        static_cast<uint32_t>(begin + i)});
    }
    return;
  }
  // Filtered: compact surviving positions and feed the batched kernels —
  // contiguous survivor runs scan the posting list in place, scattered
  // survivors are gathered into a dense tile. Excluded vectors still cost
  // no distance computation.
  float query_norm = metric_ == Metric::kCosine
                         ? std::sqrt(SquaredNorm(query, dim_))
                         : 0.0f;
  uint32_t pos[kScanChunk];
  float dist[kScanChunk];
  size_t cnt = 0;
  std::vector<float> gathered;        // sized on first scattered tile
  std::vector<float> gathered_norms;
  auto flush = [&] {
    if (cnt == 0) return;
    const float* base;
    const float* norm_base = nullptr;
    if (static_cast<size_t>(pos[cnt - 1] - pos[0]) + 1 == cnt) {
      base = list.vectors.data() + size_t{pos[0]} * dim_;
      if (metric_ == Metric::kCosine) norm_base = list.norms.data() + pos[0];
    } else {
      if (gathered.empty()) gathered.resize(kScanChunk * dim_);
      for (size_t i = 0; i < cnt; ++i)
        std::copy_n(list.vectors.data() + size_t{pos[i]} * dim_, dim_,
                    gathered.data() + i * dim_);
      base = gathered.data();
      if (metric_ == Metric::kCosine) {
        if (gathered_norms.empty()) gathered_norms.resize(kScanChunk);
        for (size_t i = 0; i < cnt; ++i)
          gathered_norms[i] = list.norms[pos[i]];
        norm_base = gathered_norms.data();
      }
    }
    if (metric_ == Metric::kCosine) {
      BatchCosineWithNorms(query, base, norm_base, query_norm, cnt, dim_,
                           dist);
    } else {
      BatchDistance(metric_, query, base, cnt, dim_, dist);
    }
    for (size_t i = 0; i < cnt; ++i)
      out->push_back({dist[i], list.ids[pos[i]], list_idx, pos[i]});
    cnt = 0;
  };
  for (size_t i = 0; i < list.ids.size(); ++i) {
    if (!params.filter->Test(static_cast<size_t>(list.ids[i]))) continue;
    pos[cnt++] = static_cast<uint32_t>(i);
    if (cnt == kScanChunk) flush();
  }
  flush();
}

size_t IvfFlatIndex::MemoryUsage() const {
  size_t bytes = centroids_.size() * sizeof(float);
  for (const auto& list : lists_)
    bytes += list.ids.size() * sizeof(IdType) +
             list.vectors.size() * sizeof(float) +
             list.norms.size() * sizeof(float);
  for (const auto& store : stores_) bytes += store.MemoryBytes();
  return bytes;
}

common::Status IvfFlatIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.Write<uint8_t>(static_cast<uint8_t>(precision_));
  w.Write<uint64_t>(options_.nlist);
  w.Write<uint64_t>(size_);
  w.WriteVector(centroids_);
  w.Write<uint64_t>(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) {
    w.WriteVector(lists_[i].ids);
    if (quantized()) {
      stores_[i].Serialize(&w);
    } else {
      w.WriteVector(lists_[i].vectors);
    }
  }
  return common::Status::Ok();
}

common::Status IvfFlatIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("ivfflat: wrong type");
  uint64_t dim = 0, nlist = 0, size = 0;
  uint32_t metric = 0;
  uint8_t precision = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  BH_RETURN_IF_ERROR(r.Read(&precision));
  if (precision > static_cast<uint8_t>(Precision::kInt8))
    return common::Status::Corruption("ivfflat: bad precision tag");
  BH_RETURN_IF_ERROR(r.Read(&nlist));
  BH_RETURN_IF_ERROR(r.Read(&size));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  precision_ = static_cast<Precision>(precision);
  options_.nlist = nlist;
  size_ = size;
  BH_RETURN_IF_ERROR(r.ReadVector(&centroids_));
  uint64_t num_lists = 0;
  BH_RETURN_IF_ERROR(r.Read(&num_lists));
  lists_.assign(num_lists, {});
  stores_.clear();
  if (quantized()) stores_.assign(num_lists, {});
  for (size_t i = 0; i < lists_.size(); ++i) {
    BH_RETURN_IF_ERROR(r.ReadVector(&lists_[i].ids));
    if (quantized()) {
      BH_RETURN_IF_ERROR(stores_[i].Deserialize(&r));
      if (stores_[i].precision() != precision_ || stores_[i].dim() != dim_ ||
          stores_[i].size() != lists_[i].ids.size())
        return common::Status::Corruption("ivfflat: store mismatch");
    } else {
      BH_RETURN_IF_ERROR(r.ReadVector(&lists_[i].vectors));
    }
  }
  RefreshDerivedState();
  return common::Status::Ok();
}

// ---- IVFPQ / IVFPQFS -------------------------------------------------------

common::Status IvfPqIndex::TrainCodec(const float* data, size_t n) {
  return pq_.Train(data, n, dim_, pq_options_.m, pq_options_.nbits,
                   options_.seed);
}

void IvfPqIndex::EncodeInto(const float* vec, PostingList* list) {
  size_t old = list->codes.size();
  list->codes.resize(old + pq_.code_size());
  pq_.Encode(vec, list->codes.data() + old);
  if (pq_options_.keep_raw_for_refine) {
    list->vectors.insert(list->vectors.end(), vec, vec + dim_);
    if (metric_ == Metric::kCosine)
      list->norms.push_back(std::sqrt(SquaredNorm(vec, dim_)));
  }
}

const void* IvfPqIndex::PrepareQuery(const float* query,
                                     std::vector<float>* scratch) const {
  scratch->resize(pq_.m() * pq_.ks());
  pq_.BuildAdcTable(query, scratch->data());
  return scratch->data();
}

void IvfPqIndex::ScanList(const PostingList& list, uint32_t list_idx,
                          const float* /*query*/, const void* ctx,
                          const SearchParams& params,
                          std::vector<Hit>* out) const {
  const float* table = static_cast<const float*>(ctx);
  size_t code_size = pq_.code_size();
  if (params.filter == nullptr) {
    // Unfiltered: batched ADC lookups (gather-based in the SIMD tiers).
    float dist[kScanChunk];
    for (size_t begin = 0; begin < list.ids.size(); begin += kScanChunk) {
      size_t n = std::min(kScanChunk, list.ids.size() - begin);
      pq_.AdcDistanceBatch(table, list.codes.data() + begin * code_size, n,
                           dist);
      for (size_t i = 0; i < n; ++i)
        out->push_back({dist[i], list.ids[begin + i], list_idx,
                        static_cast<uint32_t>(begin + i)});
    }
    return;
  }
  // Filtered: compact surviving positions; contiguous code runs feed the
  // batched ADC kernel in place, scattered survivors are gathered into a
  // dense code tile first.
  uint32_t pos[kScanChunk];
  float dist[kScanChunk];
  size_t cnt = 0;
  std::vector<uint8_t> code_tile;  // sized on first scattered tile
  auto flush = [&] {
    if (cnt == 0) return;
    const uint8_t* codes;
    if (static_cast<size_t>(pos[cnt - 1] - pos[0]) + 1 == cnt) {
      codes = list.codes.data() + size_t{pos[0]} * code_size;
    } else {
      if (code_tile.empty()) code_tile.resize(kScanChunk * code_size);
      for (size_t i = 0; i < cnt; ++i)
        std::memcpy(code_tile.data() + i * code_size,
                    list.codes.data() + size_t{pos[i]} * code_size,
                    code_size);
      codes = code_tile.data();
    }
    pq_.AdcDistanceBatch(table, codes, cnt, dist);
    for (size_t i = 0; i < cnt; ++i)
      out->push_back({dist[i], list.ids[pos[i]], list_idx, pos[i]});
    cnt = 0;
  };
  for (size_t i = 0; i < list.ids.size(); ++i) {
    if (!params.filter->Test(static_cast<size_t>(list.ids[i]))) continue;
    pos[cnt++] = static_cast<uint32_t>(i);
    if (cnt == kScanChunk) flush();
  }
  flush();
}

size_t IvfPqIndex::MemoryUsage() const {
  // Raw refine vectors are charged to the segment (cold storage), not the
  // index: the resident structure is codes + codebooks + centroids, which is
  // what gives PQFS its Table-VI memory advantage.
  size_t bytes = centroids_.size() * sizeof(float) + pq_.MemoryUsage();
  for (const auto& list : lists_)
    bytes += list.ids.size() * sizeof(IdType) + list.codes.size();
  return bytes;
}

common::Status IvfPqIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.Write<uint64_t>(options_.nlist);
  w.Write<uint64_t>(size_);
  w.Write<uint64_t>(pq_options_.m);
  w.Write<uint64_t>(pq_options_.nbits);
  w.Write<uint8_t>(pq_options_.keep_raw_for_refine ? 1 : 0);
  w.WriteVector(centroids_);
  pq_.Serialize(&w);
  w.Write<uint64_t>(lists_.size());
  for (const auto& list : lists_) {
    w.WriteVector(list.ids);
    w.WriteVector(list.codes);
    w.WriteVector(list.vectors);
  }
  return common::Status::Ok();
}

common::Status IvfPqIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  uint64_t dim = 0, nlist = 0, size = 0, m = 0, nbits = 0;
  uint32_t metric = 0;
  uint8_t keep_raw = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  BH_RETURN_IF_ERROR(r.Read(&nlist));
  BH_RETURN_IF_ERROR(r.Read(&size));
  BH_RETURN_IF_ERROR(r.Read(&m));
  BH_RETURN_IF_ERROR(r.Read(&nbits));
  BH_RETURN_IF_ERROR(r.Read(&keep_raw));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  options_.nlist = nlist;
  size_ = size;
  pq_options_.m = m;
  pq_options_.nbits = nbits;
  pq_options_.keep_raw_for_refine = keep_raw != 0;
  if (type != Type()) return common::Status::Corruption("ivfpq: wrong type");
  BH_RETURN_IF_ERROR(r.ReadVector(&centroids_));
  BH_RETURN_IF_ERROR(pq_.Deserialize(&r));
  uint64_t num_lists = 0;
  BH_RETURN_IF_ERROR(r.Read(&num_lists));
  lists_.assign(num_lists, {});
  for (auto& list : lists_) {
    BH_RETURN_IF_ERROR(r.ReadVector(&list.ids));
    BH_RETURN_IF_ERROR(r.ReadVector(&list.codes));
    BH_RETURN_IF_ERROR(r.ReadVector(&list.vectors));
  }
  RefreshDerivedState();
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
