#pragma once

#include <string>
#include <vector>

#include "common/aligned.h"
#include "vecindex/distance.h"
#include "vecindex/index.h"
#include "vecindex/pq.h"
#include "vecindex/quantizer.h"

namespace blendhouse::vecindex {

struct IvfOptions {
  /// Number of inverted lists — the paper's K_IVF, whose choice relative to
  /// segment size N drives Fig. 7 and the auto-index feature.
  size_t nlist = 64;
  uint64_t seed = 42;
};

/// Base for inverted-file indexes: k-means coarse quantizer plus per-list
/// postings. Search probes the `nprobe` nearest lists; PQ variants re-rank
/// the top sigma*k approximate hits with exact distances (the refine step of
/// cost Eqs. 2/3).
///
/// Centroid ranking and flat posting-list scans go through the batched SIMD
/// kernels; posting vectors are stored 64-byte aligned, and Cosine lists
/// carry precomputed per-vector norms so scans are dot-product only.
class IvfIndexBase : public VectorIndex {
 public:
  IvfIndexBase(size_t dim, Metric metric, IvfOptions options)
      : dim_(dim),
        metric_(metric),
        options_(options),
        dist_(ResolveDistance(metric)) {}

  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  size_t Size() const override { return size_; }
  bool NeedsTraining() const override { return true; }

  common::Status Train(const float* data, size_t n) override;
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;

  /// Native resumable iterator (IvfBatchIterator) for variants whose list
  /// scans yield final distances (IVFFLAT at every precision tier): probed
  /// lists are never rescanned, deeper batches extend nprobe. Refining
  /// codecs (PQ) keep the generic restart wrapper — their one-shot result
  /// depends on a k-sized refine shortlist, which an incremental iterator
  /// cannot reproduce.
  common::Result<std::unique_ptr<SearchIterator>> MakeIterator(
      const float* query, const SearchParams& params) const override;
  bool HasNativeIterator() const override { return !NeedsRefine(); }

  size_t nlist() const { return lists_.size(); }
  bool trained() const { return !centroids_.empty(); }

 protected:
  friend class IvfBatchIterator;
  struct PostingList {
    std::vector<IdType> ids;
    common::AlignedVector<float> vectors;  // flat storage (IVFFLAT / refine)
    std::vector<uint8_t> codes;            // PQ codes (IVFPQ*)
    /// Euclidean magnitude per stored vector; maintained only for Cosine
    /// on lists that keep raw vectors.
    std::vector<float> norms;
  };

  /// Candidate produced by a list scan; keeps its location so refine can
  /// fetch the raw vector without an id lookup.
  struct Hit {
    float distance;
    IdType id;
    uint32_t list;
    uint32_t pos;
  };

  // ---- Subclass hooks ------------------------------------------------------
  virtual common::Status TrainCodec(const float* data, size_t n) = 0;
  virtual void EncodeInto(const float* vec, PostingList* list) = 0;
  /// Appends passing candidates from one posting list. `ctx` carries
  /// per-query state (the ADC table for PQ; null for flat).
  virtual void ScanList(const PostingList& list, uint32_t list_idx,
                        const float* query, const void* ctx,
                        const SearchParams& params,
                        std::vector<Hit>* out) const = 0;
  virtual const void* PrepareQuery(const float* query,
                                   std::vector<float>* scratch) const = 0;
  /// Whether candidate distances are approximate and should be re-ranked
  /// against raw vectors.
  virtual bool NeedsRefine() const = 0;
  /// Extra shortlist multiplier applied on top of params.refine_factor;
  /// coarse codecs (4-bit PQ) widen the shortlist to recover recall.
  virtual size_t RefineAmplification() const { return 1; }

  /// Re-derives dist_ and any per-list norms after deserialization.
  void RefreshDerivedState();

  size_t dim_;
  Metric metric_;
  IvfOptions options_;
  size_t size_ = 0;
  DistanceFn dist_;  // resolved once; refreshed on Load
  common::AlignedVector<float> centroids_;  // nlist * dim
  std::vector<PostingList> lists_;
};

/// IVF with full-precision vectors in the postings — or, with a reduced
/// `precision` (DESIGN.md §13), per-list PrecisionStores of packed
/// fp16/bf16/int8 codes scanned by the batched reduced-precision kernels.
/// All list stores share one int8 scale calibrated from the train sample,
/// no fp32 copies are retained, and the executor reranks survivors exactly.
class IvfFlatIndex : public IvfIndexBase {
 public:
  IvfFlatIndex(size_t dim, Metric metric, IvfOptions options = {},
               Precision precision = Precision::kFp32)
      : IvfIndexBase(dim, metric, options), precision_(precision) {}

  std::string Type() const override { return "IVFFLAT"; }
  Precision StoragePrecision() const override { return precision_; }
  size_t MemoryUsage() const override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

 protected:
  common::Status TrainCodec(const float* data, size_t n) override;
  void EncodeInto(const float* vec, PostingList* list) override;
  void ScanList(const PostingList& list, uint32_t list_idx, const float* query,
                const void* ctx, const SearchParams& params,
                std::vector<Hit>* out) const override;
  const void* PrepareQuery(const float*, std::vector<float>*) const override {
    return nullptr;
  }
  bool NeedsRefine() const override { return false; }

 private:
  bool quantized() const { return precision_ != Precision::kFp32; }

  Precision precision_;
  /// Parallel to lists_ when quantized; empty at fp32.
  std::vector<PrecisionStore> stores_;
};

struct IvfPqOptions {
  /// Subquantizer count; dim must be divisible by it.
  size_t m = 8;
  /// 8 -> classic IVFPQ; 4 -> the fast-scan flavor the paper calls IVFPQFS.
  size_t nbits = 8;
  /// Keep raw vectors for exact re-ranking of the top sigma*k ADC hits.
  bool keep_raw_for_refine = true;
};

/// IVF with product-quantized postings and ADC scanning.
class IvfPqIndex : public IvfIndexBase {
 public:
  IvfPqIndex(size_t dim, Metric metric, IvfOptions ivf_options = {},
             IvfPqOptions pq_options = {})
      : IvfIndexBase(dim, metric, ivf_options), pq_options_(pq_options) {}

  std::string Type() const override {
    return pq_options_.nbits == 4 ? "IVFPQFS" : "IVFPQ";
  }
  size_t MemoryUsage() const override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

 protected:
  common::Status TrainCodec(const float* data, size_t n) override;
  void EncodeInto(const float* vec, PostingList* list) override;
  void ScanList(const PostingList& list, uint32_t list_idx, const float* query,
                const void* ctx, const SearchParams& params,
                std::vector<Hit>* out) const override;
  const void* PrepareQuery(const float* query,
                           std::vector<float>* scratch) const override;
  bool NeedsRefine() const override { return pq_options_.keep_raw_for_refine; }
  size_t RefineAmplification() const override {
    return pq_options_.nbits == 4 ? 4 : 1;
  }

 private:
  IvfPqOptions pq_options_;
  ProductQuantizer pq_;
};

}  // namespace blendhouse::vecindex
