#include "vecindex/generic_iterator.h"

#include <algorithm>

namespace blendhouse::vecindex {

GenericSearchIterator::GenericSearchIterator(const VectorIndex* index,
                                             const float* query,
                                             SearchParams params)
    : index_(index),
      query_(query, query + index->Dim()),
      params_(params),
      current_k_(std::max(1, params.k)) {}

std::vector<Neighbor> GenericSearchIterator::Next(size_t batch_size) {
  std::vector<Neighbor> out;
  while (out.size() < batch_size && !exhausted_) {
    // Drain unreturned hits from the current round.
    while (cursor_ < last_result_.size() && out.size() < batch_size) {
      const Neighbor& n = last_result_[cursor_++];
      if (returned_.insert(n.id).second) out.push_back(n);
    }
    if (out.size() >= batch_size) break;

    // Current round exhausted; restart from scratch with a doubled k.
    if (!last_result_.empty() && last_result_.size() < current_k_) {
      exhausted_ = true;  // the index returned fewer than asked: nothing more
      break;
    }
    if (!last_result_.empty()) current_k_ *= 2;
    SearchParams p = params_;
    p.k = static_cast<int>(
        std::max<size_t>(1, std::min<size_t>(current_k_, index_->Size())));
    // Scale the beam with k so larger rounds actually reach deeper.
    p.ef_search = std::max(params_.ef_search, p.k);
    auto res = index_->SearchWithFilter(query_.data(), p);
    if (!res.ok()) {
      exhausted_ = true;
      break;
    }
    // Honest accounting: every restart round re-materializes its full
    // result, so charge the round's neighbor count (not an ef_search guess
    // that is a fiction for flat/IVF scans).
    ++stats_.recompute_rounds;
    stats_.rows_visited += res->size();
    size_t prev_count = last_result_.size();
    last_result_ = std::move(*res);
    cursor_ = 0;
    // No growth despite a bigger k means the index is drained.
    if (last_result_.size() <= prev_count) exhausted_ = true;
    // Even a drained final round may still hold unreturned ids; scan it once.
    while (cursor_ < last_result_.size() && out.size() < batch_size) {
      const Neighbor& n = last_result_[cursor_++];
      if (returned_.insert(n.id).second) out.push_back(n);
    }
    if (exhausted_) break;
  }
  // Sorted-batch contract: a restart may reorder equal-k prefixes on
  // approximate indexes, so hits appended after a mid-batch restart are not
  // guaranteed to extend the batch monotonically — sort before returning.
  std::sort(out.begin(), out.end());
  if (!out.empty()) ++stats_.batches;
  return out;
}

}  // namespace blendhouse::vecindex
