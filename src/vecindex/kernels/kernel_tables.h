#pragma once

#include "vecindex/kernels/kernels.h"

namespace blendhouse::vecindex::kernels {

// Per-tier table factories, one per translation unit so each can be built
// with its own -m flags. A TU is only added to the build when the compiler
// supports its flags; dispatch.cc references these behind matching
// BH_KERNELS_COMPILED_* definitions.
const KernelTable& ScalarTable();
const KernelTable& Avx2Table();
const KernelTable& Avx512Table();
const KernelTable& NeonTable();

}  // namespace blendhouse::vecindex::kernels
