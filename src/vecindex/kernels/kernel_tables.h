#pragma once

#include "vecindex/kernels/kernels.h"

namespace blendhouse::vecindex::kernels {

// Per-tier table factories, one per translation unit so each can be built
// with its own -m flags. A TU is only added to the build when the compiler
// supports its flags; dispatch.cc references these behind matching
// BH_KERNELS_COMPILED_* definitions.
const KernelTable& ScalarTable();
const KernelTable& Avx2Table();
const KernelTable& Avx512Table();
const KernelTable& NeonTable();

/// AVX-512 base table with the symmetric int8 entries replaced by VNNI
/// dot-product kernels. Same tier (kAvx512): dispatch picks it over the base
/// table when CPUID additionally reports avx512vnni.
const KernelTable& Avx512VnniTable();

}  // namespace blendhouse::vecindex::kernels
