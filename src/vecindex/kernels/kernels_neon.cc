// NEON kernels for aarch64. NEON is baseline on AArch64 so this TU needs no
// extra -m flags; it is only added to the build on ARM targets. Kept
// deliberately simple (4-lane, 2-way unroll): the repo's perf work targets
// x86 first, but ARM hosts should not fall back to scalar.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

float L2SqrNeon(const float* a, const float* b, size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d0, d0);
    float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  for (; i + 4 <= dim; i += 4) {
    float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProductNeon(const float* a, const float* b, size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= dim; i += 4)
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineNeon(const float* a, const float* b, size_t dim) {
  float32x4_t dot = vdupq_n_f32(0.0f);
  float32x4_t na = vdupq_n_f32(0.0f);
  float32x4_t nb = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    float32x4_t va = vld1q_f32(a + i);
    float32x4_t vb = vld1q_f32(b + i);
    dot = vfmaq_f32(dot, va, vb);
    na = vfmaq_f32(na, va, va);
    nb = vfmaq_f32(nb, vb, vb);
  }
  float sdot = vaddvq_f32(dot), sna = vaddvq_f32(na), snb = vaddvq_f32(nb);
  for (; i < dim; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  float denom = std::sqrt(sna) * std::sqrt(snb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - sdot / denom;
}

template <typename RowKernel>
void BatchNeon(const float* query, const float* base, size_t n, size_t dim,
               float* out, RowKernel row) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = row(query, base + (i + 0) * dim, dim);
    out[i + 1] = row(query, base + (i + 1) * dim, dim);
    out[i + 2] = row(query, base + (i + 2) * dim, dim);
    out[i + 3] = row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = row(query, base + i * dim, dim);
}

void BatchL2SqrNeon(const float* query, const float* base, size_t n,
                    size_t dim, float* out) {
  BatchNeon(query, base, n, dim, out, L2SqrNeon);
}

void BatchInnerProductNeon(const float* query, const float* base, size_t n,
                           size_t dim, float* out) {
  BatchNeon(query, base, n, dim, out, InnerProductNeon);
}

/// Dequantizes 4 SQ8 codes starting at *code: vmin + float(code) * vscale.
inline float32x4_t DecodeSq8x4(const uint8_t* code, const float* vmin,
                               const float* vscale) {
  // Widen 4 bytes -> u16 -> u32 -> f32.
  uint8_t tmp[8] = {code[0], code[1], code[2], code[3], 0, 0, 0, 0};
  uint16x8_t u16 = vmovl_u8(vld1_u8(tmp));
  float32x4_t f = vcvtq_f32_u32(vmovl_u16(vget_low_u16(u16)));
  return vfmaq_f32(vld1q_f32(vmin), f, vld1q_f32(vscale));
}

float Sq8L2SqrNeon(const float* query, const uint8_t* code, const float* vmin,
                   const float* vscale, size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    float32x4_t diff = vsubq_f32(vld1q_f32(query + d),
                                 DecodeSq8x4(code + d, vmin + d, vscale + d));
    acc = vfmaq_f32(acc, diff, diff);
  }
  float sum = vaddvq_f32(acc);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    float diff = query[d] - decoded;
    sum += diff * diff;
  }
  return sum;
}

float Sq8InnerProductNeon(const float* query, const uint8_t* code,
                          const float* vmin, const float* vscale,
                          size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t d = 0;
  for (; d + 4 <= dim; d += 4)
    acc = vfmaq_f32(acc, vld1q_f32(query + d),
                    DecodeSq8x4(code + d, vmin + d, vscale + d));
  float sum = vaddvq_f32(acc);
  for (; d < dim; ++d)
    sum += query[d] * (vmin[d] + static_cast<float>(code[d]) * vscale[d]);
  return sum;
}

void Sq8DotNormNeon(const float* query, const uint8_t* code,
                    const float* vmin, const float* vscale, size_t dim,
                    float* dot_out, float* norm_sqr_out) {
  float32x4_t dot = vdupq_n_f32(0.0f);
  float32x4_t norm = vdupq_n_f32(0.0f);
  size_t d = 0;
  for (; d + 4 <= dim; d += 4) {
    float32x4_t decoded = DecodeSq8x4(code + d, vmin + d, vscale + d);
    dot = vfmaq_f32(dot, vld1q_f32(query + d), decoded);
    norm = vfmaq_f32(norm, decoded, decoded);
  }
  float sdot = vaddvq_f32(dot), snorm = vaddvq_f32(norm);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    sdot += query[d] * decoded;
    snorm += decoded * decoded;
  }
  *dot_out = sdot;
  *norm_sqr_out = snorm;
}

float PqAdcNeon(const float* table, const uint8_t* code, size_t m,
                size_t ks) {
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    a0 += table[(s + 0) * ks + code[s + 0]];
    a1 += table[(s + 1) * ks + code[s + 1]];
    a2 += table[(s + 2) * ks + code[s + 2]];
    a3 += table[(s + 3) * ks + code[s + 3]];
  }
  for (; s < m; ++s) a0 += table[s * ks + code[s]];
  return (a0 + a1) + (a2 + a3);
}

void PqAdcBatchNeon(const float* table, const uint8_t* codes, size_t n,
                    size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n) __builtin_prefetch(codes + (i + 4) * m, 0, 1);
    out[i] = PqAdcNeon(table, codes + i * m, m, ks);
  }
}

// ---- Reduced-precision kernels ---------------------------------------------
//
// fp16 uses the baseline AArch64 FCVTL conversion (half -> single is
// mandatory in ARMv8.0-A even without the FP16 arithmetic extension); bf16
// widens through a 16-bit shift. Loader structs are template parameters so
// both formats share the loop bodies.

struct Fp16LoadNeon {
  static inline float32x4_t Load4(const uint16_t* p) {
    return vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(p)));
  }
  static inline float Load1(uint16_t v) { return Fp16ToFloat(v); }
};

struct Bf16LoadNeon {
  static inline float32x4_t Load4(const uint16_t* p) {
    return vreinterpretq_f32_u32(vshll_n_u16(vld1_u16(p), 16));
  }
  static inline float Load1(uint16_t v) { return Bf16ToFloat(v); }
};

template <typename Load>
float HalfL2SqrNeon(const float* query, const uint16_t* code, size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    float32x4_t d0 = vsubq_f32(vld1q_f32(query + i), Load::Load4(code + i));
    acc0 = vfmaq_f32(acc0, d0, d0);
    float32x4_t d1 =
        vsubq_f32(vld1q_f32(query + i + 4), Load::Load4(code + i + 4));
    acc1 = vfmaq_f32(acc1, d1, d1);
  }
  for (; i + 4 <= dim; i += 4) {
    float32x4_t d = vsubq_f32(vld1q_f32(query + i), Load::Load4(code + i));
    acc0 = vfmaq_f32(acc0, d, d);
  }
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) {
    float d = query[i] - Load::Load1(code[i]);
    acc += d * d;
  }
  return acc;
}

template <typename Load>
float HalfInnerProductNeon(const float* query, const uint16_t* code,
                           size_t dim) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(query + i), Load::Load4(code + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(query + i + 4), Load::Load4(code + i + 4));
  }
  for (; i + 4 <= dim; i += 4)
    acc0 = vfmaq_f32(acc0, vld1q_f32(query + i), Load::Load4(code + i));
  float acc = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < dim; ++i) acc += query[i] * Load::Load1(code[i]);
  return acc;
}

template <float (*Row)(const float*, const uint16_t*, size_t)>
void HalfBatchNeon(const float* query, const uint16_t* base, size_t n,
                   size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

/// Decodes 4 int8 codes to fp32 (no scale applied).
inline float32x4_t DecodeI8x4(const int8_t* p) {
  int8_t tmp[8] = {p[0], p[1], p[2], p[3], 0, 0, 0, 0};
  int16x8_t w = vmovl_s8(vld1_s8(tmp));
  return vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
}

float I8AsymL2SqrNeon(const float* query, const int8_t* code, float scale,
                      size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  const float32x4_t vs = vdupq_n_f32(scale);
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    float32x4_t d = vsubq_f32(vld1q_f32(query + i),
                              vmulq_f32(vs, DecodeI8x4(code + i)));
    acc = vfmaq_f32(acc, d, d);
  }
  float sum = vaddvq_f32(acc);
  for (; i < dim; ++i) {
    float d = query[i] - scale * static_cast<float>(code[i]);
    sum += d * d;
  }
  return sum;
}

float I8AsymDotNeon(const float* query, const int8_t* code, float scale,
                    size_t dim) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 4 <= dim; i += 4)
    acc = vfmaq_f32(acc, vld1q_f32(query + i), DecodeI8x4(code + i));
  float sum = vaddvq_f32(acc);
  for (; i < dim; ++i) sum += query[i] * static_cast<float>(code[i]);
  return scale * sum;
}

// Symmetric int8: vmull_s8 widens i8 x i8 to i16 products, vpadalq_s16
// folds adjacent pairs into i32 accumulators. (vdot needs the optional
// dotprod extension; this stays baseline ARMv8.0.)
int32_t I8DotNeon(const int8_t* a, const int8_t* b, size_t dim) {
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    int8x16_t va = vld1q_s8(a + i);
    int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  int32_t sum = vaddvq_s32(acc);
  for (; i < dim; ++i)
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  return sum;
}

int32_t I8L2SqrNeon(const int8_t* a, const int8_t* b, size_t dim) {
  int32x4_t acc0 = vdupq_n_s32(0);
  int32x4_t acc1 = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    int8x16_t va = vld1q_s8(a + i);
    int8x16_t vb = vld1q_s8(b + i);
    int16x8_t dlo = vsubl_s8(vget_low_s8(va), vget_low_s8(vb));
    int16x8_t dhi = vsubl_s8(vget_high_s8(va), vget_high_s8(vb));
    acc0 = vmlal_s16(acc0, vget_low_s16(dlo), vget_low_s16(dlo));
    acc0 = vmlal_s16(acc0, vget_high_s16(dlo), vget_high_s16(dlo));
    acc1 = vmlal_s16(acc1, vget_low_s16(dhi), vget_low_s16(dhi));
    acc1 = vmlal_s16(acc1, vget_high_s16(dhi), vget_high_s16(dhi));
  }
  int32_t sum = vaddvq_s32(vaddq_s32(acc0, acc1));
  for (; i < dim; ++i) {
    int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += d * d;
  }
  return sum;
}

template <int32_t (*Row)(const int8_t*, const int8_t*, size_t)>
void I8BatchNeon(const int8_t* query, const int8_t* base, size_t n,
                 size_t dim, int32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

}  // namespace

const KernelTable& NeonTable() {
  static const KernelTable table = {
      .tier = SimdTier::kNeon,
      .l2sqr = L2SqrNeon,
      .inner_product = InnerProductNeon,
      .cosine = CosineNeon,
      .batch_l2sqr = BatchL2SqrNeon,
      .batch_inner_product = BatchInnerProductNeon,
      .sq8_l2sqr = Sq8L2SqrNeon,
      .sq8_inner_product = Sq8InnerProductNeon,
      .sq8_dot_norm = Sq8DotNormNeon,
      .pq_adc = PqAdcNeon,
      .pq_adc_batch = PqAdcBatchNeon,
      .fp16_l2sqr = HalfL2SqrNeon<Fp16LoadNeon>,
      .fp16_inner_product = HalfInnerProductNeon<Fp16LoadNeon>,
      .batch_fp16_l2sqr = HalfBatchNeon<HalfL2SqrNeon<Fp16LoadNeon>>,
      .batch_fp16_inner_product =
          HalfBatchNeon<HalfInnerProductNeon<Fp16LoadNeon>>,
      .bf16_l2sqr = HalfL2SqrNeon<Bf16LoadNeon>,
      .bf16_inner_product = HalfInnerProductNeon<Bf16LoadNeon>,
      .batch_bf16_l2sqr = HalfBatchNeon<HalfL2SqrNeon<Bf16LoadNeon>>,
      .batch_bf16_inner_product =
          HalfBatchNeon<HalfInnerProductNeon<Bf16LoadNeon>>,
      .i8_asym_l2sqr = I8AsymL2SqrNeon,
      .i8_asym_dot = I8AsymDotNeon,
      .i8_l2sqr = I8L2SqrNeon,
      .i8_dot = I8DotNeon,
      .batch_i8_l2sqr = I8BatchNeon<I8L2SqrNeon>,
      .batch_i8_dot = I8BatchNeon<I8DotNeon>,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // __aarch64__
