// Runtime dispatch: picks the best kernel tier compiled into this binary
// that the running CPU supports, once, at first use. BLENDHOUSE_FORCE_SCALAR
// (1/true/yes/on) pins the scalar tier for testing the fallback path.
//
// Which per-tier TUs exist is communicated by the build via the
// BH_KERNELS_COMPILED_* definitions set in src/vecindex/CMakeLists.txt; a
// tier whose compile flags the toolchain lacks simply doesn't exist here.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

bool EnvForcesScalar() {
  const char* v = std::getenv("BLENDHOUSE_FORCE_SCALAR");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

/// Can the running CPU execute `tier`? (Independent of whether the tier was
/// compiled in.)
bool CpuSupports(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally guaranteed on AArch64.
#else
      return false;
#endif
    case SimdTier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // F16C is required alongside AVX2+FMA: the tier's fp16 kernels use
      // vcvtph2ps, and every AVX2 core ships F16C.
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma") && __builtin_cpu_supports("f16c");
#else
      return false;
#endif
    case SimdTier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveActive() {
  const KernelTable* best = GetTable(ChooseTier());
  const KernelTable* expected = nullptr;
  g_active.compare_exchange_strong(expected, best,
                                   std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

std::string SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "?";
}

const KernelTable* GetTable(SimdTier tier) {
  if (!CpuSupports(tier)) return nullptr;
  switch (tier) {
    case SimdTier::kScalar:
      return &ScalarTable();
    case SimdTier::kNeon:
#if defined(BH_KERNELS_COMPILED_NEON)
      return &NeonTable();
#else
      return nullptr;
#endif
    case SimdTier::kAvx2:
#if defined(BH_KERNELS_COMPILED_AVX2)
      return &Avx2Table();
#else
      return nullptr;
#endif
    case SimdTier::kAvx512:
#if defined(BH_KERNELS_COMPILED_AVX512)
      // Same tier, better int8 kernels: prefer the VNNI overlay when the TU
      // exists in this build and the CPU reports avx512vnni.
#if defined(BH_KERNELS_COMPILED_AVX512VNNI)
      if (__builtin_cpu_supports("avx512vnni")) return &Avx512VnniTable();
#endif
      return &Avx512Table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kNeon, SimdTier::kAvx2,
                     SimdTier::kAvx512})
    if (GetTable(t) != nullptr) tiers.push_back(t);
  return tiers;
}

SimdTier ChooseTier() {
  if (EnvForcesScalar()) return SimdTier::kScalar;
  SimdTier best = SimdTier::kScalar;
  for (SimdTier t : AvailableTiers()) best = t;  // ascending enum order
  return best;
}

const KernelTable& Get() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) t = ResolveActive();
  return *t;
}

SimdTier ActiveTier() { return Get().tier; }

SimdTier SetActiveTier(SimdTier tier) {
  const KernelTable* next = GetTable(tier);
  SimdTier prev = ActiveTier();
  if (next != nullptr) g_active.store(next, std::memory_order_release);
  return prev;
}

}  // namespace blendhouse::vecindex::kernels
