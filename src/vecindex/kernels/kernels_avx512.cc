// AVX-512 kernels (F+BW+DQ+VL). Compiled with matching -m flags per-source;
// dispatch selects this tier only when CPUID reports all four feature bits.
// Odd dimension tails use maskz loads instead of a scalar epilogue — one of
// the places AVX-512 genuinely simplifies the code. Loads are unaligned.

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

inline __mmask16 TailMask(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

float L2SqrAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                              _mm512_loadu_ps(b + i + 16));
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    __m512 d = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, a + i),
                             _mm512_maskz_loadu_ps(k, b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float InnerProductAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16)
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, a + i),
                           _mm512_maskz_loadu_ps(k, b + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float CosineAvx512(const float* a, const float* b, size_t dim) {
  __m512 dot = _mm512_setzero_ps();
  __m512 na = _mm512_setzero_ps();
  __m512 nb = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 va = _mm512_loadu_ps(a + i);
    __m512 vb = _mm512_loadu_ps(b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 va = _mm512_maskz_loadu_ps(k, a + i);
    __m512 vb = _mm512_maskz_loadu_ps(k, b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  float sdot = _mm512_reduce_add_ps(dot);
  float denom = std::sqrt(_mm512_reduce_add_ps(na)) *
                std::sqrt(_mm512_reduce_add_ps(nb));
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - sdot / denom;
}

// 4-way register-blocked batch with prefetch; see the AVX2 TU for the
// blocking rationale.
void BatchL2SqrAvx512(const float* query, const float* base, size_t n,
                      size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      __m512 d0 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i) out[i] = L2SqrAvx512(query, base + i * dim, dim);
}

void BatchInnerProductAvx512(const float* query, const float* base, size_t n,
                             size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      a0 = _mm512_fmadd_ps(_mm512_loadu_ps(r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(_mm512_loadu_ps(r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(_mm512_loadu_ps(r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(_mm512_loadu_ps(r3 + d), q, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      a0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r3 + d), q, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i) out[i] = InnerProductAvx512(query, base + i * dim, dim);
}

/// Dequantizes 16 SQ8 codes under mask k: vmin + float(code) * vscale.
inline __m512 DecodeSq8(const uint8_t* code, const float* vmin,
                        const float* vscale, __mmask16 k) {
  __m128i bytes = _mm_maskz_loadu_epi8(k, code);
  __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
  return _mm512_fmadd_ps(f, _mm512_maskz_loadu_ps(k, vscale),
                         _mm512_maskz_loadu_ps(k, vmin));
}

float Sq8L2SqrAvx512(const float* query, const uint8_t* code,
                     const float* vmin, const float* vscale, size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(query + d),
                      DecodeSq8(code + d, vmin + d, vscale + d, 0xffff));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    __m512 diff =
        _mm512_sub_ps(_mm512_maskz_loadu_ps(k, query + d),
                      DecodeSq8(code + d, vmin + d, vscale + d, k));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

float Sq8InnerProductAvx512(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16)
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d, 0xffff),
                          acc);
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d, k), acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void Sq8DotNormAvx512(const float* query, const uint8_t* code,
                      const float* vmin, const float* vscale, size_t dim,
                      float* dot_out, float* norm_sqr_out) {
  __m512 dot = _mm512_setzero_ps();
  __m512 norm = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    __m512 decoded = DecodeSq8(code + d, vmin + d, vscale + d, 0xffff);
    dot = _mm512_fmadd_ps(_mm512_loadu_ps(query + d), decoded, dot);
    norm = _mm512_fmadd_ps(decoded, decoded, norm);
  }
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    __m512 decoded = DecodeSq8(code + d, vmin + d, vscale + d, k);
    dot = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + d), decoded, dot);
    norm = _mm512_fmadd_ps(decoded, decoded, norm);
  }
  *dot_out = _mm512_reduce_add_ps(dot);
  *norm_sqr_out = _mm512_reduce_add_ps(norm);
}

float PqAdcAvx512(const float* table, const uint8_t* code, size_t m,
                  size_t ks) {
  __m512 acc = _mm512_setzero_ps();
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12, 13, 14, 15);
  const __m512i vks = _mm512_set1_epi32(static_cast<int>(ks));
  size_t s = 0;
  for (; s + 16 <= m; s += 16) {
    __m128i c16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + s));
    __m512i idx = _mm512_cvtepu8_epi32(c16);
    __m512i row = _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(s)),
                                   iota);
    idx = _mm512_add_epi32(idx, _mm512_mullo_epi32(row, vks));
    acc = _mm512_add_ps(acc, _mm512_i32gather_ps(idx, table, 4));
  }
  float sum = _mm512_reduce_add_ps(acc);
  for (; s < m; ++s) sum += table[s * ks + code[s]];
  return sum;
}

void PqAdcBatchAvx512(const float* table, const uint8_t* codes, size_t n,
                      size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n)
      _mm_prefetch(reinterpret_cast<const char*>(codes + (i + 4) * m),
                   _MM_HINT_T0);
    out[i] = PqAdcAvx512(table, codes + i * m, m, ks);
  }
}

}  // namespace

const KernelTable& Avx512Table() {
  static const KernelTable table = {
      SimdTier::kAvx512,   L2SqrAvx512,
      InnerProductAvx512,  CosineAvx512,
      BatchL2SqrAvx512,    BatchInnerProductAvx512,
      Sq8L2SqrAvx512,      Sq8InnerProductAvx512,
      Sq8DotNormAvx512,    PqAdcAvx512,
      PqAdcBatchAvx512,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // AVX-512 F+BW+DQ+VL
