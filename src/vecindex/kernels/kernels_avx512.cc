// AVX-512 kernels (F+BW+DQ+VL). Compiled with matching -m flags per-source;
// dispatch selects this tier only when CPUID reports all four feature bits.
// Odd dimension tails use maskz loads instead of a scalar epilogue — one of
// the places AVX-512 genuinely simplifies the code. Loads are unaligned.

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

inline __mmask16 TailMask(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

float L2SqrAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                              _mm512_loadu_ps(b + i + 16));
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    __m512 d = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, a + i),
                             _mm512_maskz_loadu_ps(k, b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float InnerProductAvx512(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16)
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, a + i),
                           _mm512_maskz_loadu_ps(k, b + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float CosineAvx512(const float* a, const float* b, size_t dim) {
  __m512 dot = _mm512_setzero_ps();
  __m512 na = _mm512_setzero_ps();
  __m512 nb = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 va = _mm512_loadu_ps(a + i);
    __m512 vb = _mm512_loadu_ps(b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 va = _mm512_maskz_loadu_ps(k, a + i);
    __m512 vb = _mm512_maskz_loadu_ps(k, b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  float sdot = _mm512_reduce_add_ps(dot);
  float denom = std::sqrt(_mm512_reduce_add_ps(na)) *
                std::sqrt(_mm512_reduce_add_ps(nb));
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - sdot / denom;
}

// 4-way register-blocked batch with prefetch; see the AVX2 TU for the
// blocking rationale.
void BatchL2SqrAvx512(const float* query, const float* base, size_t n,
                      size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      __m512 d0 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i) out[i] = L2SqrAvx512(query, base + i * dim, dim);
}

void BatchInnerProductAvx512(const float* query, const float* base, size_t n,
                             size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      a0 = _mm512_fmadd_ps(_mm512_loadu_ps(r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(_mm512_loadu_ps(r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(_mm512_loadu_ps(r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(_mm512_loadu_ps(r3 + d), q, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      a0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, r3 + d), q, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i) out[i] = InnerProductAvx512(query, base + i * dim, dim);
}

/// Dequantizes 16 SQ8 codes under mask k: vmin + float(code) * vscale.
inline __m512 DecodeSq8(const uint8_t* code, const float* vmin,
                        const float* vscale, __mmask16 k) {
  __m128i bytes = _mm_maskz_loadu_epi8(k, code);
  __m512 f = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
  return _mm512_fmadd_ps(f, _mm512_maskz_loadu_ps(k, vscale),
                         _mm512_maskz_loadu_ps(k, vmin));
}

float Sq8L2SqrAvx512(const float* query, const uint8_t* code,
                     const float* vmin, const float* vscale, size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    __m512 diff =
        _mm512_sub_ps(_mm512_loadu_ps(query + d),
                      DecodeSq8(code + d, vmin + d, vscale + d, 0xffff));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    __m512 diff =
        _mm512_sub_ps(_mm512_maskz_loadu_ps(k, query + d),
                      DecodeSq8(code + d, vmin + d, vscale + d, k));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

float Sq8InnerProductAvx512(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16)
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d, 0xffff),
                          acc);
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d, k), acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void Sq8DotNormAvx512(const float* query, const uint8_t* code,
                      const float* vmin, const float* vscale, size_t dim,
                      float* dot_out, float* norm_sqr_out) {
  __m512 dot = _mm512_setzero_ps();
  __m512 norm = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    __m512 decoded = DecodeSq8(code + d, vmin + d, vscale + d, 0xffff);
    dot = _mm512_fmadd_ps(_mm512_loadu_ps(query + d), decoded, dot);
    norm = _mm512_fmadd_ps(decoded, decoded, norm);
  }
  if (d < dim) {
    __mmask16 k = TailMask(dim - d);
    __m512 decoded = DecodeSq8(code + d, vmin + d, vscale + d, k);
    dot = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + d), decoded, dot);
    norm = _mm512_fmadd_ps(decoded, decoded, norm);
  }
  *dot_out = _mm512_reduce_add_ps(dot);
  *norm_sqr_out = _mm512_reduce_add_ps(norm);
}

float PqAdcAvx512(const float* table, const uint8_t* code, size_t m,
                  size_t ks) {
  __m512 acc = _mm512_setzero_ps();
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12, 13, 14, 15);
  const __m512i vks = _mm512_set1_epi32(static_cast<int>(ks));
  size_t s = 0;
  for (; s + 16 <= m; s += 16) {
    __m128i c16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(code + s));
    __m512i idx = _mm512_cvtepu8_epi32(c16);
    __m512i row = _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(s)),
                                   iota);
    idx = _mm512_add_epi32(idx, _mm512_mullo_epi32(row, vks));
    acc = _mm512_add_ps(acc, _mm512_i32gather_ps(idx, table, 4));
  }
  float sum = _mm512_reduce_add_ps(acc);
  for (; s < m; ++s) sum += table[s * ks + code[s]];
  return sum;
}

void PqAdcBatchAvx512(const float* table, const uint8_t* codes, size_t n,
                      size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n)
      _mm_prefetch(reinterpret_cast<const char*>(codes + (i + 4) * m),
                   _MM_HINT_T0);
    out[i] = PqAdcAvx512(table, codes + i * m, m, ks);
  }
}

// ---- Reduced-precision kernels ---------------------------------------------
//
// 16 half-words decode to one zmm per load: fp16 through vcvtph2ps (AVX-512F
// operates on a full ymm of halves natively), bf16 through zero-extend +
// shift-left-16. Masked u16 loads give branch-free tails. Loader structs
// are template parameters so both formats share the loop bodies.

struct Fp16LoadAvx512 {
  static inline __m512 Load16(const uint16_t* p) {
    return _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static inline __m512 MaskLoad16(__mmask16 k, const uint16_t* p) {
    return _mm512_cvtph_ps(_mm256_maskz_loadu_epi16(k, p));
  }
};

struct Bf16LoadAvx512 {
  static inline __m512 Load16(const uint16_t* p) {
    __m256i u = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(u), 16));
  }
  static inline __m512 MaskLoad16(__mmask16 k, const uint16_t* p) {
    return _mm512_castsi512_ps(_mm512_slli_epi32(
        _mm512_cvtepu16_epi32(_mm256_maskz_loadu_epi16(k, p)), 16));
  }
};

template <typename Load>
float HalfL2SqrAvx512(const float* query, const uint16_t* code, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(query + i), Load::Load16(code + i));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(query + i + 16),
                              Load::Load16(code + i + 16));
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(query + i), Load::Load16(code + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, query + i),
                             Load::MaskLoad16(k, code + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

template <typename Load>
float HalfInnerProductAvx512(const float* query, const uint16_t* code,
                             size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(query + i), Load::Load16(code + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(query + i + 16),
                           Load::Load16(code + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16)
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(query + i), Load::Load16(code + i),
                           acc0);
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + i),
                           Load::MaskLoad16(k, code + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

template <typename Load>
void HalfBatchL2SqrAvx512(const float* query, const uint16_t* base, size_t n,
                          size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint16_t* r0 = base + (i + 0) * dim;
    const uint16_t* r1 = base + (i + 1) * dim;
    const uint16_t* r2 = base + (i + 2) * dim;
    const uint16_t* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      __m512 d0 = _mm512_sub_ps(Load::Load16(r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(Load::Load16(r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(Load::Load16(r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(Load::Load16(r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      __m512 d0 = _mm512_sub_ps(Load::MaskLoad16(k, r0 + d), q);
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      __m512 d1 = _mm512_sub_ps(Load::MaskLoad16(k, r1 + d), q);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      __m512 d2 = _mm512_sub_ps(Load::MaskLoad16(k, r2 + d), q);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      __m512 d3 = _mm512_sub_ps(Load::MaskLoad16(k, r3 + d), q);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i)
    out[i] = HalfL2SqrAvx512<Load>(query, base + i * dim, dim);
}

template <typename Load>
void HalfBatchInnerProductAvx512(const float* query, const uint16_t* base,
                                 size_t n, size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint16_t* r0 = base + (i + 0) * dim;
    const uint16_t* r1 = base + (i + 1) * dim;
    const uint16_t* r2 = base + (i + 2) * dim;
    const uint16_t* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      __m512 q = _mm512_loadu_ps(query + d);
      a0 = _mm512_fmadd_ps(Load::Load16(r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(Load::Load16(r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(Load::Load16(r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(Load::Load16(r3 + d), q, a3);
    }
    if (d < dim) {
      __mmask16 k = TailMask(dim - d);
      __m512 q = _mm512_maskz_loadu_ps(k, query + d);
      a0 = _mm512_fmadd_ps(Load::MaskLoad16(k, r0 + d), q, a0);
      a1 = _mm512_fmadd_ps(Load::MaskLoad16(k, r1 + d), q, a1);
      a2 = _mm512_fmadd_ps(Load::MaskLoad16(k, r2 + d), q, a2);
      a3 = _mm512_fmadd_ps(Load::MaskLoad16(k, r3 + d), q, a3);
    }
    out[i + 0] = _mm512_reduce_add_ps(a0);
    out[i + 1] = _mm512_reduce_add_ps(a1);
    out[i + 2] = _mm512_reduce_add_ps(a2);
    out[i + 3] = _mm512_reduce_add_ps(a3);
  }
  for (; i < n; ++i)
    out[i] = HalfInnerProductAvx512<Load>(query, base + i * dim, dim);
}

/// Decodes 16 int8 codes to fp32 (no scale), masked.
inline __m512 DecodeI8x16(__mmask16 k, const int8_t* p) {
  return _mm512_cvtepi32_ps(
      _mm512_cvtepi8_epi32(_mm_maskz_loadu_epi8(k, p)));
}

float I8AsymL2SqrAvx512(const float* query, const int8_t* code, float scale,
                        size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  const __m512 vs = _mm512_set1_ps(scale);
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m512 d = _mm512_sub_ps(_mm512_loadu_ps(query + i),
                             _mm512_mul_ps(vs, DecodeI8x16(0xffff, code + i)));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(k, query + i),
                             _mm512_mul_ps(vs, DecodeI8x16(k, code + i)));
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  return _mm512_reduce_add_ps(acc);
}

float I8AsymDotAvx512(const float* query, const int8_t* code, float scale,
                      size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16)
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(query + i),
                          DecodeI8x16(0xffff, code + i), acc);
  if (i < dim) {
    __mmask16 k = TailMask(dim - i);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(k, query + i),
                          DecodeI8x16(k, code + i), acc);
  }
  return scale * _mm512_reduce_add_ps(acc);
}

inline __mmask32 TailMask32(size_t rem) {
  return static_cast<__mmask32>((1u << rem) - 1u);
}

// Symmetric int8 without VNNI: widen 32 codes to i16 zmm lanes, vpmaddwd
// into i32. The VNNI TU replaces these with single-instruction dpwssd MACs.
int32_t I8DotAvx512(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    __m512i b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
  }
  if (i < dim) {
    __mmask32 k = TailMask32(dim - i);
    __m512i a16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, a + i));
    __m512i b16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, b + i));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
  }
  return static_cast<int32_t>(_mm512_reduce_add_epi32(acc));
}

int32_t I8L2SqrAvx512(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    __m512i b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    __m512i d = _mm512_sub_epi16(a16, b16);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(d, d));
  }
  if (i < dim) {
    __mmask32 k = TailMask32(dim - i);
    __m512i a16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, a + i));
    __m512i b16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, b + i));
    __m512i d = _mm512_sub_epi16(a16, b16);
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(d, d));
  }
  return static_cast<int32_t>(_mm512_reduce_add_epi32(acc));
}

template <int32_t (*Row)(const int8_t*, const int8_t*, size_t)>
void I8BatchAvx512(const int8_t* query, const int8_t* base, size_t n,
                   size_t dim, int32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

}  // namespace

const KernelTable& Avx512Table() {
  static const KernelTable table = {
      .tier = SimdTier::kAvx512,
      .l2sqr = L2SqrAvx512,
      .inner_product = InnerProductAvx512,
      .cosine = CosineAvx512,
      .batch_l2sqr = BatchL2SqrAvx512,
      .batch_inner_product = BatchInnerProductAvx512,
      .sq8_l2sqr = Sq8L2SqrAvx512,
      .sq8_inner_product = Sq8InnerProductAvx512,
      .sq8_dot_norm = Sq8DotNormAvx512,
      .pq_adc = PqAdcAvx512,
      .pq_adc_batch = PqAdcBatchAvx512,
      .fp16_l2sqr = HalfL2SqrAvx512<Fp16LoadAvx512>,
      .fp16_inner_product = HalfInnerProductAvx512<Fp16LoadAvx512>,
      .batch_fp16_l2sqr = HalfBatchL2SqrAvx512<Fp16LoadAvx512>,
      .batch_fp16_inner_product = HalfBatchInnerProductAvx512<Fp16LoadAvx512>,
      .bf16_l2sqr = HalfL2SqrAvx512<Bf16LoadAvx512>,
      .bf16_inner_product = HalfInnerProductAvx512<Bf16LoadAvx512>,
      .batch_bf16_l2sqr = HalfBatchL2SqrAvx512<Bf16LoadAvx512>,
      .batch_bf16_inner_product = HalfBatchInnerProductAvx512<Bf16LoadAvx512>,
      .i8_asym_l2sqr = I8AsymL2SqrAvx512,
      .i8_asym_dot = I8AsymDotAvx512,
      .i8_l2sqr = I8L2SqrAvx512,
      .i8_dot = I8DotAvx512,
      .batch_i8_l2sqr = I8BatchAvx512<I8L2SqrAvx512>,
      .batch_i8_dot = I8BatchAvx512<I8DotAvx512>,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // AVX-512 F+BW+DQ+VL
