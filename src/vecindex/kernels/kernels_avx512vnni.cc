// AVX-512 VNNI overlay for the symmetric int8 kernels: vpdpwssd fuses the
// widen-multiply-accumulate chain the base AVX-512 TU spells as vpmaddwd +
// vpaddd, doubling integer MAC throughput on VNNI cores. Compiled with the
// base AVX-512 flags plus -mavx512vnni; dispatch substitutes this table for
// the plain AVX-512 one when CPUID additionally reports avx512vnni. All
// non-int8 entries are shared with the base table.

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

inline __mmask32 TailMask32(size_t rem) {
  return static_cast<__mmask32>((1u << rem) - 1u);
}

int32_t I8DotVnni(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    __m512i b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc0 = _mm512_dpwssd_epi32(acc0, a16, b16);
    a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32)));
    b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32)));
    acc1 = _mm512_dpwssd_epi32(acc1, a16, b16);
  }
  for (; i + 32 <= dim; i += 32) {
    __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    __m512i b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc0 = _mm512_dpwssd_epi32(acc0, a16, b16);
  }
  if (i < dim) {
    __mmask32 k = TailMask32(dim - i);
    __m512i a16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, a + i));
    __m512i b16 = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, b + i));
    acc0 = _mm512_dpwssd_epi32(acc0, a16, b16);
  }
  return static_cast<int32_t>(
      _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1)));
}

int32_t I8L2SqrVnni(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    __m512i d0 = _mm512_sub_epi16(
        _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i))),
        _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
    acc0 = _mm512_dpwssd_epi32(acc0, d0, d0);
    __m512i d1 = _mm512_sub_epi16(
        _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + i + 32))),
        _mm512_cvtepi8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + i + 32))));
    acc1 = _mm512_dpwssd_epi32(acc1, d1, d1);
  }
  for (; i + 32 <= dim; i += 32) {
    __m512i d = _mm512_sub_epi16(
        _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i))),
        _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
    acc0 = _mm512_dpwssd_epi32(acc0, d, d);
  }
  if (i < dim) {
    __mmask32 k = TailMask32(dim - i);
    __m512i d = _mm512_sub_epi16(
        _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, a + i)),
        _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(k, b + i)));
    acc0 = _mm512_dpwssd_epi32(acc0, d, d);
  }
  return static_cast<int32_t>(
      _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1)));
}

template <int32_t (*Row)(const int8_t*, const int8_t*, size_t)>
void I8BatchVnni(const int8_t* query, const int8_t* base, size_t n,
                 size_t dim, int32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

}  // namespace

const KernelTable& Avx512VnniTable() {
  static const KernelTable table = [] {
    KernelTable t = Avx512Table();
    t.i8_dot = I8DotVnni;
    t.i8_l2sqr = I8L2SqrVnni;
    t.batch_i8_dot = I8BatchVnni<I8DotVnni>;
    t.batch_i8_l2sqr = I8BatchVnni<I8L2SqrVnni>;
    return t;
  }();
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // AVX-512 F+BW+DQ+VL+VNNI
