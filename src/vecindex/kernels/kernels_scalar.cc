// Scalar reference kernels. Always compiled, always runnable: this TU is the
// portable fallback every other tier is tested against, and the tier CI runs
// under BLENDHOUSE_FORCE_SCALAR=1. Loops are written straight-line so the
// compiler's autovectorizer can still help at -O2 without any -m flags.

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

float L2SqrScalar(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProductScalar(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineScalar(const float* a, const float* b, size_t dim) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - dot / denom;
}

// Batched variants: 4-way row blocking keeps four independent accumulator
// chains live (hides FP add latency even in scalar code) and prefetches the
// rows the next block will touch.
template <typename RowKernel>
void BatchScalar(const float* query, const float* base, size_t n, size_t dim,
                 float* out, RowKernel row) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = row(query, r0, dim);
    out[i + 1] = row(query, r1, dim);
    out[i + 2] = row(query, r2, dim);
    out[i + 3] = row(query, r3, dim);
  }
  for (; i < n; ++i) out[i] = row(query, base + i * dim, dim);
}

void BatchL2SqrScalar(const float* query, const float* base, size_t n,
                      size_t dim, float* out) {
  BatchScalar(query, base, n, dim, out, L2SqrScalar);
}

void BatchInnerProductScalar(const float* query, const float* base, size_t n,
                             size_t dim, float* out) {
  BatchScalar(query, base, n, dim, out, InnerProductScalar);
}

float Sq8L2SqrScalar(const float* query, const uint8_t* code,
                     const float* vmin, const float* vscale, size_t dim) {
  float acc = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    float diff = query[d] - decoded;
    acc += diff * diff;
  }
  return acc;
}

float Sq8InnerProductScalar(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim) {
  float acc = 0.0f;
  for (size_t d = 0; d < dim; ++d)
    acc += query[d] * (vmin[d] + static_cast<float>(code[d]) * vscale[d]);
  return acc;
}

void Sq8DotNormScalar(const float* query, const uint8_t* code,
                      const float* vmin, const float* vscale, size_t dim,
                      float* dot_out, float* norm_sqr_out) {
  float dot = 0.0f, norm = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    dot += query[d] * decoded;
    norm += decoded * decoded;
  }
  *dot_out = dot;
  *norm_sqr_out = norm;
}

float PqAdcScalar(const float* table, const uint8_t* code, size_t m,
                  size_t ks) {
  // Four independent accumulators: ADC is a dependent-load chain, so giving
  // the core four lookups in flight roughly quadruples throughput.
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    a0 += table[(s + 0) * ks + code[s + 0]];
    a1 += table[(s + 1) * ks + code[s + 1]];
    a2 += table[(s + 2) * ks + code[s + 2]];
    a3 += table[(s + 3) * ks + code[s + 3]];
  }
  for (; s < m; ++s) a0 += table[s * ks + code[s]];
  return (a0 + a1) + (a2 + a3);
}

void PqAdcBatchScalar(const float* table, const uint8_t* codes, size_t n,
                      size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n) __builtin_prefetch(codes + (i + 4) * m, 0, 1);
    out[i] = PqAdcScalar(table, codes + i * m, m, ks);
  }
}

// ---- Reduced-precision kernels ---------------------------------------------
//
// The 16-bit kernels are templated on the decoder so fp16 and bf16 share
// one loop body; instantiated function templates are what lands in the
// table. Batch variants reuse BatchScalar's 4-way blocking via the
// row-kernel instantiations.

template <float (*Decode)(uint16_t)>
float HalfL2SqrScalar(const float* query, const uint16_t* code, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = query[i] - Decode(code[i]);
    acc += d * d;
  }
  return acc;
}

template <float (*Decode)(uint16_t)>
float HalfInnerProductScalar(const float* query, const uint16_t* code,
                             size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += query[i] * Decode(code[i]);
  return acc;
}

template <float (*Row)(const float*, const uint16_t*, size_t)>
void HalfBatchScalar(const float* query, const uint16_t* base, size_t n,
                     size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

float I8AsymL2SqrScalar(const float* query, const int8_t* code, float scale,
                        size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = query[i] - scale * static_cast<float>(code[i]);
    acc += d * d;
  }
  return acc;
}

float I8AsymDotScalar(const float* query, const int8_t* code, float scale,
                      size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i)
    acc += query[i] * static_cast<float>(code[i]);
  return scale * acc;
}

int32_t I8L2SqrScalar(const int8_t* a, const int8_t* b, size_t dim) {
  int32_t acc = 0;
  for (size_t i = 0; i < dim; ++i) {
    int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    acc += d * d;
  }
  return acc;
}

int32_t I8DotScalar(const int8_t* a, const int8_t* b, size_t dim) {
  int32_t acc = 0;
  for (size_t i = 0; i < dim; ++i)
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  return acc;
}

template <int32_t (*Row)(const int8_t*, const int8_t*, size_t)>
void I8BatchScalar(const int8_t* query, const int8_t* base, size_t n,
                   size_t dim, int32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      .tier = SimdTier::kScalar,
      .l2sqr = L2SqrScalar,
      .inner_product = InnerProductScalar,
      .cosine = CosineScalar,
      .batch_l2sqr = BatchL2SqrScalar,
      .batch_inner_product = BatchInnerProductScalar,
      .sq8_l2sqr = Sq8L2SqrScalar,
      .sq8_inner_product = Sq8InnerProductScalar,
      .sq8_dot_norm = Sq8DotNormScalar,
      .pq_adc = PqAdcScalar,
      .pq_adc_batch = PqAdcBatchScalar,
      .fp16_l2sqr = HalfL2SqrScalar<Fp16ToFloat>,
      .fp16_inner_product = HalfInnerProductScalar<Fp16ToFloat>,
      .batch_fp16_l2sqr = HalfBatchScalar<HalfL2SqrScalar<Fp16ToFloat>>,
      .batch_fp16_inner_product =
          HalfBatchScalar<HalfInnerProductScalar<Fp16ToFloat>>,
      .bf16_l2sqr = HalfL2SqrScalar<Bf16ToFloat>,
      .bf16_inner_product = HalfInnerProductScalar<Bf16ToFloat>,
      .batch_bf16_l2sqr = HalfBatchScalar<HalfL2SqrScalar<Bf16ToFloat>>,
      .batch_bf16_inner_product =
          HalfBatchScalar<HalfInnerProductScalar<Bf16ToFloat>>,
      .i8_asym_l2sqr = I8AsymL2SqrScalar,
      .i8_asym_dot = I8AsymDotScalar,
      .i8_l2sqr = I8L2SqrScalar,
      .i8_dot = I8DotScalar,
      .batch_i8_l2sqr = I8BatchScalar<I8L2SqrScalar>,
      .batch_i8_dot = I8BatchScalar<I8DotScalar>,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels
