// Scalar reference kernels. Always compiled, always runnable: this TU is the
// portable fallback every other tier is tested against, and the tier CI runs
// under BLENDHOUSE_FORCE_SCALAR=1. Loops are written straight-line so the
// compiler's autovectorizer can still help at -O2 without any -m flags.

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

float L2SqrScalar(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProductScalar(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineScalar(const float* a, const float* b, size_t dim) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - dot / denom;
}

// Batched variants: 4-way row blocking keeps four independent accumulator
// chains live (hides FP add latency even in scalar code) and prefetches the
// rows the next block will touch.
template <typename RowKernel>
void BatchScalar(const float* query, const float* base, size_t n, size_t dim,
                 float* out, RowKernel row) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      __builtin_prefetch(base + (i + 4) * dim, 0, 1);
      __builtin_prefetch(base + (i + 6) * dim, 0, 1);
    }
    out[i + 0] = row(query, r0, dim);
    out[i + 1] = row(query, r1, dim);
    out[i + 2] = row(query, r2, dim);
    out[i + 3] = row(query, r3, dim);
  }
  for (; i < n; ++i) out[i] = row(query, base + i * dim, dim);
}

void BatchL2SqrScalar(const float* query, const float* base, size_t n,
                      size_t dim, float* out) {
  BatchScalar(query, base, n, dim, out, L2SqrScalar);
}

void BatchInnerProductScalar(const float* query, const float* base, size_t n,
                             size_t dim, float* out) {
  BatchScalar(query, base, n, dim, out, InnerProductScalar);
}

float Sq8L2SqrScalar(const float* query, const uint8_t* code,
                     const float* vmin, const float* vscale, size_t dim) {
  float acc = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    float diff = query[d] - decoded;
    acc += diff * diff;
  }
  return acc;
}

float Sq8InnerProductScalar(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim) {
  float acc = 0.0f;
  for (size_t d = 0; d < dim; ++d)
    acc += query[d] * (vmin[d] + static_cast<float>(code[d]) * vscale[d]);
  return acc;
}

void Sq8DotNormScalar(const float* query, const uint8_t* code,
                      const float* vmin, const float* vscale, size_t dim,
                      float* dot_out, float* norm_sqr_out) {
  float dot = 0.0f, norm = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    dot += query[d] * decoded;
    norm += decoded * decoded;
  }
  *dot_out = dot;
  *norm_sqr_out = norm;
}

float PqAdcScalar(const float* table, const uint8_t* code, size_t m,
                  size_t ks) {
  // Four independent accumulators: ADC is a dependent-load chain, so giving
  // the core four lookups in flight roughly quadruples throughput.
  float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    a0 += table[(s + 0) * ks + code[s + 0]];
    a1 += table[(s + 1) * ks + code[s + 1]];
    a2 += table[(s + 2) * ks + code[s + 2]];
    a3 += table[(s + 3) * ks + code[s + 3]];
  }
  for (; s < m; ++s) a0 += table[s * ks + code[s]];
  return (a0 + a1) + (a2 + a3);
}

void PqAdcBatchScalar(const float* table, const uint8_t* codes, size_t n,
                      size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n) __builtin_prefetch(codes + (i + 4) * m, 0, 1);
    out[i] = PqAdcScalar(table, codes + i * m, m, ks);
  }
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      SimdTier::kScalar,   L2SqrScalar,
      InnerProductScalar,  CosineScalar,
      BatchL2SqrScalar,    BatchInnerProductScalar,
      Sq8L2SqrScalar,      Sq8InnerProductScalar,
      Sq8DotNormScalar,    PqAdcScalar,
      PqAdcBatchScalar,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels
