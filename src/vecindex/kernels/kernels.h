#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace blendhouse::vecindex::kernels {

/// SIMD instruction tiers, best-last. Which tiers exist in the binary is a
/// build-time property (per-TU -march flags in src/vecindex/CMakeLists.txt);
/// which one runs is decided once at startup from CPUID, overridable with
/// the BLENDHOUSE_FORCE_SCALAR environment variable.
enum class SimdTier { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

std::string SimdTierName(SimdTier tier);

// ---- Kernel signatures -----------------------------------------------------
//
// Alignment contract: kernels use unaligned loads and accept any pointer.
// 64-byte-aligned storage (common::AlignedVector) is a throughput
// optimization for the packed base side, never a precondition — queries
// arrive from arbitrary caller buffers.

/// Pairwise float kernel over two dim-length vectors.
using DistFn = float (*)(const float* a, const float* b, size_t dim);

/// One query against `n` packed base vectors (row stride = dim), writing n
/// outputs. Implementations block 4 rows per pass and software-prefetch
/// upcoming rows.
using BatchDistFn = void (*)(const float* query, const float* base, size_t n,
                             size_t dim, float* out);

/// SQ8 asymmetric kernel: float query vs uint8 code with per-dimension
/// affine dequantization decoded[d] = vmin[d] + code[d] * vscale[d], fused
/// into the accumulation (no materialized float copy).
using Sq8DistFn = float (*)(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim);

/// Fused SQ8 dot + squared norm of the decoded vector in one pass; feeds
/// cosine-over-SQ without a decode buffer.
using Sq8DotNormFn = void (*)(const float* query, const uint8_t* code,
                              const float* vmin, const float* vscale,
                              size_t dim, float* dot_out,
                              float* norm_sqr_out);

/// PQ ADC lookup: sum of table[s * ks + code[s]] over the m subspaces.
using PqAdcFn = float (*)(const float* table, const uint8_t* code, size_t m,
                          size_t ks);

/// ADC over `n` packed codes (row stride = m bytes), with prefetch.
using PqAdcBatchFn = void (*)(const float* table, const uint8_t* codes,
                              size_t n, size_t m, size_t ks, float* out);

/// One tier's full kernel set. Resolved once; indexes grab the function
/// pointers they need instead of re-dispatching on Metric per call.
struct KernelTable {
  SimdTier tier = SimdTier::kScalar;
  DistFn l2sqr = nullptr;
  DistFn inner_product = nullptr;
  /// 1 - dot/(|a||b|); computes both norms in the same pass. Returns 1.0
  /// when either norm is zero (the "no similarity evidence" convention every
  /// index shares).
  DistFn cosine = nullptr;
  BatchDistFn batch_l2sqr = nullptr;
  BatchDistFn batch_inner_product = nullptr;
  Sq8DistFn sq8_l2sqr = nullptr;
  Sq8DistFn sq8_inner_product = nullptr;
  Sq8DotNormFn sq8_dot_norm = nullptr;
  PqAdcFn pq_adc = nullptr;
  PqAdcBatchFn pq_adc_batch = nullptr;
};

// ---- Dispatch --------------------------------------------------------------

/// Active kernel table. First call resolves the tier (CPU features, env
/// override) and caches it; later calls are one relaxed atomic load.
const KernelTable& Get();

/// Tier of the active table.
SimdTier ActiveTier();

/// The table for a specific tier, or nullptr when that tier was not compiled
/// into this binary or the CPU cannot run it. Scalar always exists.
const KernelTable* GetTable(SimdTier tier);

/// Tiers compiled into this binary AND runnable on this CPU, ascending.
std::vector<SimdTier> AvailableTiers();

/// What dispatch would pick right now: best available tier, or kScalar when
/// BLENDHOUSE_FORCE_SCALAR is set (1/true/yes/on). Re-reads the environment
/// on every call so tests can exercise the override.
SimdTier ChooseTier();

/// Testing/diagnostics hook: swap the active table (e.g. to validate the
/// scalar fallback end to end). Returns the previous tier. Indexes resolve
/// their function pointers at construction/load, so rebuild or reload
/// indexes after switching. No-op (returns current) if `tier` is
/// unavailable.
SimdTier SetActiveTier(SimdTier tier);

/// Hint the prefetcher at data needed a few iterations from now. Thin
/// wrapper over the compiler builtin so scan loops outside kernels/ stay
/// intrinsic-free.
inline void Prefetch(const void* p) { __builtin_prefetch(p, 0, 1); }

}  // namespace blendhouse::vecindex::kernels
