#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace blendhouse::vecindex::kernels {

/// SIMD instruction tiers, best-last. Which tiers exist in the binary is a
/// build-time property (per-TU -march flags in src/vecindex/CMakeLists.txt);
/// which one runs is decided once at startup from CPUID, overridable with
/// the BLENDHOUSE_FORCE_SCALAR environment variable.
enum class SimdTier { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

std::string SimdTierName(SimdTier tier);

// ---- Kernel signatures -----------------------------------------------------
//
// Alignment contract: kernels use unaligned loads and accept any pointer.
// 64-byte-aligned storage (common::AlignedVector) is a throughput
// optimization for the packed base side, never a precondition — queries
// arrive from arbitrary caller buffers.

/// Pairwise float kernel over two dim-length vectors.
using DistFn = float (*)(const float* a, const float* b, size_t dim);

/// One query against `n` packed base vectors (row stride = dim), writing n
/// outputs. Implementations block 4 rows per pass and software-prefetch
/// upcoming rows.
using BatchDistFn = void (*)(const float* query, const float* base, size_t n,
                             size_t dim, float* out);

/// SQ8 asymmetric kernel: float query vs uint8 code with per-dimension
/// affine dequantization decoded[d] = vmin[d] + code[d] * vscale[d], fused
/// into the accumulation (no materialized float copy).
using Sq8DistFn = float (*)(const float* query, const uint8_t* code,
                            const float* vmin, const float* vscale,
                            size_t dim);

/// Fused SQ8 dot + squared norm of the decoded vector in one pass; feeds
/// cosine-over-SQ without a decode buffer.
using Sq8DotNormFn = void (*)(const float* query, const uint8_t* code,
                              const float* vmin, const float* vscale,
                              size_t dim, float* dot_out,
                              float* norm_sqr_out);

/// PQ ADC lookup: sum of table[s * ks + code[s]] over the m subspaces.
using PqAdcFn = float (*)(const float* table, const uint8_t* code, size_t m,
                          size_t ks);

/// ADC over `n` packed codes (row stride = m bytes), with prefetch.
using PqAdcBatchFn = void (*)(const float* table, const uint8_t* codes,
                              size_t n, size_t m, size_t ks, float* out);

// ---- Reduced-precision kernels (DESIGN.md §13) -----------------------------
//
// fp16/bf16 kernels are asymmetric: the query stays fp32 (it arrives once
// per search; narrowing it buys nothing) and the packed base side holds
// 16-bit codes widened to fp32 in registers. int8 comes in two shapes: a
// symmetric i8 x i8 integer kernel for batch scans (the VNNI dot-product
// idiom — the query is quantized once per search) and an asymmetric
// fp32 x int8 kernel for graph walks, where the fp32 query keeps hop
// ordering stable without a per-hop decode buffer.

/// fp32 query vs one packed 16-bit (fp16 or bf16) base vector.
using HalfDistFn = float (*)(const float* query, const uint16_t* code,
                             size_t dim);

/// One fp32 query against n packed 16-bit rows (row stride = dim).
using HalfBatchFn = void (*)(const float* query, const uint16_t* base,
                             size_t n, size_t dim, float* out);

/// fp32 query vs int8 code under one symmetric scale: decoded = scale*code.
using I8AsymDistFn = float (*)(const float* query, const int8_t* code,
                               float scale, size_t dim);

/// Symmetric int8 kernel returning the raw integer accumulation (sum of
/// squared differences, or dot product); the caller applies scale factors.
/// Contract: dim <= 32768 so the i32 accumulators cannot overflow.
using I8DistFn = int32_t (*)(const int8_t* a, const int8_t* b, size_t dim);

/// Batched symmetric int8 kernel writing raw i32 accumulations.
using I8BatchFn = void (*)(const int8_t* query, const int8_t* base, size_t n,
                           size_t dim, int32_t* out);

/// One tier's full kernel set. Resolved once; indexes grab the function
/// pointers they need instead of re-dispatching on Metric per call.
/// Reduced-precision cosine has no dedicated kernels: scans compose the dot
/// kernel with stored base norms via CosineFromDot.
struct KernelTable {
  SimdTier tier = SimdTier::kScalar;
  DistFn l2sqr = nullptr;
  DistFn inner_product = nullptr;
  /// 1 - dot/(|a||b|); computes both norms in the same pass. Returns 1.0
  /// when either norm is zero (the "no similarity evidence" convention every
  /// index shares).
  DistFn cosine = nullptr;
  BatchDistFn batch_l2sqr = nullptr;
  BatchDistFn batch_inner_product = nullptr;
  Sq8DistFn sq8_l2sqr = nullptr;
  Sq8DistFn sq8_inner_product = nullptr;
  Sq8DotNormFn sq8_dot_norm = nullptr;
  PqAdcFn pq_adc = nullptr;
  PqAdcBatchFn pq_adc_batch = nullptr;
  HalfDistFn fp16_l2sqr = nullptr;
  HalfDistFn fp16_inner_product = nullptr;
  HalfBatchFn batch_fp16_l2sqr = nullptr;
  HalfBatchFn batch_fp16_inner_product = nullptr;
  HalfDistFn bf16_l2sqr = nullptr;
  HalfDistFn bf16_inner_product = nullptr;
  HalfBatchFn batch_bf16_l2sqr = nullptr;
  HalfBatchFn batch_bf16_inner_product = nullptr;
  I8AsymDistFn i8_asym_l2sqr = nullptr;
  I8AsymDistFn i8_asym_dot = nullptr;
  I8DistFn i8_l2sqr = nullptr;
  I8DistFn i8_dot = nullptr;
  I8BatchFn batch_i8_l2sqr = nullptr;
  I8BatchFn batch_i8_dot = nullptr;
};

// ---- fp16 / bf16 scalar conversions ----------------------------------------
//
// Bit-twiddled (no compiler half-float extension) so every tier — including
// plain scalar — encodes and decodes with identical results. Encoding
// rounds to nearest-even; decoding is exact.

inline float Fp16ToFloat(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t man = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0) {
    if (man == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half: renormalize into a normal float.
      uint32_t e = 113;  // 127 - 15 + 1
      while ((man & 0x400u) == 0) {
        man <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((man & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (man << 13);  // inf / nan
  } else {
    bits = sign | ((exp + 112u) << 23) | (man << 13);
  }
  return __builtin_bit_cast(float, bits);
}

inline uint16_t FloatToFp16(float f) {
  uint32_t x = __builtin_bit_cast(uint32_t, f);
  uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7fffffffu;
  if (x >= 0x7f800000u) {  // inf / nan
    return static_cast<uint16_t>(
        sign | (x > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  if (x >= 0x47800000u) return static_cast<uint16_t>(sign | 0x7c00u);  // ovf
  if (x < 0x38800000u) {  // subnormal half (or zero)
    uint32_t shift = 126u - (x >> 23);  // 14 (top subnormal) .. 24 (epsilon)
    if (shift > 24u) return sign;
    uint32_t man = (x & 0x7fffffu) | 0x800000u;
    uint16_t h = static_cast<uint16_t>(man >> shift);
    uint32_t rem = man & ((1u << shift) - 1u);
    uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (h & 1u))) ++h;
    return static_cast<uint16_t>(sign | h);
  }
  uint32_t exp = (x >> 23) - 112u;
  uint16_t h = static_cast<uint16_t>((exp << 10) | ((x >> 13) & 0x3ffu));
  uint32_t rem = x & 0x1fffu;
  // Round to nearest-even; a mantissa carry correctly bumps the exponent
  // (65504.x -> inf included).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<uint16_t>(sign | h);
}

inline float Bf16ToFloat(uint16_t h) {
  return __builtin_bit_cast(float, static_cast<uint32_t>(h) << 16);
}

inline uint16_t FloatToBf16(float f) {
  uint32_t x = __builtin_bit_cast(uint32_t, f);
  if ((x & 0x7fffffffu) > 0x7f800000u)
    return static_cast<uint16_t>((x >> 16) | 0x0040u);  // quieten nan
  uint32_t rounding = 0x7fffu + ((x >> 16) & 1u);
  return static_cast<uint16_t>((x + rounding) >> 16);
}

// ---- Dispatch --------------------------------------------------------------

/// Active kernel table. First call resolves the tier (CPU features, env
/// override) and caches it; later calls are one relaxed atomic load.
const KernelTable& Get();

/// Tier of the active table.
SimdTier ActiveTier();

/// The table for a specific tier, or nullptr when that tier was not compiled
/// into this binary or the CPU cannot run it. Scalar always exists.
const KernelTable* GetTable(SimdTier tier);

/// Tiers compiled into this binary AND runnable on this CPU, ascending.
std::vector<SimdTier> AvailableTiers();

/// What dispatch would pick right now: best available tier, or kScalar when
/// BLENDHOUSE_FORCE_SCALAR is set (1/true/yes/on). Re-reads the environment
/// on every call so tests can exercise the override.
SimdTier ChooseTier();

/// Testing/diagnostics hook: swap the active table (e.g. to validate the
/// scalar fallback end to end). Returns the previous tier. Indexes resolve
/// their function pointers at construction/load, so rebuild or reload
/// indexes after switching. No-op (returns current) if `tier` is
/// unavailable.
SimdTier SetActiveTier(SimdTier tier);

/// Hint the prefetcher at data needed a few iterations from now. Thin
/// wrapper over the compiler builtin so scan loops outside kernels/ stay
/// intrinsic-free.
inline void Prefetch(const void* p) { __builtin_prefetch(p, 0, 1); }

}  // namespace blendhouse::vecindex::kernels
