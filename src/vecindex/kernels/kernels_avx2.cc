// AVX2+FMA kernels. This TU is compiled with -mavx2 -mfma (set per-source in
// src/vecindex/CMakeLists.txt) and only linked into dispatch when the build
// supports those flags; dispatch only selects it when CPUID reports AVX2 and
// FMA at runtime. All loads are unaligned (loadu): alignment of the packed
// base storage is a cache optimization, never a precondition.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

inline float Reduce8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

float L2SqrAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProductAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineAvx2(const float* a, const float* b, size_t dim) {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  float sdot = Reduce8(dot), sna = Reduce8(na), snb = Reduce8(nb);
  for (; i < dim; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  float denom = std::sqrt(sna) * std::sqrt(snb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - sdot / denom;
}

// 4-way register-blocked batch: one query load feeds four row accumulators,
// so the query streams from L1 once per block instead of once per row.
void BatchL2SqrAvx2(const float* query, const float* base, size_t n,
                    size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(r0 + d), q);
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(r1 + d), q);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(r2 + d), q);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(r3 + d), q);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      float e0 = r0[d] - q, e1 = r1[d] - q, e2 = r2[d] - q, e3 = r3[d] - q;
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = L2SqrAvx2(query, base + i * dim, dim);
}

void BatchInnerProductAvx2(const float* query, const float* base, size_t n,
                           size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + d), q, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + d), q, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + d), q, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + d), q, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      s0 += r0[d] * q;
      s1 += r1[d] * q;
      s2 += r2[d] * q;
      s3 += r3[d] * q;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = InnerProductAvx2(query, base + i * dim, dim);
}

/// Dequantizes 8 SQ8 codes into floats: vmin + float(code) * vscale.
inline __m256 DecodeSq8(const uint8_t* code, const float* vmin,
                        const float* vscale) {
  __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code));
  __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
  return _mm256_fmadd_ps(f, _mm256_loadu_ps(vscale), _mm256_loadu_ps(vmin));
}

float Sq8L2SqrAvx2(const float* query, const uint8_t* code, const float* vmin,
                   const float* vscale, size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(query + d),
                                DecodeSq8(code + d, vmin + d, vscale + d));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float sum = Reduce8(acc);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    float diff = query[d] - decoded;
    sum += diff * diff;
  }
  return sum;
}

float Sq8InnerProductAvx2(const float* query, const uint8_t* code,
                          const float* vmin, const float* vscale,
                          size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d), acc);
  float sum = Reduce8(acc);
  for (; d < dim; ++d)
    sum += query[d] * (vmin[d] + static_cast<float>(code[d]) * vscale[d]);
  return sum;
}

void Sq8DotNormAvx2(const float* query, const uint8_t* code,
                    const float* vmin, const float* vscale, size_t dim,
                    float* dot_out, float* norm_sqr_out) {
  __m256 dot = _mm256_setzero_ps();
  __m256 norm = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    __m256 decoded = DecodeSq8(code + d, vmin + d, vscale + d);
    dot = _mm256_fmadd_ps(_mm256_loadu_ps(query + d), decoded, dot);
    norm = _mm256_fmadd_ps(decoded, decoded, norm);
  }
  float sdot = Reduce8(dot), snorm = Reduce8(norm);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    sdot += query[d] * decoded;
    snorm += decoded * decoded;
  }
  *dot_out = sdot;
  *norm_sqr_out = snorm;
}

float PqAdcAvx2(const float* table, const uint8_t* code, size_t m,
                size_t ks) {
  __m256 acc = _mm256_setzero_ps();
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i vks = _mm256_set1_epi32(static_cast<int>(ks));
  size_t s = 0;
  for (; s + 8 <= m; s += 8) {
    __m128i c8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + s));
    __m256i idx = _mm256_cvtepu8_epi32(c8);
    __m256i row = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(s)),
                                   iota);
    idx = _mm256_add_epi32(idx, _mm256_mullo_epi32(row, vks));
    acc = _mm256_add_ps(acc, _mm256_i32gather_ps(table, idx, 4));
  }
  float sum = Reduce8(acc);
  for (; s < m; ++s) sum += table[s * ks + code[s]];
  return sum;
}

void PqAdcBatchAvx2(const float* table, const uint8_t* codes, size_t n,
                    size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n)
      _mm_prefetch(reinterpret_cast<const char*>(codes + (i + 4) * m),
                   _MM_HINT_T0);
    out[i] = PqAdcAvx2(table, codes + i * m, m, ks);
  }
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      SimdTier::kAvx2,   L2SqrAvx2,
      InnerProductAvx2,  CosineAvx2,
      BatchL2SqrAvx2,    BatchInnerProductAvx2,
      Sq8L2SqrAvx2,      Sq8InnerProductAvx2,
      Sq8DotNormAvx2,    PqAdcAvx2,
      PqAdcBatchAvx2,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // __AVX2__ && __FMA__
