// AVX2+FMA+F16C kernels. This TU is compiled with -mavx2 -mfma -mf16c (set
// per-source in src/vecindex/CMakeLists.txt) and only linked into dispatch
// when the build supports those flags; dispatch only selects it when CPUID
// reports AVX2, FMA and F16C at runtime (F16C predates AVX2 in every
// shipped core, so requiring it costs no hardware coverage). All loads are
// unaligned (loadu): alignment of the packed base storage is a cache
// optimization, never a precondition.

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)

#include <immintrin.h>

#include <cmath>

#include "vecindex/kernels/kernel_tables.h"

namespace blendhouse::vecindex::kernels {
namespace {

inline float Reduce8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

float L2SqrAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProductAvx2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineAvx2(const float* a, const float* b, size_t dim) {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  float sdot = Reduce8(dot), sna = Reduce8(na), snb = Reduce8(nb);
  for (; i < dim; ++i) {
    sdot += a[i] * b[i];
    sna += a[i] * a[i];
    snb += b[i] * b[i];
  }
  float denom = std::sqrt(sna) * std::sqrt(snb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - sdot / denom;
}

// 4-way register-blocked batch: one query load feeds four row accumulators,
// so the query streams from L1 once per block instead of once per row.
void BatchL2SqrAvx2(const float* query, const float* base, size_t n,
                    size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(r0 + d), q);
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(r1 + d), q);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(r2 + d), q);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(r3 + d), q);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      float e0 = r0[d] - q, e1 = r1[d] - q, e2 = r2[d] - q, e3 = r3[d] - q;
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = L2SqrAvx2(query, base + i * dim, dim);
}

void BatchInnerProductAvx2(const float* query, const float* base, size_t n,
                           size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = base + (i + 0) * dim;
    const float* r1 = base + (i + 1) * dim;
    const float* r2 = base + (i + 2) * dim;
    const float* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + d), q, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + d), q, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + d), q, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + d), q, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      s0 += r0[d] * q;
      s1 += r1[d] * q;
      s2 += r2[d] * q;
      s3 += r3[d] * q;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i) out[i] = InnerProductAvx2(query, base + i * dim, dim);
}

/// Dequantizes 8 SQ8 codes into floats: vmin + float(code) * vscale.
inline __m256 DecodeSq8(const uint8_t* code, const float* vmin,
                        const float* vscale) {
  __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code));
  __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
  return _mm256_fmadd_ps(f, _mm256_loadu_ps(vscale), _mm256_loadu_ps(vmin));
}

float Sq8L2SqrAvx2(const float* query, const uint8_t* code, const float* vmin,
                   const float* vscale, size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(query + d),
                                DecodeSq8(code + d, vmin + d, vscale + d));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float sum = Reduce8(acc);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    float diff = query[d] - decoded;
    sum += diff * diff;
  }
  return sum;
}

float Sq8InnerProductAvx2(const float* query, const uint8_t* code,
                          const float* vmin, const float* vscale,
                          size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + d),
                          DecodeSq8(code + d, vmin + d, vscale + d), acc);
  float sum = Reduce8(acc);
  for (; d < dim; ++d)
    sum += query[d] * (vmin[d] + static_cast<float>(code[d]) * vscale[d]);
  return sum;
}

void Sq8DotNormAvx2(const float* query, const uint8_t* code,
                    const float* vmin, const float* vscale, size_t dim,
                    float* dot_out, float* norm_sqr_out) {
  __m256 dot = _mm256_setzero_ps();
  __m256 norm = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    __m256 decoded = DecodeSq8(code + d, vmin + d, vscale + d);
    dot = _mm256_fmadd_ps(_mm256_loadu_ps(query + d), decoded, dot);
    norm = _mm256_fmadd_ps(decoded, decoded, norm);
  }
  float sdot = Reduce8(dot), snorm = Reduce8(norm);
  for (; d < dim; ++d) {
    float decoded = vmin[d] + static_cast<float>(code[d]) * vscale[d];
    sdot += query[d] * decoded;
    snorm += decoded * decoded;
  }
  *dot_out = sdot;
  *norm_sqr_out = snorm;
}

float PqAdcAvx2(const float* table, const uint8_t* code, size_t m,
                size_t ks) {
  __m256 acc = _mm256_setzero_ps();
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i vks = _mm256_set1_epi32(static_cast<int>(ks));
  size_t s = 0;
  for (; s + 8 <= m; s += 8) {
    __m128i c8 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + s));
    __m256i idx = _mm256_cvtepu8_epi32(c8);
    __m256i row = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(s)),
                                   iota);
    idx = _mm256_add_epi32(idx, _mm256_mullo_epi32(row, vks));
    acc = _mm256_add_ps(acc, _mm256_i32gather_ps(table, idx, 4));
  }
  float sum = Reduce8(acc);
  for (; s < m; ++s) sum += table[s * ks + code[s]];
  return sum;
}

void PqAdcBatchAvx2(const float* table, const uint8_t* codes, size_t n,
                    size_t m, size_t ks, float* out) {
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n)
      _mm_prefetch(reinterpret_cast<const char*>(codes + (i + 4) * m),
                   _MM_HINT_T0);
    out[i] = PqAdcAvx2(table, codes + i * m, m, ks);
  }
}

// ---- Reduced-precision kernels ---------------------------------------------
//
// The 16-bit kernels are templated on a loader struct so fp16 (F16C
// vcvtph2ps) and bf16 (zero-extend + shift) share one loop body; the
// instantiations are what lands in the table.

struct Fp16LoadAvx2 {
  static inline __m256 Load8(const uint16_t* p) {
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static inline float Load1(uint16_t v) { return Fp16ToFloat(v); }
};

struct Bf16LoadAvx2 {
  static inline __m256 Load8(const uint16_t* p) {
    __m128i u = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(u), 16));
  }
  static inline float Load1(uint16_t v) { return Bf16ToFloat(v); }
};

template <typename Load>
float HalfL2SqrAvx2(const float* query, const uint16_t* code, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(query + i), Load::Load8(code + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(query + i + 8), Load::Load8(code + i + 8));
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(query + i), Load::Load8(code + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    float d = query[i] - Load::Load1(code[i]);
    acc += d * d;
  }
  return acc;
}

template <typename Load>
float HalfInnerProductAvx2(const float* query, const uint16_t* code,
                           size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), Load::Load8(code + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i + 8),
                           Load::Load8(code + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), Load::Load8(code + i),
                           acc0);
  float acc = Reduce8(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += query[i] * Load::Load1(code[i]);
  return acc;
}

// 4-way register-blocked 16-bit batches; same shape as the fp32 batches but
// the rows stream at half the bandwidth — which is the whole point.
template <typename Load>
void HalfBatchL2SqrAvx2(const float* query, const uint16_t* base, size_t n,
                        size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint16_t* r0 = base + (i + 0) * dim;
    const uint16_t* r1 = base + (i + 1) * dim;
    const uint16_t* r2 = base + (i + 2) * dim;
    const uint16_t* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      __m256 d0 = _mm256_sub_ps(Load::Load8(r0 + d), q);
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      __m256 d1 = _mm256_sub_ps(Load::Load8(r1 + d), q);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      __m256 d2 = _mm256_sub_ps(Load::Load8(r2 + d), q);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      __m256 d3 = _mm256_sub_ps(Load::Load8(r3 + d), q);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      float e0 = Load::Load1(r0[d]) - q, e1 = Load::Load1(r1[d]) - q;
      float e2 = Load::Load1(r2[d]) - q, e3 = Load::Load1(r3[d]) - q;
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i)
    out[i] = HalfL2SqrAvx2<Load>(query, base + i * dim, dim);
}

template <typename Load>
void HalfBatchInnerProductAvx2(const float* query, const uint16_t* base,
                               size_t n, size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint16_t* r0 = base + (i + 0) * dim;
    const uint16_t* r1 = base + (i + 1) * dim;
    const uint16_t* r2 = base + (i + 2) * dim;
    const uint16_t* r3 = base + (i + 3) * dim;
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      __m256 q = _mm256_loadu_ps(query + d);
      a0 = _mm256_fmadd_ps(Load::Load8(r0 + d), q, a0);
      a1 = _mm256_fmadd_ps(Load::Load8(r1 + d), q, a1);
      a2 = _mm256_fmadd_ps(Load::Load8(r2 + d), q, a2);
      a3 = _mm256_fmadd_ps(Load::Load8(r3 + d), q, a3);
    }
    float s0 = Reduce8(a0), s1 = Reduce8(a1), s2 = Reduce8(a2),
          s3 = Reduce8(a3);
    for (; d < dim; ++d) {
      float q = query[d];
      s0 += Load::Load1(r0[d]) * q;
      s1 += Load::Load1(r1[d]) * q;
      s2 += Load::Load1(r2[d]) * q;
      s3 += Load::Load1(r3[d]) * q;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < n; ++i)
    out[i] = HalfInnerProductAvx2<Load>(query, base + i * dim, dim);
}

/// Decodes 8 int8 codes to fp32 (no scale applied).
inline __m256 DecodeI8x8(const int8_t* p) {
  __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
}

float I8AsymL2SqrAvx2(const float* query, const int8_t* code, float scale,
                      size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  const __m256 vs = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(query + i),
                             _mm256_mul_ps(vs, DecodeI8x8(code + i)));
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = Reduce8(acc);
  for (; i < dim; ++i) {
    float d = query[i] - scale * static_cast<float>(code[i]);
    sum += d * d;
  }
  return sum;
}

float I8AsymDotAvx2(const float* query, const int8_t* code, float scale,
                    size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= dim; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), DecodeI8x8(code + i),
                          acc);
  float sum = Reduce8(acc);
  for (; i < dim; ++i) sum += query[i] * static_cast<float>(code[i]);
  return scale * sum;
}

inline int32_t ReduceI32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(lo);
}

// Symmetric int8: sign-extend 16 codes to i16 lanes, then vpmaddwd
// accumulates pairwise products into i32 — the widest integer MAC AVX2 has.
int32_t I8DotAvx2(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  int32_t sum = ReduceI32(acc);
  for (; i < dim; ++i)
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  return sum;
}

int32_t I8L2SqrAvx2(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    __m256i d = _mm256_sub_epi16(a16, b16);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
  }
  int32_t sum = ReduceI32(acc);
  for (; i < dim; ++i) {
    int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += d * d;
  }
  return sum;
}

template <int32_t (*Row)(const int8_t*, const int8_t*, size_t)>
void I8BatchAvx2(const int8_t* query, const int8_t* base, size_t n,
                 size_t dim, int32_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 8 <= n) {
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 4) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(base + (i + 6) * dim),
                   _MM_HINT_T0);
    }
    out[i + 0] = Row(query, base + (i + 0) * dim, dim);
    out[i + 1] = Row(query, base + (i + 1) * dim, dim);
    out[i + 2] = Row(query, base + (i + 2) * dim, dim);
    out[i + 3] = Row(query, base + (i + 3) * dim, dim);
  }
  for (; i < n; ++i) out[i] = Row(query, base + i * dim, dim);
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      .tier = SimdTier::kAvx2,
      .l2sqr = L2SqrAvx2,
      .inner_product = InnerProductAvx2,
      .cosine = CosineAvx2,
      .batch_l2sqr = BatchL2SqrAvx2,
      .batch_inner_product = BatchInnerProductAvx2,
      .sq8_l2sqr = Sq8L2SqrAvx2,
      .sq8_inner_product = Sq8InnerProductAvx2,
      .sq8_dot_norm = Sq8DotNormAvx2,
      .pq_adc = PqAdcAvx2,
      .pq_adc_batch = PqAdcBatchAvx2,
      .fp16_l2sqr = HalfL2SqrAvx2<Fp16LoadAvx2>,
      .fp16_inner_product = HalfInnerProductAvx2<Fp16LoadAvx2>,
      .batch_fp16_l2sqr = HalfBatchL2SqrAvx2<Fp16LoadAvx2>,
      .batch_fp16_inner_product = HalfBatchInnerProductAvx2<Fp16LoadAvx2>,
      .bf16_l2sqr = HalfL2SqrAvx2<Bf16LoadAvx2>,
      .bf16_inner_product = HalfInnerProductAvx2<Bf16LoadAvx2>,
      .batch_bf16_l2sqr = HalfBatchL2SqrAvx2<Bf16LoadAvx2>,
      .batch_bf16_inner_product = HalfBatchInnerProductAvx2<Bf16LoadAvx2>,
      .i8_asym_l2sqr = I8AsymL2SqrAvx2,
      .i8_asym_dot = I8AsymDotAvx2,
      .i8_l2sqr = I8L2SqrAvx2,
      .i8_dot = I8DotAvx2,
      .batch_i8_l2sqr = I8BatchAvx2<I8L2SqrAvx2>,
      .batch_i8_dot = I8BatchAvx2<I8DotAvx2>,
  };
  return table;
}

}  // namespace blendhouse::vecindex::kernels

#endif  // __AVX2__ && __FMA__
