#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "vecindex/index.h"

namespace blendhouse::vecindex {

/// Parsed index definition, e.g. from SQL
/// `INDEX ann_idx embedding TYPE HNSW('DIM=960','M=16')`.
struct IndexSpec {
  std::string type = "HNSW";
  size_t dim = 0;
  Metric metric = Metric::kL2;
  /// Free-form key=value knobs: M, EF_CONSTRUCTION, NLIST, PQ_M, NBITS, ...
  std::map<std::string, std::string> params;

  /// Integer param with default; malformed values fall back to `def`.
  int64_t GetInt(const std::string& key, int64_t def) const;
};

/// Registry of index builders keyed by type name. This is the "pluggable
/// index library" mechanism: built-in types (FLAT, HNSW, HNSWSQ, IVFFLAT,
/// IVFPQ, IVFPQFS) are pre-registered, and new libraries can register
/// themselves without touching the engine.
class IndexFactory {
 public:
  using Builder =
      std::function<common::Result<VectorIndexPtr>(const IndexSpec&)>;

  /// Process-wide factory with the built-in types registered.
  static IndexFactory& Global();

  /// Registers (or replaces) a builder for `type`.
  void Register(const std::string& type, Builder builder);

  bool Has(const std::string& type) const;
  std::vector<std::string> RegisteredTypes() const;

  /// Instantiates an empty index from a spec.
  common::Result<VectorIndexPtr> Create(const IndexSpec& spec) const;

  /// Instantiates and Load()s an index from serialized bytes; the type tag
  /// is peeked from the payload so callers need only the spec's dim/metric.
  common::Result<VectorIndexPtr> CreateFromSaved(const IndexSpec& spec,
                                                 std::string_view bytes) const;

 private:
  IndexFactory();

  std::map<std::string, Builder> builders_;
};

}  // namespace blendhouse::vecindex
