#include "vecindex/distance.h"

#include <cctype>
#include <cmath>

#include "vecindex/scan_counters.h"

namespace blendhouse::vecindex {

std::string MetricName(Metric m) {
  switch (m) {
    case Metric::kL2:
      return "L2";
    case Metric::kInnerProduct:
      return "IP";
    case Metric::kCosine:
      return "Cosine";
  }
  return "?";
}

std::string PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return "FP32";
    case Precision::kFp16:
      return "FP16";
    case Precision::kBf16:
      return "BF16";
    case Precision::kInt8:
      return "INT8";
  }
  return "?";
}

bool ParsePrecision(const std::string& name, Precision* out) {
  std::string up;
  up.reserve(name.size());
  for (char c : name)
    up.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (up == "FP32" || up == "FLOAT32" || up == "FLOAT") {
    *out = Precision::kFp32;
  } else if (up == "FP16" || up == "FLOAT16" || up == "HALF") {
    *out = Precision::kFp16;
  } else if (up == "BF16" || up == "BFLOAT16") {
    *out = Precision::kBf16;
  } else if (up == "INT8" || up == "I8") {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

size_t PrecisionBytes(Precision p) {
  switch (p) {
    case Precision::kFp32:
      return 4;
    case Precision::kFp16:
    case Precision::kBf16:
      return 2;
    case Precision::kInt8:
      return 1;
  }
  return 4;
}

float L2Sqr(const float* a, const float* b, size_t dim) {
  return kernels::Get().l2sqr(a, b, dim);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  return kernels::Get().inner_product(a, b, dim);
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  return kernels::Get().cosine(a, b, dim);
}

float SquaredNorm(const float* v, size_t dim) {
  return kernels::Get().inner_product(v, v, dim);
}

namespace {

// IP similarity is negated into a distance. These wrappers read the active
// table at call time so a resolved pointer follows SetActiveTier without
// re-resolution; the extra indirection is one predicted call.
float NegInnerProduct(const float* a, const float* b, size_t dim) {
  return -kernels::Get().inner_product(a, b, dim);
}

void BatchNegInnerProduct(const float* query, const float* base, size_t n,
                          size_t dim, float* out) {
  kernels::Get().batch_inner_product(query, base, n, dim, out);
  for (size_t i = 0; i < n; ++i) out[i] = -out[i];
}

// Batched full cosine (no precomputed norms): per-row fused kernel with
// prefetch. Used where base norms aren't cached, e.g. centroid ranking.
void BatchCosineFull(const float* query, const float* base, size_t n,
                     size_t dim, float* out) {
  kernels::DistFn cosine = kernels::Get().cosine;
  for (size_t i = 0; i < n; ++i) {
    if (i + 4 < n) kernels::Prefetch(base + (i + 4) * dim);
    out[i] = cosine(query, base + i * dim, dim);
  }
}

}  // namespace

DistanceFn ResolveDistance(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return kernels::Get().l2sqr;
    case Metric::kInnerProduct:
      return NegInnerProduct;
    case Metric::kCosine:
      return kernels::Get().cosine;
  }
  return kernels::Get().l2sqr;
}

BatchDistanceFn ResolveBatchDistance(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return kernels::Get().batch_l2sqr;
    case Metric::kInnerProduct:
      return BatchNegInnerProduct;
    case Metric::kCosine:
      return BatchCosineFull;
  }
  return kernels::Get().batch_l2sqr;
}

float Distance(Metric metric, const float* a, const float* b, size_t dim) {
  scanstats::AddFp32(1);
  return ResolveDistance(metric)(a, b, dim);
}

void BatchDistance(Metric metric, const float* query, const float* base,
                   size_t n, size_t dim, float* out) {
  scanstats::AddFp32(n);
  ResolveBatchDistance(metric)(query, base, n, dim, out);
}

void BatchCosineWithNorms(const float* query, const float* base,
                          const float* base_norms, float query_norm, size_t n,
                          size_t dim, float* out) {
  scanstats::AddFp32(n);
  kernels::Get().batch_inner_product(query, base, n, dim, out);
  for (size_t i = 0; i < n; ++i)
    out[i] = CosineFromDot(out[i], query_norm, base_norms[i]);
}

}  // namespace blendhouse::vecindex
