#include "vecindex/distance.h"

#include <cmath>

namespace blendhouse::vecindex {

std::string MetricName(Metric m) {
  switch (m) {
    case Metric::kL2:
      return "L2";
    case Metric::kInnerProduct:
      return "IP";
    case Metric::kCosine:
      return "Cosine";
  }
  return "?";
}

float L2Sqr(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0f) return 1.0f;
  return 1.0f - dot / denom;
}

float Distance(Metric metric, const float* a, const float* b, size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Sqr(a, b, dim);
    case Metric::kInnerProduct:
      return -InnerProduct(a, b, dim);
    case Metric::kCosine:
      return CosineDistance(a, b, dim);
  }
  return 0.0f;
}

void BatchDistance(Metric metric, const float* query, const float* base,
                   size_t n, size_t dim, float* out) {
  for (size_t i = 0; i < n; ++i)
    out[i] = Distance(metric, query, base + i * dim, dim);
}

}  // namespace blendhouse::vecindex
