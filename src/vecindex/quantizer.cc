#include "vecindex/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vecindex/distance.h"

namespace blendhouse::vecindex {

common::Status ScalarQuantizer::Train(const float* data, size_t n,
                                      size_t dim) {
  if (n == 0 || dim == 0)
    return common::Status::InvalidArgument("sq: empty training set");
  dim_ = dim;
  vmin_.assign(dim, std::numeric_limits<float>::max());
  std::vector<float> vmax(dim, std::numeric_limits<float>::lowest());
  for (size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    for (size_t d = 0; d < dim; ++d) {
      vmin_[d] = std::min(vmin_[d], v[d]);
      vmax[d] = std::max(vmax[d], v[d]);
    }
  }
  vscale_.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    float range = vmax[d] - vmin_[d];
    vscale_[d] = range > 1e-12f ? range / 255.0f : 1e-12f;
  }
  return common::Status::Ok();
}

void ScalarQuantizer::Encode(const float* v, uint8_t* code) const {
  for (size_t d = 0; d < dim_; ++d) {
    float q = (v[d] - vmin_[d]) / vscale_[d];
    q = std::clamp(q, 0.0f, 255.0f);
    code[d] = static_cast<uint8_t>(std::lround(q));
  }
}

void ScalarQuantizer::Decode(const uint8_t* code, float* v) const {
  for (size_t d = 0; d < dim_; ++d)
    v[d] = vmin_[d] + static_cast<float>(code[d]) * vscale_[d];
}

float ScalarQuantizer::L2SqrToCode(const float* query,
                                   const uint8_t* code) const {
  return kernels::Get().sq8_l2sqr(query, code, vmin_.data(), vscale_.data(),
                                  dim_);
}

float ScalarQuantizer::DotToCode(const float* query,
                                 const uint8_t* code) const {
  return kernels::Get().sq8_inner_product(query, code, vmin_.data(),
                                          vscale_.data(), dim_);
}

float ScalarQuantizer::CosineToCode(const float* query, const uint8_t* code,
                                    float query_norm) const {
  float dot = 0.0f, norm_sqr = 0.0f;
  kernels::Get().sq8_dot_norm(query, code, vmin_.data(), vscale_.data(), dim_,
                              &dot, &norm_sqr);
  return CosineFromDot(dot, query_norm, std::sqrt(norm_sqr));
}

void ScalarQuantizer::Serialize(common::BinaryWriter* w) const {
  w->Write<uint64_t>(dim_);
  w->WriteVector(vmin_);
  w->WriteVector(vscale_);
}

common::Status ScalarQuantizer::Deserialize(common::BinaryReader* r) {
  uint64_t dim = 0;
  BH_RETURN_IF_ERROR(r->Read(&dim));
  dim_ = dim;
  BH_RETURN_IF_ERROR(r->ReadVector(&vmin_));
  BH_RETURN_IF_ERROR(r->ReadVector(&vscale_));
  if (vmin_.size() != dim_ || vscale_.size() != dim_)
    return common::Status::Corruption("sq: dim mismatch");
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
