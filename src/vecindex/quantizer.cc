#include "vecindex/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "vecindex/distance.h"
#include "vecindex/scan_counters.h"

namespace blendhouse::vecindex {

common::Status ScalarQuantizer::Train(const float* data, size_t n,
                                      size_t dim) {
  if (n == 0 || dim == 0)
    return common::Status::InvalidArgument("sq: empty training set");
  dim_ = dim;
  vmin_.assign(dim, std::numeric_limits<float>::max());
  std::vector<float> vmax(dim, std::numeric_limits<float>::lowest());
  for (size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    for (size_t d = 0; d < dim; ++d) {
      vmin_[d] = std::min(vmin_[d], v[d]);
      vmax[d] = std::max(vmax[d], v[d]);
    }
  }
  vscale_.resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    float range = vmax[d] - vmin_[d];
    vscale_[d] = range > 1e-12f ? range / 255.0f : 1e-12f;
  }
  return common::Status::Ok();
}

void ScalarQuantizer::Encode(const float* v, uint8_t* code) const {
  for (size_t d = 0; d < dim_; ++d) {
    float q = (v[d] - vmin_[d]) / vscale_[d];
    q = std::clamp(q, 0.0f, 255.0f);
    // Clamp the rounded value too: at the float boundary (and for NaN,
    // which passes through clamp unchanged) lround can land outside
    // [0, 255] and the bare uint8_t cast would wrap.
    code[d] = static_cast<uint8_t>(std::clamp(std::lround(q), 0L, 255L));
  }
}

void ScalarQuantizer::Decode(const uint8_t* code, float* v) const {
  for (size_t d = 0; d < dim_; ++d)
    v[d] = vmin_[d] + static_cast<float>(code[d]) * vscale_[d];
}

float ScalarQuantizer::L2SqrToCode(const float* query,
                                   const uint8_t* code) const {
  return kernels::Get().sq8_l2sqr(query, code, vmin_.data(), vscale_.data(),
                                  dim_);
}

float ScalarQuantizer::DotToCode(const float* query,
                                 const uint8_t* code) const {
  return kernels::Get().sq8_inner_product(query, code, vmin_.data(),
                                          vscale_.data(), dim_);
}

float ScalarQuantizer::CosineToCode(const float* query, const uint8_t* code,
                                    float query_norm) const {
  float dot = 0.0f, norm_sqr = 0.0f;
  kernels::Get().sq8_dot_norm(query, code, vmin_.data(), vscale_.data(), dim_,
                              &dot, &norm_sqr);
  return CosineFromDot(dot, query_norm, std::sqrt(norm_sqr));
}

void ScalarQuantizer::Serialize(common::BinaryWriter* w) const {
  w->Write<uint64_t>(dim_);
  w->WriteVector(vmin_);
  w->WriteVector(vscale_);
}

common::Status ScalarQuantizer::Deserialize(common::BinaryReader* r) {
  uint64_t dim = 0;
  BH_RETURN_IF_ERROR(r->Read(&dim));
  dim_ = dim;
  BH_RETURN_IF_ERROR(r->ReadVector(&vmin_));
  BH_RETURN_IF_ERROR(r->ReadVector(&vscale_));
  if (vmin_.size() != dim_ || vscale_.size() != dim_)
    return common::Status::Corruption("sq: dim mismatch");
  return common::Status::Ok();
}

// ---- PrecisionStore --------------------------------------------------------

void PrecisionStore::Configure(Precision precision, size_t dim,
                               Metric metric) {
  BH_ASSERT_MSG(precision != Precision::kFp32,
                "PrecisionStore only holds reduced formats");
  precision_ = precision;
  metric_ = metric;
  dim_ = dim;
  size_ = 0;
  scale_ = 0.0f;
  half_.clear();
  i8_.clear();
  norms_.clear();
}

bool PrecisionStore::calibrated() const {
  return precision_ != Precision::kInt8 || scale_ > 0.0f;
}

void PrecisionStore::Train(const float* data, size_t n) {
  if (precision_ != Precision::kInt8 || calibrated() || n == 0) return;
  float maxabs = 0.0f;
  for (size_t i = 0; i < n * dim_; ++i) {
    float a = std::fabs(data[i]);
    // NaN compares false and is skipped; a NaN-only sample stays
    // uncalibrated and the next batch trains instead.
    if (a > maxabs && std::isfinite(a)) maxabs = a;
  }
  if (maxabs > 0.0f) scale_ = maxabs / 127.0f;
}

void PrecisionStore::EncodeRow(const float* v, size_t row) {
  switch (precision_) {
    case Precision::kFp16: {
      uint16_t* dst = half_.data() + row * dim_;
      for (size_t d = 0; d < dim_; ++d) dst[d] = kernels::FloatToFp16(v[d]);
      break;
    }
    case Precision::kBf16: {
      uint16_t* dst = half_.data() + row * dim_;
      for (size_t d = 0; d < dim_; ++d) dst[d] = kernels::FloatToBf16(v[d]);
      break;
    }
    case Precision::kInt8: {
      int8_t* dst = i8_.data() + row * dim_;
      float inv = 1.0f / scale_;
      for (size_t d = 0; d < dim_; ++d) {
        float q = v[d] * inv;
        q = std::clamp(q, -127.0f, 127.0f);
        dst[d] = static_cast<int8_t>(
            std::clamp(std::lround(q), -127L, 127L));
      }
      break;
    }
    case Precision::kFp32:
      break;
  }
  if (metric_ == Metric::kCosine) {
    float sq = 0.0f;
    switch (precision_) {
      case Precision::kInt8: {
        const int8_t* c = i8_.data() + row * dim_;
        int64_t acc = 0;
        for (size_t d = 0; d < dim_; ++d)
          acc += static_cast<int32_t>(c[d]) * static_cast<int32_t>(c[d]);
        sq = scale_ * scale_ * static_cast<float>(acc);
        break;
      }
      case Precision::kFp16: {
        const uint16_t* c = half_.data() + row * dim_;
        for (size_t d = 0; d < dim_; ++d) {
          float x = kernels::Fp16ToFloat(c[d]);
          sq += x * x;
        }
        break;
      }
      case Precision::kBf16: {
        const uint16_t* c = half_.data() + row * dim_;
        for (size_t d = 0; d < dim_; ++d) {
          float x = kernels::Bf16ToFloat(c[d]);
          sq += x * x;
        }
        break;
      }
      case Precision::kFp32:
        break;
    }
    norms_[row] = std::sqrt(sq);
  }
}

void PrecisionStore::Append(const float* data, size_t n) {
  if (n == 0) return;
  if (!calibrated()) Train(data, n);
  size_t first = size_;
  size_ += n;
  if (precision_ == Precision::kInt8) {
    i8_.resize(size_ * dim_);
  } else {
    half_.resize(size_ * dim_);
  }
  if (metric_ == Metric::kCosine) norms_.resize(size_);
  for (size_t i = 0; i < n; ++i) EncodeRow(data + i * dim_, first + i);
}

void PrecisionStore::PrepareQuery(const float* query, QueryCtx* ctx) const {
  ctx->query = query;
  ctx->q8.clear();
  ctx->l2_factor = 1.0f;
  ctx->dot_factor = 1.0f;
  ctx->query_norm = metric_ == Metric::kCosine
                        ? std::sqrt(SquaredNorm(query, dim_))
                        : 0.0f;
  if (precision_ != Precision::kInt8) return;
  float qscale = scale_;  // L2 shares the store grid
  if (metric_ != Metric::kL2) {
    float maxabs = 0.0f;
    for (size_t d = 0; d < dim_; ++d) {
      float a = std::fabs(query[d]);
      if (a > maxabs && std::isfinite(a)) maxabs = a;
    }
    qscale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  }
  if (qscale <= 0.0f) qscale = 1.0f;  // uncalibrated store (empty index)
  ctx->q8.resize(dim_);
  float inv = 1.0f / qscale;
  for (size_t d = 0; d < dim_; ++d) {
    float q = std::clamp(query[d] * inv, -127.0f, 127.0f);
    ctx->q8[d] =
        static_cast<int8_t>(std::clamp(std::lround(q), -127L, 127L));
  }
  ctx->l2_factor = scale_ * scale_;
  ctx->dot_factor = qscale * scale_;
}

void PrecisionStore::BatchDistanceCodes(const QueryCtx& ctx,
                                        const void* codes,
                                        const float* norms, size_t n,
                                        float* out) const {
  BH_ASSERT(n <= kMaxBatch);
  scanstats::Add(precision_, n);
  const kernels::KernelTable& kt = kernels::Get();
  if (precision_ == Precision::kInt8) {
    const int8_t* base = static_cast<const int8_t*>(codes);
    int32_t ibuf[kMaxBatch];
    switch (metric_) {
      case Metric::kL2:
        kt.batch_i8_l2sqr(ctx.q8.data(), base, n, dim_, ibuf);
        for (size_t i = 0; i < n; ++i)
          out[i] = ctx.l2_factor * static_cast<float>(ibuf[i]);
        break;
      case Metric::kInnerProduct:
        kt.batch_i8_dot(ctx.q8.data(), base, n, dim_, ibuf);
        for (size_t i = 0; i < n; ++i)
          out[i] = -ctx.dot_factor * static_cast<float>(ibuf[i]);
        break;
      case Metric::kCosine:
        kt.batch_i8_dot(ctx.q8.data(), base, n, dim_, ibuf);
        for (size_t i = 0; i < n; ++i)
          out[i] =
              CosineFromDot(ctx.dot_factor * static_cast<float>(ibuf[i]),
                            ctx.query_norm, norms[i]);
        break;
    }
    return;
  }
  const uint16_t* base = static_cast<const uint16_t*>(codes);
  const bool fp16 = precision_ == Precision::kFp16;
  switch (metric_) {
    case Metric::kL2:
      (fp16 ? kt.batch_fp16_l2sqr : kt.batch_bf16_l2sqr)(ctx.query, base, n,
                                                         dim_, out);
      break;
    case Metric::kInnerProduct:
      (fp16 ? kt.batch_fp16_inner_product
            : kt.batch_bf16_inner_product)(ctx.query, base, n, dim_, out);
      for (size_t i = 0; i < n; ++i) out[i] = -out[i];
      break;
    case Metric::kCosine:
      (fp16 ? kt.batch_fp16_inner_product
            : kt.batch_bf16_inner_product)(ctx.query, base, n, dim_, out);
      for (size_t i = 0; i < n; ++i)
        out[i] = CosineFromDot(out[i], ctx.query_norm, norms[i]);
      break;
  }
}

void PrecisionStore::BatchDistance(const QueryCtx& ctx, size_t first,
                                   size_t n, float* out) const {
  const float* norms =
      metric_ == Metric::kCosine ? norms_.data() + first : nullptr;
  BatchDistanceCodes(ctx, RowPtr(first), norms, n, out);
}

float PrecisionStore::Distance1(const QueryCtx& ctx, size_t row) const {
  scanstats::Add(precision_, 1);
  const kernels::KernelTable& kt = kernels::Get();
  if (precision_ == Precision::kInt8) {
    const int8_t* code = i8_.data() + row * dim_;
    switch (metric_) {
      case Metric::kL2:
        return kt.i8_asym_l2sqr(ctx.query, code, scale_, dim_);
      case Metric::kInnerProduct:
        return -kt.i8_asym_dot(ctx.query, code, scale_, dim_);
      case Metric::kCosine:
        return CosineFromDot(kt.i8_asym_dot(ctx.query, code, scale_, dim_),
                             ctx.query_norm, norms_[row]);
    }
    return 0.0f;
  }
  const uint16_t* code = half_.data() + row * dim_;
  const bool fp16 = precision_ == Precision::kFp16;
  switch (metric_) {
    case Metric::kL2:
      return (fp16 ? kt.fp16_l2sqr : kt.bf16_l2sqr)(ctx.query, code, dim_);
    case Metric::kInnerProduct:
      return -(fp16 ? kt.fp16_inner_product : kt.bf16_inner_product)(
          ctx.query, code, dim_);
    case Metric::kCosine:
      return CosineFromDot(
          (fp16 ? kt.fp16_inner_product : kt.bf16_inner_product)(ctx.query,
                                                                 code, dim_),
          ctx.query_norm, norms_[row]);
  }
  return 0.0f;
}

float PrecisionStore::DistanceToRow(const float* query, size_t row) const {
  QueryCtx ctx;
  ctx.query = query;
  if (metric_ == Metric::kCosine)
    ctx.query_norm = std::sqrt(SquaredNorm(query, dim_));
  return Distance1(ctx, row);
}

const void* PrecisionStore::RowPtr(size_t row) const {
  if (precision_ == Precision::kInt8) return i8_.data() + row * dim_;
  return half_.data() + row * dim_;
}

void PrecisionStore::Decode(size_t row, float* out) const {
  switch (precision_) {
    case Precision::kFp16: {
      const uint16_t* c = half_.data() + row * dim_;
      for (size_t d = 0; d < dim_; ++d) out[d] = kernels::Fp16ToFloat(c[d]);
      break;
    }
    case Precision::kBf16: {
      const uint16_t* c = half_.data() + row * dim_;
      for (size_t d = 0; d < dim_; ++d) out[d] = kernels::Bf16ToFloat(c[d]);
      break;
    }
    case Precision::kInt8: {
      const int8_t* c = i8_.data() + row * dim_;
      for (size_t d = 0; d < dim_; ++d)
        out[d] = scale_ * static_cast<float>(c[d]);
      break;
    }
    case Precision::kFp32:
      break;
  }
}

size_t PrecisionStore::MemoryBytes() const {
  return half_.capacity() * sizeof(uint16_t) + i8_.capacity() +
         norms_.capacity() * sizeof(float);
}

void PrecisionStore::Serialize(common::BinaryWriter* w) const {
  w->Write<uint8_t>(static_cast<uint8_t>(precision_));
  w->Write<uint8_t>(static_cast<uint8_t>(metric_));
  w->Write<uint64_t>(dim_);
  w->Write<uint64_t>(size_);
  w->Write<float>(scale_);
  w->WriteVector(half_);
  w->WriteVector(i8_);
  w->WriteVector(norms_);
}

common::Status PrecisionStore::Deserialize(common::BinaryReader* r) {
  uint8_t precision = 0, metric = 0;
  uint64_t dim = 0, size = 0;
  BH_RETURN_IF_ERROR(r->Read(&precision));
  BH_RETURN_IF_ERROR(r->Read(&metric));
  BH_RETURN_IF_ERROR(r->Read(&dim));
  BH_RETURN_IF_ERROR(r->Read(&size));
  BH_RETURN_IF_ERROR(r->Read(&scale_));
  if (precision > static_cast<uint8_t>(Precision::kInt8) ||
      precision == static_cast<uint8_t>(Precision::kFp32))
    return common::Status::Corruption("precision store: bad precision tag");
  precision_ = static_cast<Precision>(precision);
  metric_ = static_cast<Metric>(metric);
  dim_ = dim;
  size_ = size;
  BH_RETURN_IF_ERROR(r->ReadVector(&half_));
  BH_RETURN_IF_ERROR(r->ReadVector(&i8_));
  BH_RETURN_IF_ERROR(r->ReadVector(&norms_));
  size_t codes = precision_ == Precision::kInt8 ? i8_.size() : half_.size();
  if (codes != size_ * dim_)
    return common::Status::Corruption("precision store: code size mismatch");
  if (metric_ == Metric::kCosine && norms_.size() != size_)
    return common::Status::Corruption("precision store: norm size mismatch");
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
