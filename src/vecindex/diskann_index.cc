#include "vecindex/diskann_index.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <random>
#include <unordered_set>

#include "common/assert.h"
#include "common/io.h"
#include "common/task_scheduler.h"
#include "vecindex/distance.h"
#include "vecindex/scan_counters.h"

namespace blendhouse::vecindex {

DiskAnnIndex::DiskAnnIndex(size_t dim, Metric metric, DiskAnnOptions options)
    : dim_(dim),
      metric_(metric),
      options_(options),
      dist_(ResolveDistance(metric)),
      block_cache_(options.cached_nodes *
                   (dim * sizeof(float) + options.R * sizeof(uint32_t) + 64)) {}

size_t DiskAnnIndex::MemoryUsage() const {
  return pq_codes_.size() + pq_.MemoryUsage() +
         ids_.size() * sizeof(IdType) + block_cache_.used_bytes();
}

common::Status DiskAnnIndex::Train(const float* data, size_t n) {
  size_t m = options_.pq_m;
  if (dim_ % m != 0) {
    // Fall back to the largest divisor <= 16 so any dim trains.
    m = 1;
    for (size_t c = 2; c <= 16; ++c)
      if (dim_ % c == 0) m = c;
  }
  return pq_.Train(data, n, dim_, m, /*nbits=*/8, options_.seed);
}

float DiskAnnIndex::ExactDistance(const float* query, uint32_t pos) const {
  NodeBlockPtr block = ReadBlock(pos);
  scanstats::AddFp32(1);
  return dist_(query, block->vector.data(), dim_);
}

DiskAnnIndex::NodeBlockPtr DiskAnnIndex::ReadBlock(uint32_t pos) const {
  std::string key = std::to_string(pos);
  if (auto hit = block_cache_.Get(key)) return *hit;

  const std::string& bytes = disk_blocks_[pos];
  if (options_.simulate_disk_latency) {
    int64_t micros =
        options_.disk_latency_micros +
        static_cast<int64_t>(static_cast<double>(bytes.size()) /
                             options_.disk_bytes_per_micro);
    if (micros > 0) common::ChargeSimLatency(static_cast<uint64_t>(micros));
  }
  disk_reads_.fetch_add(1, std::memory_order_relaxed);

  auto block = std::make_shared<NodeBlock>();
  common::BinaryReader r(bytes);
  // Blocks are written by Seal(); corruption here is a programming error,
  // but fail soft with an empty block rather than crash.
  if (!r.ReadVector(&block->vector).ok() ||
      !r.ReadVector(&block->neighbors).ok()) {
    block->vector.assign(dim_, 0.0f);
    block->neighbors.clear();
  }
  block_cache_.Put(key, block,
                   block->vector.size() * sizeof(float) +
                       block->neighbors.size() * sizeof(uint32_t) + 64);
  return block;
}

// ---------------------------------------------------------------------------
// Build (Vamana)
// ---------------------------------------------------------------------------

namespace {
/// Insert into a bounded candidate list sorted by distance; returns false
/// when the candidate was already present or too far to fit. When `spill`
/// is non-null, candidates the bound rejects or evicts are appended to it
/// instead of being forgotten — the resumable iterator re-admits them when
/// it widens the beam, so nothing the one-shot search would have discarded
/// is lost. Passing nullptr leaves the classic semantics untouched.
bool InsertBounded(std::vector<Neighbor>* list, Neighbor n, size_t bound,
                   std::vector<Neighbor>* spill = nullptr) {
  auto it = std::lower_bound(list->begin(), list->end(), n);
  for (auto probe = it; probe != list->end() && probe->distance == n.distance;
       ++probe)
    if (probe->id == n.id) return false;
  for (const Neighbor& existing : *list)
    if (existing.id == n.id) return false;
  if (list->size() >= bound && it == list->end()) {
    if (spill != nullptr) spill->push_back(n);
    return false;
  }
  list->insert(it, n);
  if (list->size() > bound) {
    if (spill != nullptr) spill->push_back(list->back());
    list->pop_back();
  }
  return true;
}
}  // namespace

std::vector<uint32_t> DiskAnnIndex::RobustPrune(
    uint32_t node, std::vector<Neighbor> candidates) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint32_t> selected;
  const float* base = build_vectors_.data();
  while (!candidates.empty() && selected.size() < options_.R) {
    Neighbor closest = candidates.front();
    uint32_t c = static_cast<uint32_t>(closest.id);
    if (c != node) selected.push_back(c);
    // Drop candidates dominated by c: alpha * d(c, c') <= d(node, c').
    std::vector<Neighbor> kept;
    kept.reserve(candidates.size());
    for (size_t i = 1; i < candidates.size(); ++i) {
      uint32_t other = static_cast<uint32_t>(candidates[i].id);
      float d_c_other = dist_(base + size_t{c} * dim_,
                              base + size_t{other} * dim_, dim_);
      if (options_.alpha * d_c_other <= candidates[i].distance) continue;
      kept.push_back(candidates[i]);
    }
    candidates = std::move(kept);
  }
  return selected;
}

common::Status DiskAnnIndex::Seal() {
  // Freeze the build graph into per-node disk blocks and drop the raw data.
  disk_blocks_.clear();
  disk_blocks_.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    std::string bytes;
    common::BinaryWriter w(&bytes);
    w.WriteVector(std::vector<float>(
        build_vectors_.begin() + i * dim_,
        build_vectors_.begin() + (i + 1) * dim_));
    w.WriteVector(build_graph_[i]);
    disk_blocks_.push_back(std::move(bytes));
  }
  build_vectors_.clear();
  build_vectors_.shrink_to_fit();
  build_graph_.clear();
  build_graph_.shrink_to_fit();
  block_cache_.Clear();
  sealed_ = true;
  return common::Status::Ok();
}

common::Status DiskAnnIndex::AddWithIds(const float* data, const IdType* ids,
                                        size_t n) {
  if (n == 0) return common::Status::Ok();
  if (sealed_)
    return common::Status::NotSupported(
        "diskann: segments are immutable once sealed");
  if (!pq_.trained()) BH_RETURN_IF_ERROR(Train(data, n));

  ids_.assign(ids, ids + n);
  build_vectors_.assign(data, data + n * dim_);
  pq_codes_.resize(n * pq_.code_size());
  for (size_t i = 0; i < n; ++i)
    pq_.Encode(data + i * dim_, pq_codes_.data() + i * pq_.code_size());

  // Medoid: point nearest the dataset mean.
  std::vector<double> mean(dim_, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t d = 0; d < dim_; ++d) mean[d] += data[i * dim_ + d];
  std::vector<float> meanf(dim_);
  for (size_t d = 0; d < dim_; ++d)
    meanf[d] = static_cast<float>(mean[d] / static_cast<double>(n));
  float best = std::numeric_limits<float>::max();
  constexpr size_t kChunk = 256;
  float chunk_dist[kChunk];
  for (size_t begin = 0; begin < n; begin += kChunk) {
    size_t cn = std::min(kChunk, n - begin);
    BatchDistance(Metric::kL2, meanf.data(), data + begin * dim_, cn, dim_,
                  chunk_dist);
    for (size_t i = 0; i < cn; ++i) {
      if (chunk_dist[i] < best) {
        best = chunk_dist[i];
        medoid_ = static_cast<uint32_t>(begin + i);
      }
    }
  }

  // Random initial graph.
  std::mt19937_64 gen(options_.seed);
  std::uniform_int_distribution<uint32_t> pick(0,
                                               static_cast<uint32_t>(n - 1));
  build_graph_.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    std::unordered_set<uint32_t> chosen;
    size_t degree = std::min(options_.R, n - 1);
    while (chosen.size() < degree) {
      uint32_t c = pick(gen);
      if (c != i) chosen.insert(c);
    }
    build_graph_[i].assign(chosen.begin(), chosen.end());
  }

  // Vamana pass: greedy-search each point from the medoid, robust-prune the
  // visited set into its out-edges, and back-link with degree repair.
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::shuffle(order.begin(), order.end(), gen);

  for (uint32_t node : order) {
    const float* query = data + size_t{node} * dim_;
    // In-memory greedy beam search over the build graph (exact distances).
    std::vector<Neighbor> beam;
    std::unordered_set<uint32_t> visited;
    std::vector<Neighbor> visited_list;
    InsertBounded(&beam,
                  {static_cast<IdType>(medoid_),
                   dist_(query, data + size_t{medoid_} * dim_, dim_)},
                  options_.L_build);
    visited.insert(medoid_);
    size_t cursor = 0;
    std::unordered_set<uint32_t> expanded;
    while (cursor < beam.size()) {
      // Closest unexpanded beam entry.
      size_t pick_idx = beam.size();
      for (size_t i = 0; i < beam.size(); ++i) {
        if (expanded.count(static_cast<uint32_t>(beam[i].id)) == 0) {
          pick_idx = i;
          break;
        }
      }
      if (pick_idx == beam.size()) break;
      uint32_t cur = static_cast<uint32_t>(beam[pick_idx].id);
      expanded.insert(cur);
      visited_list.push_back(beam[pick_idx]);
      // Prefetch the whole neighborhood before the distance loop; beam
      // expansion touches rows in graph order, not memory order.
      for (uint32_t nb : build_graph_[cur])
        kernels::Prefetch(data + size_t{nb} * dim_);
      for (uint32_t nb : build_graph_[cur]) {
        if (!visited.insert(nb).second) continue;
        InsertBounded(&beam,
                      {static_cast<IdType>(nb),
                       dist_(query, data + size_t{nb} * dim_, dim_)},
                      options_.L_build);
      }
    }

    build_graph_[node] = RobustPrune(node, visited_list);
    for (uint32_t nb : build_graph_[node]) {
      std::vector<uint32_t>& back = build_graph_[nb];
      if (std::find(back.begin(), back.end(), node) != back.end()) continue;
      back.push_back(node);
      if (back.size() > options_.R) {
        const float* nb_vec = data + size_t{nb} * dim_;
        std::vector<Neighbor> cands;
        cands.reserve(back.size());
        for (uint32_t c : back)
          cands.push_back({static_cast<IdType>(c),
                           dist_(nb_vec, data + size_t{c} * dim_, dim_)});
        build_graph_[nb] = RobustPrune(nb, std::move(cands));
      }
    }
  }

  return Seal();
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

common::Result<std::vector<Neighbor>> DiskAnnIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("diskann: k must be positive");
  if (!sealed_ || ids_.empty()) return std::vector<Neighbor>{};

  size_t k = static_cast<size_t>(params.k);
  size_t beam_width =
      std::max<size_t>(static_cast<size_t>(params.ef_search), k);
  if (params.filter != nullptr) beam_width = std::max(beam_width * 2, k * 4);

  // PQ-guided beam search; expanded nodes get exact distances from their
  // disk blocks (the DiskANN navigation scheme).
  std::vector<float> adc(pq_.m() * pq_.ks());
  pq_.BuildAdcTable(query, adc.data());
  auto approx = [&](uint32_t pos) {
    return pq_.AdcDistance(adc.data(),
                           pq_codes_.data() + size_t{pos} * pq_.code_size());
  };

  std::vector<Neighbor> beam;  // ordered by approx distance
  std::unordered_set<uint32_t> seen{medoid_};
  std::unordered_set<uint32_t> expanded;
  std::vector<Neighbor> exact;  // expanded nodes with exact distances
  InsertBounded(&beam, {static_cast<IdType>(medoid_), approx(medoid_)},
                beam_width);
  for (;;) {
    size_t pick_idx = beam.size();
    for (size_t i = 0; i < beam.size(); ++i) {
      if (expanded.count(static_cast<uint32_t>(beam[i].id)) == 0) {
        pick_idx = i;
        break;
      }
    }
    if (pick_idx == beam.size()) break;
    uint32_t cur = static_cast<uint32_t>(beam[pick_idx].id);
    expanded.insert(cur);
    NodeBlockPtr block = ReadBlock(cur);
    scanstats::AddFp32(1);
    exact.push_back({static_cast<IdType>(cur),
                     dist_(query, block->vector.data(), dim_)});
    // Re-rank expansion walks PQ codes in graph order; prefetch them.
    for (uint32_t nb : block->neighbors)
      kernels::Prefetch(pq_codes_.data() + size_t{nb} * pq_.code_size());
    for (uint32_t nb : block->neighbors) {
      if (!seen.insert(nb).second) continue;
      InsertBounded(&beam, {static_cast<IdType>(nb), approx(nb)}, beam_width);
    }
  }

  std::sort(exact.begin(), exact.end());
  std::vector<Neighbor> out;
  out.reserve(k);
  for (const Neighbor& n : exact) {
    IdType ext = ids_[static_cast<uint32_t>(n.id)];
    if (params.filter != nullptr &&
        !params.filter->Test(static_cast<size_t>(ext)))
      continue;
    out.push_back({ext, n.distance});
    if (out.size() >= k) break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Resumable iterator
// ---------------------------------------------------------------------------

/// Native resumable iterator over the Vamana graph.
///
/// The first Next() runs exactly the one-shot bounded beam search (same
/// InsertBounded semantics, same expansion order), so the first k served
/// neighbors match SearchWithFilter bit-for-bit. What the one-shot search
/// throws away — candidates the bounded beam rejected or evicted — is
/// captured in a spill list. When the caller drains everything phase one
/// expanded, the iterator doubles the beam width, re-admits the spill, and
/// resumes expansion with the seen/expanded sets intact: deeper batches
/// never re-walk the graph from the medoid or re-pay SSD reads for blocks
/// already expanded.
class DiskAnnSearchIterator : public SearchIterator {
 public:
  DiskAnnSearchIterator(const DiskAnnIndex* index, const float* query,
                        SearchParams params)
      : index_(index),
        query_(query, query + index->Dim()),
        params_(params) {
    if (!index_->sealed_ || index_->ids_.empty()) {
      started_ = true;
      exhausted_ = true;
    }
  }

  std::vector<Neighbor> Next(size_t batch_size) override {
    std::vector<Neighbor> out;
    if (exhausted_ && cursor_ >= ready_.size()) return out;
    out.reserve(batch_size);
    while (out.size() < batch_size) {
      if (cursor_ >= ready_.size()) {
        if (!Advance()) break;
        continue;
      }
      const Neighbor& n = ready_[cursor_++];
      IdType ext = index_->ids_[static_cast<uint32_t>(n.id)];
      if (params_.filter != nullptr &&
          !params_.filter->Test(static_cast<size_t>(ext)))
        continue;
      out.push_back({ext, n.distance});
    }
    // A beam widening mid-batch may surface nodes closer than ones already
    // taken; re-sort so the batch honors the sorted-batch contract.
    std::sort(out.begin(), out.end());
    BH_DCHECK(IsSortedBatch(out));
    if (!out.empty()) ++stats_.batches;
    return out;
  }

  size_t VisitedCount() const override { return stats_.rows_visited; }
  Stats GetStats() const override { return stats_; }

 private:
  float Approx(uint32_t pos) const {
    return index_->pq_.AdcDistance(
        adc_.data(),
        index_->pq_codes_.data() + size_t{pos} * index_->pq_.code_size());
  }

  /// Makes more expanded nodes servable. False only when the whole graph
  /// reachable from the medoid has been expanded and served.
  bool Advance() {
    if (!started_) {
      started_ = true;
      size_t k = params_.k > 0 ? static_cast<size_t>(params_.k) : 1;
      beam_width_ =
          std::max<size_t>(static_cast<size_t>(params_.ef_search), k);
      if (params_.filter != nullptr)
        beam_width_ = std::max(beam_width_ * 2, k * 4);
      adc_.resize(index_->pq_.m() * index_->pq_.ks());
      index_->pq_.BuildAdcTable(query_.data(), adc_.data());
      seen_.insert(index_->medoid_);
      InsertBounded(&beam_,
                    {static_cast<IdType>(index_->medoid_),
                     Approx(index_->medoid_)},
                    beam_width_, &spill_);
      RunBeam();
      return cursor_ < ready_.size();
    }
    for (;;) {
      if (spill_.empty()) {
        exhausted_ = true;
        return false;
      }
      Widen();
      RunBeam();
      if (cursor_ < ready_.size()) return true;
    }
  }

  /// Expands beam entries (closest-unexpanded-first, identical to the
  /// one-shot loop) until none remain, then merges the newly expanded
  /// nodes' exact distances into the sorted unserved window.
  void RunBeam() {
    std::vector<Neighbor> fresh;
    for (;;) {
      size_t pick_idx = beam_.size();
      for (size_t i = 0; i < beam_.size(); ++i) {
        if (expanded_.count(static_cast<uint32_t>(beam_[i].id)) == 0) {
          pick_idx = i;
          break;
        }
      }
      if (pick_idx == beam_.size()) break;
      uint32_t cur = static_cast<uint32_t>(beam_[pick_idx].id);
      expanded_.insert(cur);
      DiskAnnIndex::NodeBlockPtr block = index_->ReadBlock(cur);
      scanstats::AddFp32(1);
      fresh.push_back(
          {static_cast<IdType>(cur),
           index_->dist_(query_.data(), block->vector.data(), index_->dim_)});
      for (uint32_t nb : block->neighbors)
        kernels::Prefetch(index_->pq_codes_.data() +
                          size_t{nb} * index_->pq_.code_size());
      for (uint32_t nb : block->neighbors) {
        if (!seen_.insert(nb).second) continue;
        InsertBounded(&beam_, {static_cast<IdType>(nb), Approx(nb)},
                      beam_width_, &spill_);
      }
    }
    if (fresh.empty()) return;
    stats_.rows_visited += fresh.size();
    std::sort(fresh.begin(), fresh.end());
    ready_.erase(ready_.begin(), ready_.begin() + static_cast<ptrdiff_t>(cursor_));
    cursor_ = 0;
    size_t old = ready_.size();
    ready_.insert(ready_.end(), fresh.begin(), fresh.end());
    std::inplace_merge(ready_.begin(),
                       ready_.begin() + static_cast<ptrdiff_t>(old),
                       ready_.end());
  }

  /// Doubles the beam bound and re-admits spilled candidates (closest
  /// first). Re-spill shrinks every round because the bound doubles, so the
  /// spill provably drains once the bound reaches the index size.
  void Widen() {
    beam_width_ = std::min(beam_width_ * 2,
                           std::max<size_t>(index_->Size(), beam_width_));
    std::vector<Neighbor> pending = std::move(spill_);
    spill_.clear();
    std::sort(pending.begin(), pending.end());
    for (const Neighbor& n : pending) {
      if (expanded_.count(static_cast<uint32_t>(n.id)) != 0) continue;
      InsertBounded(&beam_, n, beam_width_, &spill_);
    }
  }

  const DiskAnnIndex* index_;
  std::vector<float> query_;
  SearchParams params_;
  std::vector<float> adc_;
  std::vector<Neighbor> beam_;  // ordered by approx distance
  std::unordered_set<uint32_t> seen_;
  std::unordered_set<uint32_t> expanded_;
  /// Candidates the bounded beam rejected/evicted; the resume frontier.
  std::vector<Neighbor> spill_;
  /// Expanded nodes with exact distances, sorted; [cursor_, end) unserved.
  std::vector<Neighbor> ready_;
  size_t cursor_ = 0;
  size_t beam_width_ = 0;
  bool started_ = false;
  bool exhausted_ = false;
  Stats stats_;
};

common::Result<std::unique_ptr<SearchIterator>> DiskAnnIndex::MakeIterator(
    const float* query, const SearchParams& params) const {
  return std::unique_ptr<SearchIterator>(
      std::make_unique<DiskAnnSearchIterator>(this, query, params));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

common::Status DiskAnnIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.Write<uint64_t>(options_.R);
  w.Write<uint64_t>(options_.L_build);
  w.Write<float>(options_.alpha);
  w.Write<uint64_t>(options_.pq_m);
  w.Write<uint32_t>(medoid_);
  w.WriteVector(ids_);
  pq_.Serialize(&w);
  w.WriteVector(pq_codes_);
  w.Write<uint64_t>(disk_blocks_.size());
  for (const std::string& block : disk_blocks_) w.WriteString(block);
  return common::Status::Ok();
}

common::Status DiskAnnIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  if (type != Type()) return common::Status::Corruption("diskann: wrong type");
  uint64_t dim = 0, big_r = 0, l_build = 0, pq_m = 0;
  uint32_t metric = 0;
  float alpha = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  BH_RETURN_IF_ERROR(r.Read(&big_r));
  BH_RETURN_IF_ERROR(r.Read(&l_build));
  BH_RETURN_IF_ERROR(r.Read(&alpha));
  BH_RETURN_IF_ERROR(r.Read(&pq_m));
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  dist_ = ResolveDistance(metric_);
  options_.R = big_r;
  options_.L_build = l_build;
  options_.alpha = alpha;
  options_.pq_m = pq_m;
  BH_RETURN_IF_ERROR(r.Read(&medoid_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  BH_RETURN_IF_ERROR(pq_.Deserialize(&r));
  BH_RETURN_IF_ERROR(r.ReadVector(&pq_codes_));
  uint64_t num_blocks = 0;
  BH_RETURN_IF_ERROR(r.Read(&num_blocks));
  if (num_blocks != ids_.size())
    return common::Status::Corruption("diskann: block count mismatch");
  disk_blocks_.assign(num_blocks, {});
  for (std::string& block : disk_blocks_)
    BH_RETURN_IF_ERROR(r.ReadString(&block));
  block_cache_.Clear();
  sealed_ = true;
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
