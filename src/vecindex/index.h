#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "vecindex/types.h"

namespace blendhouse::vecindex {

/// Incremental search handle returned by VectorIndex::MakeIterator.
///
/// This is the paper's `SearchIterator` execution interface: each Next() call
/// yields the next batch of closest not-yet-returned neighbors, letting the
/// post-filter strategy refill results across rounds without restarting the
/// search from scratch (§III-B "Post-filter strategy").
class SearchIterator {
 public:
  virtual ~SearchIterator() = default;

  /// Honest per-iterator cost accounting, reported by both native and
  /// generic iterators (no beam-size guesses).
  struct Stats {
    /// Rows whose distance this iterator actually materialized. Restart
    /// iterators re-pay rows on every recompute round, so this counts the
    /// redundant work resumable iterators avoid.
    size_t rows_visited = 0;
    /// Next() calls that returned at least one neighbor.
    size_t batches = 0;
    /// From-scratch searches of the underlying index. 0 for native
    /// resumable iterators; >=1 for the generic restart wrapper.
    size_t recompute_rounds = 0;
  };

  /// Returns up to `batch_size` next-closest neighbors, never repeating an
  /// id. Empty result means the index is exhausted.
  ///
  /// Sorted-batch contract: every returned batch is internally sorted by
  /// nondecreasing (distance, id) — batch.back() is the worst hit *in that
  /// batch*. Consumers depend on this for range early-exit (stop once
  /// batch.back().distance exceeds the radius, src/sql/executor.cc) and for
  /// pagination. Across batches distances are only roughly increasing:
  /// approximate indexes may settle a closer node after a farther one was
  /// already yielded.
  virtual std::vector<Neighbor> Next(size_t batch_size) = 0;

  /// Total candidates visited so far — feeds the beta term of cost Eq. (3).
  /// Equals GetStats().rows_visited.
  virtual size_t VisitedCount() const = 0;

  /// Cost accounting snapshot; cheap enough to call per batch.
  virtual Stats GetStats() const { return {VisitedCount(), 0, 0}; }
};

/// Checks the sorted-batch contract on one batch: nondecreasing distance
/// (equal-distance neighbors may appear in any order — graph indexes map
/// internal positions to external ids, which need not preserve id order).
/// Iterator implementations BH_DCHECK this; the executor's range early-exit
/// is unsound without it.
inline bool IsSortedBatch(const std::vector<Neighbor>& batch) {
  for (size_t i = 1; i < batch.size(); ++i)
    if (batch[i].distance < batch[i - 1].distance) return false;
  return true;
}

/// The paper's virtual vector index abstraction (Fig. 5).
///
/// Storage layer: Train / AddWithIds / Save / Load.
/// Execution layer: SearchWithFilter / SearchWithRange / MakeIterator.
/// Concrete libraries (our from-scratch HNSW, IVF, PQ families standing in
/// for hnswlib/faiss/diskann) plug in behind this interface via
/// IndexFactory, which is what makes BlendHouse's index support pluggable.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Registry key, e.g. "HNSW", "IVFFLAT", "IVFPQFS".
  virtual std::string Type() const = 0;
  virtual size_t Dim() const = 0;
  virtual Metric GetMetric() const = 0;
  /// Storage precision of the first-pass distance tier (DESIGN.md §13).
  /// kFp32 means exact storage; anything else tells the executor this
  /// index's distances are approximate and survivors should be reranked
  /// in fp32 from the vector column.
  virtual Precision StoragePrecision() const { return Precision::kFp32; }
  /// Number of indexed vectors.
  virtual size_t Size() const = 0;
  /// Resident bytes of the index structure (Table VI).
  virtual size_t MemoryUsage() const = 0;

  // ---- Storage layer -------------------------------------------------------

  /// Learns data-dependent structures (k-means for IVF, codebooks for PQ).
  /// Graph indexes are training-free and return OK immediately.
  virtual common::Status Train(const float* data, size_t n) = 0;
  virtual bool NeedsTraining() const { return false; }

  /// Adds `n` vectors with caller-provided row offsets.
  virtual common::Status AddWithIds(const float* data, const IdType* ids,
                                    size_t n) = 0;

  /// Serializes the index to `out` for persistence in the object store.
  virtual common::Status Save(std::string* out) const = 0;
  /// Restores the index from bytes produced by Save().
  virtual common::Status Load(std::string_view in) = 0;

  // ---- Execution layer -----------------------------------------------------

  /// Top-k search honoring params.filter (the pre-filter bitmap). The
  /// returned neighbors are sorted by increasing distance.
  virtual common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const = 0;

  /// All vectors within `radius` of `query` (post-filtered by params.filter),
  /// sorted by distance. Default: delegate to the iterator and stop once
  /// distances exceed the radius.
  virtual common::Result<std::vector<Neighbor>> SearchWithRange(
      const float* query, float radius, const SearchParams& params) const;

  /// Incremental search. Indexes without a native resumable search fall back
  /// to GenericSearchIterator (restart with doubled k), mirroring the paper's
  /// generic-iterator wrapper for libraries without Next().
  virtual common::Result<std::unique_ptr<SearchIterator>> MakeIterator(
      const float* query, const SearchParams& params) const;

  /// True when MakeIterator is backed by a resumable native traversal rather
  /// than restart-with-larger-k.
  virtual bool HasNativeIterator() const { return false; }
};

using VectorIndexPtr = std::unique_ptr<VectorIndex>;

}  // namespace blendhouse::vecindex
