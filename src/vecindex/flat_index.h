#pragma once

#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/bitset.h"
#include "vecindex/distance.h"
#include "vecindex/index.h"
#include "vecindex/quantizer.h"

namespace blendhouse::vecindex {

/// Exact brute-force index. This is both the "FLAT" user-facing index type
/// and the fallback BlendHouse uses on a vector-index cache miss (Fig. 11)
/// and in cost-model Plan A.
///
/// Scans run through the batched SIMD kernels (chunked one-query-vs-many)
/// when unfiltered; vector storage is 64-byte aligned, and for Cosine the
/// stored vectors' norms are precomputed at insert so queries only pay for
/// a dot product per row.
///
/// With a reduced `precision` (DESIGN.md §13) the raw floats are never
/// kept: rows live only as packed fp16/bf16/int8 codes in a
/// PrecisionStore, every scan path runs the batched reduced-precision
/// kernels over the codes, and the executor reranks survivors in fp32
/// from the segment's vector column.
class FlatIndex : public VectorIndex {
 public:
  FlatIndex(size_t dim, Metric metric,
            Precision precision = Precision::kFp32)
      : dim_(dim),
        metric_(metric),
        precision_(precision),
        dist_(ResolveDistance(metric)) {
    if (quantized()) store_.Configure(precision, dim, metric);
  }

  std::string Type() const override { return "FLAT"; }
  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  Precision StoragePrecision() const override { return precision_; }
  size_t Size() const override { return ids_.size(); }
  size_t MemoryUsage() const override {
    return data_.size() * sizeof(float) + ids_.size() * sizeof(IdType) +
           norms_.size() * sizeof(float) +
           (quantized() ? store_.MemoryBytes() : 0);
  }

  common::Status Train(const float* data, size_t n) override;
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;
  common::Result<std::vector<Neighbor>> SearchWithRange(
      const float* query, float radius,
      const SearchParams& params) const override;

  /// Native resumable iterator (FlatBatchIterator): all distances are
  /// computed exactly once on the first Next(), deeper batches are
  /// incremental heap-selection over the cached score array.
  common::Result<std::unique_ptr<SearchIterator>> MakeIterator(
      const float* query, const SearchParams& params) const override;
  bool HasNativeIterator() const override { return true; }

  /// Raw vector for row offset lookup (used by PQ refinement and tests).
  /// Valid only at fp32 precision — quantized builds keep no raw floats.
  const float* VectorAt(size_t pos) const { return data_.data() + pos * dim_; }
  const std::vector<IdType>& ids() const { return ids_; }

 private:
  friend class FlatBatchIterator;

  bool quantized() const { return precision_ != Precision::kFp32; }

  /// One full pass over the index for the batch iterator: every surviving
  /// row's (id, distance) is appended to `out`, through the same three scan
  /// paths as SearchWithFilter (unfiltered chunked kernels, filter-compacted
  /// tiles, remapped-id per-row fallback).
  void ComputeAllDistances(const PrecisionStore::QueryCtx& ctx,
                           const common::Bitset* filter,
                           std::vector<Neighbor>* out) const;

  /// Per-query scan state shared by both storage forms: fp32 scans read
  /// query/query_norm, quantized scans carry the prepared int8 query too.
  PrecisionStore::QueryCtx MakeQueryCtx(const float* query) const;

  /// Distances from the prepared query to rows [begin, begin+n) into
  /// out[0..n).
  void ScanChunk(const PrecisionStore::QueryCtx& ctx, size_t begin, size_t n,
                 float* out) const;

  /// Filter-aware scan (valid only when ids_are_offsets_): walks the
  /// filter's set bits, compacts surviving positions into kScanChunk tiles,
  /// and feeds the batched kernels — contiguous runs scan in place,
  /// scattered survivors are gathered into a dense scratch tile. Calls
  /// `emit(id, distance)` per survivor. Defined in the .cc (only used
  /// there).
  template <typename Emit>
  void ScanFiltered(const PrecisionStore::QueryCtx& ctx,
                    const common::Bitset& filter, Emit&& emit) const;

  size_t dim_;
  Metric metric_;
  Precision precision_;
  DistanceFn dist_;  // resolved once; re-resolved on Load
  /// Packed codes when precision_ != kFp32; data_/norms_ stay empty then.
  PrecisionStore store_;
  common::AlignedVector<float> data_;
  std::vector<IdType> ids_;
  /// Euclidean magnitude of each stored row; maintained only for Cosine.
  std::vector<float> norms_;
  /// True while ids_[i] == i for all rows (the executor's row-offset
  /// convention). Filter bitmaps index row ids, so identity ids let the
  /// filtered scan address storage positions directly from set bits.
  bool ids_are_offsets_ = true;
};

}  // namespace blendhouse::vecindex
