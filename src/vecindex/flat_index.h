#pragma once

#include <string>
#include <vector>

#include "vecindex/index.h"

namespace blendhouse::vecindex {

/// Exact brute-force index. This is both the "FLAT" user-facing index type
/// and the fallback BlendHouse uses on a vector-index cache miss (Fig. 11)
/// and in cost-model Plan A.
class FlatIndex : public VectorIndex {
 public:
  FlatIndex(size_t dim, Metric metric) : dim_(dim), metric_(metric) {}

  std::string Type() const override { return "FLAT"; }
  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  size_t Size() const override { return ids_.size(); }
  size_t MemoryUsage() const override {
    return data_.size() * sizeof(float) + ids_.size() * sizeof(IdType);
  }

  common::Status Train(const float* data, size_t n) override;
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;
  common::Result<std::vector<Neighbor>> SearchWithRange(
      const float* query, float radius,
      const SearchParams& params) const override;

  /// Raw vector for row offset lookup (used by PQ refinement and tests).
  const float* VectorAt(size_t pos) const { return data_.data() + pos * dim_; }
  const std::vector<IdType>& ids() const { return ids_; }

 private:
  size_t dim_;
  Metric metric_;
  std::vector<float> data_;
  std::vector<IdType> ids_;
};

}  // namespace blendhouse::vecindex
