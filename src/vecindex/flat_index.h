#pragma once

#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/bitset.h"
#include "vecindex/distance.h"
#include "vecindex/index.h"

namespace blendhouse::vecindex {

/// Exact brute-force index. This is both the "FLAT" user-facing index type
/// and the fallback BlendHouse uses on a vector-index cache miss (Fig. 11)
/// and in cost-model Plan A.
///
/// Scans run through the batched SIMD kernels (chunked one-query-vs-many)
/// when unfiltered; vector storage is 64-byte aligned, and for Cosine the
/// stored vectors' norms are precomputed at insert so queries only pay for
/// a dot product per row.
class FlatIndex : public VectorIndex {
 public:
  FlatIndex(size_t dim, Metric metric)
      : dim_(dim), metric_(metric), dist_(ResolveDistance(metric)) {}

  std::string Type() const override { return "FLAT"; }
  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  size_t Size() const override { return ids_.size(); }
  size_t MemoryUsage() const override {
    return data_.size() * sizeof(float) + ids_.size() * sizeof(IdType) +
           norms_.size() * sizeof(float);
  }

  common::Status Train(const float* data, size_t n) override;
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;
  common::Result<std::vector<Neighbor>> SearchWithRange(
      const float* query, float radius,
      const SearchParams& params) const override;

  /// Raw vector for row offset lookup (used by PQ refinement and tests).
  const float* VectorAt(size_t pos) const { return data_.data() + pos * dim_; }
  const std::vector<IdType>& ids() const { return ids_; }

 private:
  /// Distances from `query` to rows [begin, begin+n) into out[0..n).
  void ScanChunk(const float* query, float query_norm, size_t begin, size_t n,
                 float* out) const;

  /// Filter-aware scan (valid only when ids_are_offsets_): walks the
  /// filter's set bits, compacts surviving positions into kScanChunk tiles,
  /// and feeds the batched kernels — contiguous runs scan in place,
  /// scattered survivors are gathered into a dense scratch tile. Calls
  /// `emit(id, distance)` per survivor. Defined in the .cc (only used
  /// there).
  template <typename Emit>
  void ScanFiltered(const float* query, const common::Bitset& filter,
                    Emit&& emit) const;

  size_t dim_;
  Metric metric_;
  DistanceFn dist_;  // resolved once; re-resolved on Load
  common::AlignedVector<float> data_;
  std::vector<IdType> ids_;
  /// Euclidean magnitude of each stored row; maintained only for Cosine.
  std::vector<float> norms_;
  /// True while ids_[i] == i for all rows (the executor's row-offset
  /// convention). Filter bitmaps index row ids, so identity ids let the
  /// filtered scan address storage positions directly from set bits.
  bool ids_are_offsets_ = true;
};

}  // namespace blendhouse::vecindex
