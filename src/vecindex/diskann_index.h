#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <atomic>

#include "common/aligned.h"
#include "common/lru_cache.h"
#include "vecindex/distance.h"
#include "vecindex/index.h"
#include "vecindex/pq.h"

namespace blendhouse::vecindex {

struct DiskAnnOptions {
  /// Maximum out-degree of the Vamana graph.
  size_t R = 32;
  /// Beam width during construction.
  size_t L_build = 64;
  /// Robust-prune distance slack: larger alpha keeps longer "highway" edges.
  float alpha = 1.2f;
  /// Product-quantizer subspaces for the in-memory navigation codes.
  size_t pq_m = 8;
  /// Node blocks held in the in-memory block cache.
  size_t cached_nodes = 1024;
  /// Per-block read cost of the simulated SSD (self-contained so the index
  /// layer stays below the storage layer).
  int64_t disk_latency_micros = 50;
  double disk_bytes_per_micro = 2000.0;
  bool simulate_disk_latency = true;
  uint64_t seed = 42;
};

/// DiskANN-style index (Subramanya et al.): a Vamana graph whose full
/// vectors and adjacency lists live in per-node "disk" blocks, navigated
/// with compact in-memory PQ codes. Memory holds only the PQ codes, the
/// medoid, and a small LRU block cache; every expanded node costs one
/// simulated SSD block read on a cache miss — the paper's sixth index type
/// ("Disk-based (DISKANN)"), standing in for the diskann library.
class DiskAnnIndex : public VectorIndex {
 public:
  DiskAnnIndex(size_t dim, Metric metric, DiskAnnOptions options = {});

  std::string Type() const override { return "DISKANN"; }
  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  size_t Size() const override { return ids_.size(); }
  /// Resident bytes: PQ codes + codebooks + block cache budget (the full
  /// vectors and adjacency are on "disk").
  size_t MemoryUsage() const override;

  common::Status Train(const float* data, size_t n) override;
  bool NeedsTraining() const override { return true; }
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;

  /// Native resumable iterator (DiskAnnSearchIterator): the PQ-guided beam,
  /// the seen/expanded sets, and the candidates the bounded beam evicted
  /// are all retained across Next() calls; deeper batches widen the beam
  /// and resume from the evicted frontier instead of re-walking the graph
  /// (and re-paying its simulated SSD reads) from the medoid.
  common::Result<std::unique_ptr<SearchIterator>> MakeIterator(
      const float* query, const SearchParams& params) const override;
  bool HasNativeIterator() const override { return true; }

  /// Simulated SSD reads performed so far (misses of the block cache).
  uint64_t disk_reads() const { return disk_reads_.load(); }

 private:
  friend class DiskAnnSearchIterator;
  struct NodeBlock {
    std::vector<float> vector;
    std::vector<uint32_t> neighbors;
  };
  using NodeBlockPtr = std::shared_ptr<const NodeBlock>;

  /// Reads node `pos`'s block, paying the SSD cost model on a cache miss.
  NodeBlockPtr ReadBlock(uint32_t pos) const;

  /// Greedy beam search over the graph using PQ distances for ordering;
  /// returns the visited set (for robust-prune) and the beam.
  void BeamSearch(const float* query, size_t beam_width,
                  std::vector<Neighbor>* settled,
                  std::vector<uint32_t>* visited_order) const;

  /// Vamana robust prune: select up to R diverse out-edges for `node`.
  std::vector<uint32_t> RobustPrune(uint32_t node,
                                    std::vector<Neighbor> candidates) const;

  float ExactDistance(const float* query, uint32_t pos) const;

  size_t dim_;
  Metric metric_;
  DiskAnnOptions options_;
  DistanceFn dist_;  // resolved once; re-resolved on Load

  // In-memory navigation state.
  ProductQuantizer pq_;
  std::vector<uint8_t> pq_codes_;  // n * pq_.code_size()
  std::vector<IdType> ids_;
  uint32_t medoid_ = 0;

  // The simulated on-disk structure: serialized node blocks. Kept as raw
  // bytes so "reading" one genuinely deserializes like an SSD page.
  std::vector<std::string> disk_blocks_;
  mutable common::LruCache<NodeBlockPtr> block_cache_;
  mutable std::atomic<uint64_t> disk_reads_{0};

  // Build-time only: full vectors + mutable adjacency before Seal().
  common::AlignedVector<float> build_vectors_;
  std::vector<std::vector<uint32_t>> build_graph_;
  common::Status Seal();
  bool sealed_ = false;
};

}  // namespace blendhouse::vecindex
