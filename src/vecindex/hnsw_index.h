#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "vecindex/distance.h"
#include "vecindex/index.h"
#include "vecindex/quantizer.h"

namespace blendhouse::vecindex {

struct HnswOptions {
  /// Max links per node on upper levels; level 0 keeps 2*M.
  size_t M = 16;
  /// Beam width during construction.
  size_t ef_construction = 200;
  uint64_t seed = 42;
  /// Store SQ8 codes instead of raw floats (the paper's HNSWSQ type:
  /// ~4x smaller, slightly lower recall).
  bool scalar_quantized = false;
  /// Reduced-precision storage (DESIGN.md §13): keep only fp16/bf16/int8
  /// codes and walk the graph with the asymmetric reduced-precision
  /// kernels; the executor reranks survivors in fp32. Mutually exclusive
  /// with scalar_quantized.
  Precision precision = Precision::kFp32;
};

/// Hierarchical Navigable Small World graph (Malkov & Yashunin), built from
/// scratch. Supports filtered search (bitmap honored while collecting
/// results, as hnswlib does) and a *native* incremental SearchIterator that
/// resumes the best-first traversal instead of restarting with a larger k —
/// the extension the paper added to hnswlib for its post-filter strategy.
class HnswIndex : public VectorIndex {
 public:
  HnswIndex(size_t dim, Metric metric, HnswOptions options = {});

  std::string Type() const override {
    return options_.scalar_quantized ? "HNSWSQ" : "HNSW";
  }
  size_t Dim() const override { return dim_; }
  Metric GetMetric() const override { return metric_; }
  Precision StoragePrecision() const override { return options_.precision; }
  size_t Size() const override { return ids_.size(); }
  size_t MemoryUsage() const override;

  common::Status Train(const float* data, size_t n) override;
  bool NeedsTraining() const override { return options_.scalar_quantized; }
  common::Status AddWithIds(const float* data, const IdType* ids,
                            size_t n) override;
  common::Status Save(std::string* out) const override;
  common::Status Load(std::string_view in) override;

  common::Result<std::vector<Neighbor>> SearchWithFilter(
      const float* query, const SearchParams& params) const override;
  common::Result<std::unique_ptr<SearchIterator>> MakeIterator(
      const float* query, const SearchParams& params) const override;
  bool HasNativeIterator() const override { return true; }

  const HnswOptions& options() const { return options_; }

 private:
  friend class HnswSearchIterator;

  /// Distance from a query vector to stored item `pos`. SQ codes go through
  /// the fused dequantize+accumulate kernels — no decode buffer, including
  /// the IP/Cosine-over-SQ paths.
  float DistToItem(const float* query, uint32_t pos) const;

  bool reduced_precision() const {
    return options_.precision != Precision::kFp32;
  }

  /// Hints the cache that item `pos`'s vector (or code) is about to be read;
  /// issued over a node's neighbor list before the distance loop.
  void PrefetchItem(uint32_t pos) const {
    if (reduced_precision())
      kernels::Prefetch(store_.RowPtr(pos));
    else if (options_.scalar_quantized)
      kernels::Prefetch(codes_.data() + size_t{pos} * dim_);
    else
      kernels::Prefetch(data_.data() + size_t{pos} * dim_);
  }

  /// Float view of stored item `pos`: raw data pointer when unquantized,
  /// otherwise decodes into `*buf` and returns buf->data().
  const float* ItemVector(uint32_t pos, std::vector<float>* buf) const;

  /// Best-first beam search on one level; returns up to `ef` closest nodes.
  std::vector<Neighbor> SearchLayer(const float* query, uint32_t entry,
                                    size_t ef, size_t level) const;

  /// Greedy descent through upper levels down to `target_level + 1`.
  uint32_t GreedyDescend(const float* query, uint32_t entry,
                         size_t from_level, size_t target_level) const;

  /// Malkov heuristic neighbor selection (alg. 4): keeps diverse edges.
  std::vector<uint32_t> SelectNeighbors(const float* vec,
                                        std::vector<Neighbor>& candidates,
                                        size_t m) const;

  void InsertOne(const float* vec, IdType external_id);

  size_t RandomLevel();
  const std::vector<uint32_t>& LinksAt(uint32_t node, size_t level) const {
    return links_[node][level];
  }
  size_t MaxLinks(size_t level) const {
    return level == 0 ? options_.M * 2 : options_.M;
  }

  size_t dim_;
  Metric metric_;
  HnswOptions options_;
  double level_mult_;
  uint64_t rng_state_;
  DistanceFn dist_;  // resolved once; re-resolved on Load

  // Raw float storage (non-quantized) or SQ8 codes (quantized).
  common::AlignedVector<float> data_;
  std::vector<uint8_t> codes_;
  ScalarQuantizer sq_;
  /// Packed fp16/bf16/int8 codes when options_.precision != kFp32; the
  /// other storage forms stay empty then.
  PrecisionStore store_;

  std::vector<IdType> ids_;
  std::vector<std::vector<std::vector<uint32_t>>> links_;  // [node][level]
  std::vector<uint8_t> levels_;
  uint32_t entry_point_ = 0;
  int max_level_ = -1;
};

}  // namespace blendhouse::vecindex
