#include "vecindex/hnsw_index.h"

#include <memory>

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/assert.h"
#include "common/io.h"
#include "vecindex/distance.h"
#include "vecindex/scan_counters.h"

namespace blendhouse::vecindex {

namespace {
/// splitmix64 — cheap deterministic per-index RNG for level sampling.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

HnswIndex::HnswIndex(size_t dim, Metric metric, HnswOptions options)
    : dim_(dim),
      metric_(metric),
      options_(options),
      level_mult_(1.0 / std::log(static_cast<double>(
                            std::max<size_t>(2, options.M)))),
      rng_state_(options.seed),
      dist_(ResolveDistance(metric)) {
  BH_ASSERT_MSG(!(options_.scalar_quantized && reduced_precision()),
                "hnsw: scalar_quantized and precision are mutually exclusive");
  if (reduced_precision()) store_.Configure(options_.precision, dim_, metric_);
}

size_t HnswIndex::MemoryUsage() const {
  size_t bytes = data_.size() * sizeof(float) + codes_.size() +
                 ids_.size() * sizeof(IdType) + levels_.size() +
                 store_.MemoryBytes();
  for (const auto& node : links_) {
    for (const auto& lvl : node) bytes += lvl.size() * sizeof(uint32_t);
    bytes += node.size() * sizeof(std::vector<uint32_t>);
  }
  return bytes;
}

common::Status HnswIndex::Train(const float* data, size_t n) {
  if (reduced_precision()) {
    store_.Train(data, n);  // fixes the int8 scale; no-op for fp16/bf16
    return common::Status::Ok();
  }
  if (!options_.scalar_quantized) return common::Status::Ok();
  return sq_.Train(data, n, dim_);
}

float HnswIndex::DistToItem(const float* query, uint32_t pos) const {
  if (reduced_precision()) {
    // Asymmetric reduced-precision kernel: the fp32 query meets the packed
    // code directly — per-hop work, so no batching tier here.
    return store_.DistanceToRow(query, pos);
  }
  // Per-hop fp32 (or fused-SQ8, which decodes into an fp32 accumulation —
  // same tier for ledger purposes) distance; the reduced-precision branch
  // above is charged inside PrecisionStore.
  scanstats::AddFp32(1);
  if (options_.scalar_quantized) {
    const uint8_t* code = codes_.data() + size_t{pos} * dim_;
    switch (metric_) {
      case Metric::kL2:
        return sq_.L2SqrToCode(query, code);
      case Metric::kInnerProduct:
        return -sq_.DotToCode(query, code);
      case Metric::kCosine:
        return sq_.CosineToCode(query, code,
                                std::sqrt(SquaredNorm(query, dim_)));
    }
  }
  return dist_(query, data_.data() + size_t{pos} * dim_, dim_);
}

size_t HnswIndex::RandomLevel() {
  double u = (static_cast<double>(NextRand(&rng_state_) >> 11) + 1.0) /
             9007199254740993.0;  // (0, 1]
  return static_cast<size_t>(-std::log(u) * level_mult_);
}

uint32_t HnswIndex::GreedyDescend(const float* query, uint32_t entry,
                                  size_t from_level,
                                  size_t target_level) const {
  uint32_t cur = entry;
  float cur_d = DistToItem(query, cur);
  for (size_t level = from_level; level > target_level; --level) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t nb : LinksAt(cur, level)) {
        float d = DistToItem(query, nb);
        if (d < cur_d) {
          cur_d = d;
          cur = nb;
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query,
                                             uint32_t entry, size_t ef,
                                             size_t level) const {
  // Min-heap of nodes to expand, max-heap of current best ef results.
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>>
      candidates;
  std::priority_queue<Neighbor> best;
  std::unordered_set<uint32_t> visited;

  float entry_d = DistToItem(query, entry);
  candidates.push({static_cast<IdType>(entry), entry_d});
  best.push({static_cast<IdType>(entry), entry_d});
  visited.insert(entry);

  while (!candidates.empty()) {
    Neighbor cur = candidates.top();
    if (best.size() >= ef && cur.distance > best.top().distance) break;
    candidates.pop();
    const std::vector<uint32_t>& links =
        LinksAt(static_cast<uint32_t>(cur.id), level);
    // Pull the whole neighborhood toward the cache before the distance loop;
    // graph order is random so every expansion is a potential miss.
    for (uint32_t nb : links) PrefetchItem(nb);
    for (uint32_t nb : links) {
      if (!visited.insert(nb).second) continue;
      float d = DistToItem(query, nb);
      if (best.size() < ef || d < best.top().distance) {
        candidates.push({static_cast<IdType>(nb), d});
        best.push({static_cast<IdType>(nb), d});
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Neighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

const float* HnswIndex::ItemVector(uint32_t pos,
                                   std::vector<float>* buf) const {
  if (reduced_precision()) {
    buf->resize(dim_);
    store_.Decode(pos, buf->data());
    return buf->data();
  }
  if (!options_.scalar_quantized) return data_.data() + size_t{pos} * dim_;
  buf->resize(dim_);
  sq_.Decode(codes_.data() + size_t{pos} * dim_, buf->data());
  return buf->data();
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    const float* vec, std::vector<Neighbor>& candidates, size_t m) const {
  (void)vec;
  std::sort(candidates.begin(), candidates.end());
  // Malkov's heuristic: keep a candidate only if it is closer to the new
  // node than to every already-selected neighbor — edges stay diverse.
  std::vector<uint32_t> selected;
  std::vector<float> decode_buf;
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    const float* c_vec =
        ItemVector(static_cast<uint32_t>(c.id), &decode_buf);
    bool keep = true;
    for (uint32_t s : selected) {
      if (DistToItem(c_vec, s) < c.distance) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(static_cast<uint32_t>(c.id));
  }
  // Backfill with closest remaining if the heuristic was too aggressive.
  for (const Neighbor& c : candidates) {
    if (selected.size() >= m) break;
    uint32_t id = static_cast<uint32_t>(c.id);
    if (std::find(selected.begin(), selected.end(), id) == selected.end())
      selected.push_back(id);
  }
  return selected;
}

void HnswIndex::InsertOne(const float* vec, IdType external_id) {
  uint32_t node = static_cast<uint32_t>(ids_.size());
  ids_.push_back(external_id);
  if (reduced_precision()) {
    store_.Append(vec, 1);  // codes only — no fp32 copy
  } else if (options_.scalar_quantized) {
    codes_.resize(codes_.size() + dim_);
    sq_.Encode(vec, codes_.data() + size_t{node} * dim_);
  } else {
    data_.insert(data_.end(), vec, vec + dim_);
  }

  size_t level = RandomLevel();
  levels_.push_back(static_cast<uint8_t>(std::min<size_t>(level, 255)));
  links_.emplace_back(level + 1);

  if (max_level_ < 0) {
    entry_point_ = node;
    max_level_ = static_cast<int>(level);
    return;
  }

  uint32_t cur = entry_point_;
  if (static_cast<int>(level) < max_level_)
    cur = GreedyDescend(vec, cur, static_cast<size_t>(max_level_), level);

  size_t top = std::min<size_t>(level, static_cast<size_t>(max_level_));
  for (size_t lvl = top + 1; lvl-- > 0;) {
    std::vector<Neighbor> candidates =
        SearchLayer(vec, cur, options_.ef_construction, lvl);
    std::vector<uint32_t> neighbors =
        SelectNeighbors(vec, candidates, options_.M);
    links_[node][lvl] = neighbors;
    for (uint32_t nb : neighbors) {
      std::vector<uint32_t>& back = links_[nb][lvl];
      back.push_back(node);
      if (back.size() > MaxLinks(lvl)) {
        // Re-select the neighbor's edges to stay within the degree bound.
        std::vector<Neighbor> nb_cands;
        nb_cands.reserve(back.size());
        std::vector<float> buf;
        const float* nb_vec = ItemVector(nb, &buf);
        for (uint32_t cand : back)
          nb_cands.push_back(
              {static_cast<IdType>(cand), DistToItem(nb_vec, cand)});
        links_[nb][lvl] = SelectNeighbors(nb_vec, nb_cands, MaxLinks(lvl));
      }
    }
    if (!candidates.empty())
      cur = static_cast<uint32_t>(candidates.front().id);
  }

  if (static_cast<int>(level) > max_level_) {
    max_level_ = static_cast<int>(level);
    entry_point_ = node;
  }
}

common::Status HnswIndex::AddWithIds(const float* data, const IdType* ids,
                                     size_t n) {
  if (options_.scalar_quantized && !sq_.trained())
    BH_RETURN_IF_ERROR(sq_.Train(data, n, dim_));
  if (reduced_precision() && !store_.calibrated()) store_.Train(data, n);
  size_t expected = ids_.size() + n;
  ids_.reserve(expected);
  links_.reserve(expected);
  if (!options_.scalar_quantized && !reduced_precision())
    data_.reserve(expected * dim_);
  for (size_t i = 0; i < n; ++i) InsertOne(data + i * dim_, ids[i]);
  return common::Status::Ok();
}

common::Result<std::vector<Neighbor>> HnswIndex::SearchWithFilter(
    const float* query, const SearchParams& params) const {
  if (params.k <= 0)
    return common::Status::InvalidArgument("hnsw: k must be positive");
  if (ids_.empty()) return std::vector<Neighbor>{};

  size_t k = static_cast<size_t>(params.k);
  size_t ef = std::max<size_t>(static_cast<size_t>(params.ef_search), k);
  // With a filter, widen the beam so enough passing rows survive collection.
  // Density-aware: the sparser the filter, the more collected nodes fail it,
  // so ef grows inversely with the pass rate (bounded to 8x the base
  // widening; an empty filter short-circuits the graph walk entirely).
  if (params.filter != nullptr) {
    const size_t selected = params.filter->Count();
    if (selected == 0) return std::vector<Neighbor>{};
    const size_t base = std::max(ef * 2, k * 4);
    const double density = std::min(
        1.0, static_cast<double>(selected) / static_cast<double>(ids_.size()));
    const size_t widened = static_cast<size_t>(
        std::ceil(static_cast<double>(k) / density)) * 2;
    ef = std::min(std::max(base, widened), base * 8);
    ef = std::min(ef, ids_.size());
    ef = std::max<size_t>(ef, 1);
  }
  uint32_t entry = GreedyDescend(query, entry_point_,
                                 static_cast<size_t>(max_level_), 0);
  std::vector<Neighbor> found = SearchLayer(query, entry, ef, 0);

  std::vector<Neighbor> out;
  out.reserve(k);
  for (const Neighbor& n : found) {
    IdType ext = ids_[static_cast<uint32_t>(n.id)];
    if (params.filter != nullptr &&
        !params.filter->Test(static_cast<size_t>(ext)))
      continue;
    out.push_back({ext, n.distance});
    if (out.size() >= k) break;
  }
  return out;
}

// --------------------------------------------------------------------------
// Native incremental iterator: resumable best-first expansion over level 0.
// --------------------------------------------------------------------------

class HnswSearchIterator : public SearchIterator {
 public:
  HnswSearchIterator(const HnswIndex* index, const float* query,
                     SearchParams params)
      : index_(index),
        query_(query, query + index->Dim()),
        params_(params) {
    if (index_->Size() == 0) return;
    uint32_t entry = index_->GreedyDescend(
        query_.data(), index_->entry_point_,
        static_cast<size_t>(index_->max_level_), 0);
    float d = index_->DistToItem(query_.data(), entry);
    frontier_.push({static_cast<IdType>(entry), d});
    visited_.insert(entry);
    // Explore at least ef nodes before the first yield: pure best-first from
    // a single entry misses neighbors that hide behind slightly-farther hops
    // (the same reason beam search uses ef > k).
    size_t warmup = std::max<size_t>(
        static_cast<size_t>(std::max(params.ef_search, params.k)), 1);
    while (ready_.size() + 0 < warmup && !frontier_.empty()) Settle();
  }

  std::vector<Neighbor> Next(size_t batch_size) override {
    std::vector<Neighbor> out;
    while (out.size() < batch_size) {
      // Keep settle order exact: only yield a settled node once no frontier
      // candidate could still beat it.
      while (!frontier_.empty() &&
             (ready_.empty() ||
              frontier_.top().distance < ready_.top().distance))
        Settle();
      if (ready_.empty()) break;
      Neighbor cur = ready_.top();
      ready_.pop();
      uint32_t node = static_cast<uint32_t>(cur.id);
      IdType ext = index_->ids_[node];
      if (params_.filter != nullptr &&
          !params_.filter->Test(static_cast<size_t>(ext)))
        continue;
      out.push_back({ext, cur.distance});
    }
    // Yields pop from a min-heap but are only approximately ordered:
    // expanding a settled node can surface a closer neighbor later in the
    // same batch. Re-sort so the batch honors the sorted-batch contract.
    std::sort(out.begin(), out.end());
    BH_DCHECK(IsSortedBatch(out));
    if (!out.empty()) ++batches_;
    return out;
  }

  size_t VisitedCount() const override { return visited_.size(); }
  Stats GetStats() const override {
    return {visited_.size(), batches_, /*recompute_rounds=*/0};
  }

 private:
  /// Pops the closest frontier node, expands it, and parks it in ready_.
  void Settle() {
    Neighbor cur = frontier_.top();
    frontier_.pop();
    uint32_t node = static_cast<uint32_t>(cur.id);
    const std::vector<uint32_t>& links = index_->LinksAt(node, 0);
    for (uint32_t nb : links) index_->PrefetchItem(nb);
    for (uint32_t nb : links) {
      if (!visited_.insert(nb).second) continue;
      frontier_.push(
          {static_cast<IdType>(nb), index_->DistToItem(query_.data(), nb)});
    }
    ready_.push(cur);
  }

  const HnswIndex* index_;
  std::vector<float> query_;
  SearchParams params_;
  // Min-heap ordered by distance: pop = next (approximately) closest node.
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>>
      frontier_;
  // Settled nodes not yet returned, in distance order.
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>>
      ready_;
  std::unordered_set<uint32_t> visited_;
  size_t batches_ = 0;
};

common::Result<std::unique_ptr<SearchIterator>> HnswIndex::MakeIterator(
    const float* query, const SearchParams& params) const {
  return std::unique_ptr<SearchIterator>(
      std::make_unique<HnswSearchIterator>(this, query, params));
}

// --------------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------------

common::Status HnswIndex::Save(std::string* out) const {
  common::BinaryWriter w(out);
  w.WriteString(Type());
  w.Write<uint64_t>(dim_);
  w.Write<uint32_t>(static_cast<uint32_t>(metric_));
  w.Write<uint64_t>(options_.M);
  w.Write<uint64_t>(options_.ef_construction);
  w.Write<uint8_t>(options_.scalar_quantized ? 1 : 0);
  w.Write<uint8_t>(static_cast<uint8_t>(options_.precision));
  w.Write<uint32_t>(entry_point_);
  w.Write<int32_t>(max_level_);
  w.WriteVector(ids_);
  w.WriteVector(levels_);
  if (reduced_precision()) {
    store_.Serialize(&w);
  } else if (options_.scalar_quantized) {
    sq_.Serialize(&w);
    w.WriteVector(codes_);
  } else {
    w.WriteVector(data_);
  }
  w.Write<uint64_t>(links_.size());
  for (const auto& node : links_) {
    w.Write<uint32_t>(static_cast<uint32_t>(node.size()));
    for (const auto& lvl : node) w.WriteVector(lvl);
  }
  return common::Status::Ok();
}

common::Status HnswIndex::Load(std::string_view in) {
  common::BinaryReader r(in);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  uint64_t dim = 0, m = 0, efc = 0;
  uint32_t metric = 0;
  uint8_t sq_flag = 0;
  uint8_t precision = 0;
  BH_RETURN_IF_ERROR(r.Read(&dim));
  BH_RETURN_IF_ERROR(r.Read(&metric));
  BH_RETURN_IF_ERROR(r.Read(&m));
  BH_RETURN_IF_ERROR(r.Read(&efc));
  BH_RETURN_IF_ERROR(r.Read(&sq_flag));
  BH_RETURN_IF_ERROR(r.Read(&precision));
  if (precision > static_cast<uint8_t>(Precision::kInt8))
    return common::Status::Corruption("hnsw: bad precision tag");
  dim_ = dim;
  metric_ = static_cast<Metric>(metric);
  dist_ = ResolveDistance(metric_);
  options_.M = m;
  options_.ef_construction = efc;
  options_.scalar_quantized = sq_flag != 0;
  options_.precision = static_cast<Precision>(precision);
  if (options_.scalar_quantized && reduced_precision())
    return common::Status::Corruption("hnsw: conflicting quantization tags");
  if (type != Type()) return common::Status::Corruption("hnsw: type mismatch");
  BH_RETURN_IF_ERROR(r.Read(&entry_point_));
  BH_RETURN_IF_ERROR(r.Read(&max_level_));
  BH_RETURN_IF_ERROR(r.ReadVector(&ids_));
  BH_RETURN_IF_ERROR(r.ReadVector(&levels_));
  if (reduced_precision()) {
    BH_RETURN_IF_ERROR(store_.Deserialize(&r));
    if (store_.precision() != options_.precision || store_.dim() != dim_ ||
        store_.size() != ids_.size())
      return common::Status::Corruption("hnsw: store mismatch");
  } else if (options_.scalar_quantized) {
    BH_RETURN_IF_ERROR(sq_.Deserialize(&r));
    BH_RETURN_IF_ERROR(r.ReadVector(&codes_));
  } else {
    BH_RETURN_IF_ERROR(r.ReadVector(&data_));
  }
  uint64_t num_nodes = 0;
  BH_RETURN_IF_ERROR(r.Read(&num_nodes));
  if (num_nodes != ids_.size())
    return common::Status::Corruption("hnsw: node count mismatch");
  links_.assign(num_nodes, {});
  for (auto& node : links_) {
    uint32_t num_levels = 0;
    BH_RETURN_IF_ERROR(r.Read(&num_levels));
    node.resize(num_levels);
    for (auto& lvl : node) BH_RETURN_IF_ERROR(r.ReadVector(&lvl));
  }
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
