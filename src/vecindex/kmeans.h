#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace blendhouse::vecindex {

struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 15;
  uint64_t seed = 42;
  /// Stop early when the fraction of points that changed assignment drops
  /// below this threshold.
  double convergence_fraction = 0.002;
};

struct KMeansResult {
  /// k * dim packed centroids.
  std::vector<float> centroids;
  /// Per-point cluster assignment, size n.
  std::vector<uint32_t> assignments;
  size_t iterations_run = 0;
};

/// Lloyd's algorithm with k-means++ seeding over L2. Used by the IVF coarse
/// quantizer, product quantizer training, and semantic partitioning
/// (`CLUSTER BY ... INTO n BUCKETS`). Empty clusters are re-seeded with the
/// point farthest from its centroid.
common::Result<KMeansResult> RunKMeans(const float* data, size_t n, size_t dim,
                                       const KMeansOptions& options);

/// Index of the centroid (among k packed centroids) nearest to `v` under L2.
/// Scans through the batched SIMD L2 kernel. When `best_dist` is non-null it
/// receives the winning squared distance (so callers don't pay a second
/// distance pass).
size_t NearestCentroid(const float* v, const float* centroids, size_t k,
                       size_t dim, float* best_dist = nullptr);

}  // namespace blendhouse::vecindex
