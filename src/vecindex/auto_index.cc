#include "vecindex/auto_index.h"

#include <algorithm>
#include <cmath>
#include <string>

// Trial timing here is an algorithm input (candidate selection), not
// telemetry — a registry histogram would be the wrong sink for it.
#include "common/timer.h"  // lint:allow(adhoc-timer)
#include "vecindex/ivf_index.h"

namespace blendhouse::vecindex {

size_t AutoSelectIvfNlist(size_t n) {
  if (n == 0) return 1;
  // Faiss guideline: ~4*sqrt(N) lists; keep >= 39 points per list so each
  // centroid is trainable, and always at least one list.
  size_t by_sqrt = static_cast<size_t>(
      std::lround(4.0 * std::sqrt(static_cast<double>(n))));
  size_t by_points = n / 39;
  size_t nlist = std::min(by_sqrt, std::max<size_t>(1, by_points));
  return std::max<size_t>(1, nlist);
}

IndexSpec AutoTuneSpec(const IndexSpec& spec, size_t segment_rows) {
  IndexSpec tuned = spec;
  bool ivf_family = spec.type.rfind("IVF", 0) == 0;
  if (ivf_family && spec.params.find("NLIST") == spec.params.end())
    tuned.params["NLIST"] = std::to_string(AutoSelectIvfNlist(segment_rows));
  if ((spec.type == "HNSW" || spec.type == "HNSWSQ") && segment_rows < 2000) {
    // Tiny segments don't pay for a wide graph or a deep beam.
    if (spec.params.find("M") == spec.params.end())
      tuned.params["M"] = "8";
    if (spec.params.find("EF_CONSTRUCTION") == spec.params.end())
      tuned.params["EF_CONSTRUCTION"] = "100";
  }
  return tuned;
}

common::Result<AutoTuneReport> MeasuredAutoTuneIvf(const float* data, size_t n,
                                                   size_t dim,
                                                   size_t sample_queries,
                                                   size_t k) {
  if (n < 64) return common::Status::InvalidArgument("autotune: too few rows");
  size_t rule = AutoSelectIvfNlist(n);
  std::vector<size_t> candidates = {std::max<size_t>(1, rule / 4),
                                    std::max<size_t>(1, rule / 2), rule,
                                    rule * 2};
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  AutoTuneReport report;
  double best = 0.0;
  for (size_t nlist : candidates) {
    IvfOptions opts;
    opts.nlist = nlist;
    IvfFlatIndex index(dim, Metric::kL2, opts);
    std::vector<IdType> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<IdType>(i);
    BH_RETURN_IF_ERROR(index.Train(data, n));
    BH_RETURN_IF_ERROR(index.AddWithIds(data, ids.data(), n));

    // Probe enough lists to visit a comparable fraction of the data for
    // each candidate, so we measure structure, not recall differences.
    SearchParams params;
    params.k = static_cast<int>(k);
    params.nprobe =
        std::max(1, static_cast<int>(index.nlist() / 8));
    common::Timer timer;  // lint:allow(adhoc-timer) -- measured trial input
    size_t queries = std::min(sample_queries, n);
    for (size_t q = 0; q < queries; ++q) {
      auto r = index.SearchWithFilter(data + (q * (n / queries)) * dim, params);
      if (!r.ok()) return r.status();
    }
    double avg = timer.ElapsedMicros() / static_cast<double>(queries);
    report.candidates.push_back({nlist, avg});
    if (report.chosen_nlist == 0 || avg < best) {
      best = avg;
      report.chosen_nlist = nlist;
    }
  }
  return report;
}

}  // namespace blendhouse::vecindex
