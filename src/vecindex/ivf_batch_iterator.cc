#include "vecindex/ivf_batch_iterator.h"

#include <algorithm>

#include "common/assert.h"
#include "vecindex/distance.h"

namespace blendhouse::vecindex {

IvfBatchIterator::IvfBatchIterator(const IvfIndexBase* index,
                                   const float* query, SearchParams params)
    : index_(index),
      query_(query, query + index->Dim()),
      params_(params) {
  if (!index_->trained()) return;
  // Rank every centroid once (one batched kernel call); the sorted order is
  // the probe schedule for the whole iteration.
  const size_t nlist = index_->nlist();
  std::vector<float> centroid_dist(nlist);
  BatchDistance(index_->GetMetric(), query_.data(),
                index_->centroids_.data(), nlist, index_->Dim(),
                centroid_dist.data());
  centroid_order_.resize(nlist);
  for (size_t c = 0; c < nlist; ++c)
    centroid_order_[c] = {static_cast<IdType>(c), centroid_dist[c]};
  std::sort(centroid_order_.begin(), centroid_order_.end());
  ctx_ = index_->PrepareQuery(query_.data(), &scratch_);
}

bool IvfBatchIterator::ProbeNextWindow() {
  if (probed_ >= centroid_order_.size()) return false;
  size_t window = std::min<size_t>(
      std::max(1, params_.nprobe), centroid_order_.size() - probed_);
  std::vector<IvfIndexBase::Hit> hits;
  for (size_t p = 0; p < window; ++p) {
    uint32_t list_idx =
        static_cast<uint32_t>(centroid_order_[probed_ + p].id);
    index_->ScanList(index_->lists_[list_idx], list_idx, query_.data(), ctx_,
                     params_, &hits);
  }
  probed_ += window;
  stats_.rows_visited += hits.size();
  // Drop the already-served prefix, append the new window's hits, restore
  // the sorted order with one merge (both halves are sorted).
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(cursor_));
  cursor_ = 0;
  size_t old = pending_.size();
  pending_.reserve(old + hits.size());
  for (const IvfIndexBase::Hit& h : hits)
    pending_.push_back({h.id, h.distance});
  std::sort(pending_.begin() + static_cast<ptrdiff_t>(old), pending_.end());
  std::inplace_merge(pending_.begin(),
                     pending_.begin() + static_cast<ptrdiff_t>(old),
                     pending_.end());
  return true;
}

std::vector<Neighbor> IvfBatchIterator::Next(size_t batch_size) {
  std::vector<Neighbor> out;
  out.reserve(batch_size);
  while (out.size() < batch_size) {
    if (cursor_ >= pending_.size() && !ProbeNextWindow()) break;
    while (cursor_ < pending_.size() && out.size() < batch_size)
      out.push_back(pending_[cursor_++]);
  }
  // A window extension mid-batch may surface hits closer than ones already
  // taken; re-sort so the batch honors the sorted-batch contract.
  std::sort(out.begin(), out.end());
  BH_DCHECK(IsSortedBatch(out));
  if (!out.empty()) ++stats_.batches;
  return out;
}

}  // namespace blendhouse::vecindex
