#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "vecindex/index_factory.h"

namespace blendhouse::vecindex {

/// Rule-based K_IVF selection from segment size N, following the Faiss
/// guidelines the paper cites: roughly 4*sqrt(N) lists, bounded so each list
/// keeps enough points to train and scan efficiently. Used on the ingestion
/// path where build latency matters (paper §III-B "Auto index").
size_t AutoSelectIvfNlist(size_t n);

/// Applies per-segment-size rules to a spec before building: fills NLIST for
/// IVF-family indexes and scales M / EF_CONSTRUCTION for tiny HNSW segments.
IndexSpec AutoTuneSpec(const IndexSpec& spec, size_t segment_rows);

/// Measured auto-tuning for the background-compaction path: builds candidate
/// IVF indexes over a sample and picks the nlist with the lowest measured
/// search time at equal nprobe coverage. Slower but more accurate than the
/// rule — mirrors the paper's rule-based-then-auto-tuned split.
struct AutoTuneReport {
  size_t chosen_nlist = 0;
  struct Candidate {
    size_t nlist;
    double avg_search_micros;
  };
  std::vector<Candidate> candidates;
};

common::Result<AutoTuneReport> MeasuredAutoTuneIvf(
    const float* data, size_t n, size_t dim, size_t sample_queries = 16,
    size_t k = 10);

}  // namespace blendhouse::vecindex
