#pragma once

#include <cstddef>
#include <cstdint>

#include "vecindex/types.h"

namespace blendhouse::vecindex::scanstats {

/// Thread-local distance-computation accounting (DESIGN.md §15).
///
/// Every distance chokepoint — the fp32 wrappers in distance.cc, the
/// reduced-precision PrecisionStore scan entry points, and the graph
/// indexes' per-hop helpers — bumps a plain thread_local tally here. A
/// query's segment task runs start-to-finish on one pool thread (the
/// executor's RunSegment closure, a worker's StreamSearch call), so a
/// ScanCounterScope installed around that work reads the per-tier deltas
/// afterwards and attributes them to the owning query's ledger, without
/// the kernels knowing anything about queries.
///
/// Cost: one thread_local add per *batch* call on the batched tiers and
/// one per hop on the graph tiers — noise next to the kernel work itself
/// (the telemetry_smoke <2% overhead gate covers it).

/// One tally per storage precision, indexed by vecindex::Precision.
inline constexpr size_t kNumTiers = 4;

struct TierCounts {
  uint64_t dist[kNumTiers] = {0, 0, 0, 0};

  uint64_t total() const {
    return dist[0] + dist[1] + dist[2] + dist[3];
  }
};

namespace internal {
inline thread_local TierCounts tls_counts;
}  // namespace internal

/// Charges n distance computations to the given precision tier.
inline void Add(Precision tier, uint64_t n) {
  internal::tls_counts.dist[static_cast<size_t>(tier)] += n;
}

inline void AddFp32(uint64_t n) { Add(Precision::kFp32, n); }

/// Delta-reader: snapshots the thread's tallies at construction; Delta()
/// returns what was charged on this thread since. Scopes nest naturally
/// (each sees its own slice) because the tallies are monotonic.
class ScanCounterScope {
 public:
  ScanCounterScope() : start_(internal::tls_counts) {}
  ScanCounterScope(const ScanCounterScope&) = delete;
  ScanCounterScope& operator=(const ScanCounterScope&) = delete;

  TierCounts Delta() const {
    TierCounts d;
    for (size_t i = 0; i < kNumTiers; ++i)
      d.dist[i] = internal::tls_counts.dist[i] - start_.dist[i];
    return d;
  }

 private:
  TierCounts start_;
};

}  // namespace blendhouse::vecindex::scanstats
