#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "vecindex/index.h"

namespace blendhouse::vecindex {

/// Iterator adapter for index libraries that only expose top-k search.
///
/// The SingleStore-V style wrapper the paper describes: start with an initial
/// k; when more rows are needed, restart the ANN search from scratch with k
/// doubled and emit only ids not yet returned. Repeated runs of the same k
/// return identical results, so no result is lost between rounds — but the
/// repeated from-scratch searches are the redundant work BlendHouse's native
/// HNSW iterator avoids.
class GenericSearchIterator : public SearchIterator {
 public:
  GenericSearchIterator(const VectorIndex* index, const float* query,
                        SearchParams params);

  std::vector<Neighbor> Next(size_t batch_size) override;
  size_t VisitedCount() const override { return stats_.rows_visited; }
  Stats GetStats() const override { return stats_; }

 private:
  const VectorIndex* index_;
  std::vector<float> query_;
  SearchParams params_;
  size_t current_k_;
  size_t cursor_ = 0;        // position in the last result not yet scanned
  /// rows_visited counts neighbors materialized across restart rounds: each
  /// recompute round re-derives its whole result from scratch, so the sum
  /// over rounds measures the redundant work a resumable iterator avoids.
  /// (The index's internal scan cost is not observable through the top-k
  /// API — no beam-size guessing.)
  Stats stats_;
  bool exhausted_ = false;
  std::vector<Neighbor> last_result_;
  // Ids already emitted. Approximate indexes (PQ refine) may reorder result
  // prefixes between runs with different k, so prefix-skipping alone would
  // leak duplicates.
  std::unordered_set<IdType> returned_;
};

}  // namespace blendhouse::vecindex
