#include "vecindex/pq.h"

#include <algorithm>
#include <cstring>

#include "vecindex/distance.h"
#include "vecindex/kmeans.h"

namespace blendhouse::vecindex {

common::Status ProductQuantizer::Train(const float* data, size_t n, size_t dim,
                                       size_t m, size_t nbits, uint64_t seed) {
  if (m == 0 || dim == 0 || n == 0)
    return common::Status::InvalidArgument("pq: empty input");
  if (dim % m != 0)
    return common::Status::InvalidArgument("pq: dim not divisible by m");
  if (nbits != 4 && nbits != 8)
    return common::Status::InvalidArgument("pq: nbits must be 4 or 8");

  dim_ = dim;
  m_ = m;
  ks_ = size_t{1} << nbits;
  dsub_ = dim / m;
  codebooks_.assign(m_ * ks_ * dsub_, 0.0f);

  std::vector<float> sub(n * dsub_);
  for (size_t s = 0; s < m_; ++s) {
    for (size_t i = 0; i < n; ++i)
      std::memcpy(sub.data() + i * dsub_, data + i * dim_ + s * dsub_,
                  dsub_ * sizeof(float));
    KMeansOptions opts;
    opts.k = ks_;
    opts.seed = seed + s;
    opts.max_iterations = 12;
    auto km = RunKMeans(sub.data(), n, dsub_, opts);
    if (!km.ok()) return km.status();
    size_t trained_k = km->centroids.size() / dsub_;
    // With fewer training points than ks, duplicate the last centroid so the
    // codebook stays full-size and codes remain valid.
    for (size_t c = 0; c < ks_; ++c) {
      const float* src =
          km->centroids.data() + std::min(c, trained_k - 1) * dsub_;
      std::memcpy(codebooks_.data() + (s * ks_ + c) * dsub_, src,
                  dsub_ * sizeof(float));
    }
  }
  return common::Status::Ok();
}

void ProductQuantizer::Encode(const float* v, uint8_t* code) const {
  for (size_t s = 0; s < m_; ++s) {
    const float* book = codebooks_.data() + s * ks_ * dsub_;
    size_t c = NearestCentroid(v + s * dsub_, book, ks_, dsub_);
    code[s] = static_cast<uint8_t>(c);
  }
}

void ProductQuantizer::Decode(const uint8_t* code, float* v) const {
  for (size_t s = 0; s < m_; ++s) {
    const float* centroid =
        codebooks_.data() + (s * ks_ + code[s]) * dsub_;
    std::memcpy(v + s * dsub_, centroid, dsub_ * sizeof(float));
  }
}

void ProductQuantizer::BuildAdcTable(const float* query, float* table) const {
  // One batched-kernel call per subspace: each codebook is already a packed
  // ks x dsub row block, exactly the layout the batch kernels scan.
  kernels::BatchDistFn batch_l2sqr = kernels::Get().batch_l2sqr;
  for (size_t s = 0; s < m_; ++s) {
    const float* book = codebooks_.data() + s * ks_ * dsub_;
    batch_l2sqr(query + s * dsub_, book, ks_, dsub_, table + s * ks_);
  }
}

void ProductQuantizer::Serialize(common::BinaryWriter* w) const {
  w->Write<uint64_t>(dim_);
  w->Write<uint64_t>(m_);
  w->Write<uint64_t>(ks_);
  w->Write<uint64_t>(dsub_);
  w->WriteVector(codebooks_);
}

common::Status ProductQuantizer::Deserialize(common::BinaryReader* r) {
  uint64_t dim = 0, m = 0, ks = 0, dsub = 0;
  BH_RETURN_IF_ERROR(r->Read(&dim));
  BH_RETURN_IF_ERROR(r->Read(&m));
  BH_RETURN_IF_ERROR(r->Read(&ks));
  BH_RETURN_IF_ERROR(r->Read(&dsub));
  dim_ = dim;
  m_ = m;
  ks_ = ks;
  dsub_ = dsub;
  BH_RETURN_IF_ERROR(r->ReadVector(&codebooks_));
  if (codebooks_.size() != m_ * ks_ * dsub_ || dsub_ * m_ != dim_)
    return common::Status::Corruption("pq: shape mismatch");
  return common::Status::Ok();
}

}  // namespace blendhouse::vecindex
