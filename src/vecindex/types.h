#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"

namespace blendhouse::vecindex {

/// Row identifier inside a segment. Per-segment vector indexes store row
/// *offsets*, not primary keys, which is what makes the bidirectional
/// vector<->scalar mapping cheap (paper §III-B, "Per segment vector index").
using IdType = int64_t;

/// Distance metric. Lower is better for L2; for IP/Cosine we negate the
/// similarity so that every index can treat "smaller distance = closer".
enum class Metric { kL2, kInnerProduct, kCosine };

/// Storage precision of an index's scan tier (DESIGN.md §13). fp32 is the
/// exact baseline; the reduced formats store 2 or 1 bytes per dimension,
/// are scanned by dedicated kernels, and rely on an fp32 rerank of the top
/// candidates to restore exact ordering.
enum class Precision : uint8_t { kFp32 = 0, kFp16 = 1, kBf16 = 2, kInt8 = 3 };

std::string PrecisionName(Precision p);

/// Parses "FP32"/"FP16"/"BF16"/"INT8" (case-insensitive); false on unknown.
bool ParsePrecision(const std::string& name, Precision* out);

/// Bytes one encoded dimension occupies.
size_t PrecisionBytes(Precision p);

/// One search hit: row offset and its distance to the query.
///
/// Ordering ties on equal distances break by id, so every sort of the same
/// hit set lands in one canonical order. Resumable batch iterators rely on
/// this: their concatenated batches must be bit-identical to the one-shot
/// sorted top-n even when duplicated distances straddle a batch boundary.
struct Neighbor {
  IdType id = -1;
  float distance = 0.0f;

  bool operator<(const Neighbor& o) const {
    return distance != o.distance ? distance < o.distance : id < o.id;
  }
  bool operator>(const Neighbor& o) const { return o < *this; }
};

/// Knobs shared by every index implementation. Unused fields are ignored by
/// index types they do not apply to (e.g. nprobe for HNSW).
struct SearchParams {
  /// Number of neighbors to return.
  int k = 10;
  /// HNSW beam width; controls the recall/latency trade-off.
  int ef_search = 64;
  /// IVF: number of inverted lists probed.
  int nprobe = 8;
  /// Pre-filter bitmap over row offsets: only rows whose bit is set may be
  /// returned. nullptr means no filtering.
  const common::Bitset* filter = nullptr;
  /// PQ indexes: re-rank (refine) the top sigma*k ADC candidates with exact
  /// distances. 1 disables refinement amplification beyond k.
  int refine_factor = 2;
};

/// Non-owning view of a contiguous float vector.
struct VectorView {
  const float* data = nullptr;
  size_t dim = 0;
};

std::string MetricName(Metric m);

}  // namespace blendhouse::vecindex
