#include "vecindex/index_factory.h"

#include <memory>

#include <cstdlib>

#include "common/io.h"
#include "vecindex/diskann_index.h"
#include "vecindex/flat_index.h"
#include "vecindex/hnsw_index.h"
#include "vecindex/ivf_index.h"

namespace blendhouse::vecindex {

int64_t IndexSpec::GetInt(const std::string& key, int64_t def) const {
  auto it = params.find(key);
  if (it == params.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return def;
  return v;
}

namespace {

/// Parses the optional PRECISION parameter ("fp16" / "bf16" / "int8",
/// defaulting to fp32). Unknown names are a hard error: silently falling
/// back to fp32 would quietly lose the memory and throughput the user
/// asked for.
common::Result<Precision> GetPrecision(const IndexSpec& spec) {
  auto it = spec.params.find("PRECISION");
  if (it == spec.params.end()) return Precision::kFp32;
  Precision p;
  if (!ParsePrecision(it->second, &p))
    return common::Status::InvalidArgument("unknown precision: " + it->second);
  return p;
}

common::Result<VectorIndexPtr> BuildFlat(const IndexSpec& spec) {
  auto precision = GetPrecision(spec);
  if (!precision.ok()) return precision.status();
  return VectorIndexPtr(
      std::make_unique<FlatIndex>(spec.dim, spec.metric, *precision));
}

common::Result<VectorIndexPtr> BuildHnsw(const IndexSpec& spec, bool sq) {
  HnswOptions opts;
  opts.M = static_cast<size_t>(spec.GetInt("M", 16));
  opts.ef_construction =
      static_cast<size_t>(spec.GetInt("EF_CONSTRUCTION", 200));
  opts.seed = static_cast<uint64_t>(spec.GetInt("SEED", 42));
  opts.scalar_quantized = sq;
  auto precision = GetPrecision(spec);
  if (!precision.ok()) return precision.status();
  opts.precision = *precision;
  if (sq && opts.precision != Precision::kFp32)
    return common::Status::InvalidArgument(
        "hnswsq: PRECISION conflicts with SQ8 codes");
  return VectorIndexPtr(std::make_unique<HnswIndex>(spec.dim, spec.metric, opts));
}

common::Result<VectorIndexPtr> BuildDiskAnn(const IndexSpec& spec) {
  DiskAnnOptions opts;
  opts.R = static_cast<size_t>(spec.GetInt("R", 32));
  opts.L_build = static_cast<size_t>(spec.GetInt("L_BUILD", 64));
  opts.pq_m = static_cast<size_t>(spec.GetInt("PQ_M", 8));
  opts.seed = static_cast<uint64_t>(spec.GetInt("SEED", 42));
  opts.simulate_disk_latency = spec.GetInt("SIMULATE_DISK", 1) != 0;
  return VectorIndexPtr(std::make_unique<DiskAnnIndex>(spec.dim, spec.metric, opts));
}

common::Result<VectorIndexPtr> BuildIvfFlat(const IndexSpec& spec) {
  IvfOptions opts;
  opts.nlist = static_cast<size_t>(spec.GetInt("NLIST", 64));
  opts.seed = static_cast<uint64_t>(spec.GetInt("SEED", 42));
  auto precision = GetPrecision(spec);
  if (!precision.ok()) return precision.status();
  return VectorIndexPtr(std::make_unique<IvfFlatIndex>(spec.dim, spec.metric,
                                                       opts, *precision));
}

common::Result<VectorIndexPtr> BuildIvfPq(const IndexSpec& spec,
                                          size_t nbits) {
  IvfOptions ivf;
  ivf.nlist = static_cast<size_t>(spec.GetInt("NLIST", 64));
  ivf.seed = static_cast<uint64_t>(spec.GetInt("SEED", 42));
  IvfPqOptions pq;
  pq.nbits = static_cast<size_t>(spec.GetInt("NBITS", nbits));
  // Default m: largest divisor of dim that is <= dim/4 and <= 16.
  size_t default_m = 8;
  if (spec.dim % default_m != 0) {
    default_m = 1;
    for (size_t c = 2; c <= 16; ++c)
      if (spec.dim % c == 0) default_m = c;
  }
  pq.m = static_cast<size_t>(spec.GetInt("PQ_M", default_m));
  pq.keep_raw_for_refine = spec.GetInt("REFINE", 1) != 0;
  if (spec.dim % pq.m != 0)
    return common::Status::InvalidArgument("ivfpq: dim not divisible by PQ_M");
  return VectorIndexPtr(std::make_unique<IvfPqIndex>(spec.dim, spec.metric, ivf, pq));
}

}  // namespace

IndexFactory::IndexFactory() {
  Register("FLAT", BuildFlat);
  Register("HNSW", [](const IndexSpec& s) { return BuildHnsw(s, false); });
  Register("HNSWSQ", [](const IndexSpec& s) { return BuildHnsw(s, true); });
  Register("IVFFLAT", BuildIvfFlat);
  Register("DISKANN", BuildDiskAnn);
  Register("IVFPQ", [](const IndexSpec& s) { return BuildIvfPq(s, 8); });
  Register("IVFPQFS", [](const IndexSpec& s) { return BuildIvfPq(s, 4); });
}

IndexFactory& IndexFactory::Global() {
  // Intentionally leaked so registrations outlive every static destructor.
  static IndexFactory* factory = new IndexFactory();  // lint:allow(naked-new)
  return *factory;
}

void IndexFactory::Register(const std::string& type, Builder builder) {
  builders_[type] = std::move(builder);
}

bool IndexFactory::Has(const std::string& type) const {
  return builders_.count(type) > 0;
}

std::vector<std::string> IndexFactory::RegisteredTypes() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [type, _] : builders_) out.push_back(type);
  return out;
}

common::Result<VectorIndexPtr> IndexFactory::Create(
    const IndexSpec& spec) const {
  if (spec.dim == 0)
    return common::Status::InvalidArgument("index spec: dim must be set");
  auto it = builders_.find(spec.type);
  if (it == builders_.end())
    return common::Status::NotFound("unknown index type: " + spec.type);
  return it->second(spec);
}

common::Result<VectorIndexPtr> IndexFactory::CreateFromSaved(
    const IndexSpec& spec, std::string_view bytes) const {
  // Every index writes its type name first; peek it to dispatch.
  common::BinaryReader r(bytes);
  std::string type;
  BH_RETURN_IF_ERROR(r.ReadString(&type));
  IndexSpec actual = spec;
  actual.type = type;
  auto created = Create(actual);
  if (!created.ok()) return created.status();
  BH_RETURN_IF_ERROR((*created)->Load(bytes));
  return std::move(*created);
}

}  // namespace blendhouse::vecindex
