#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/io.h"
#include "common/status.h"
#include "vecindex/types.h"

namespace blendhouse::vecindex {

/// SQ8 scalar quantizer: per-dimension min/max affine mapping to uint8.
/// Quarters the memory of float32 vectors while preserving distance order
/// well enough for HNSWSQ (Table VI in the paper: 596 GB -> 238 GB).
class ScalarQuantizer {
 public:
  /// Learns per-dimension [min, max] from `n` training vectors.
  common::Status Train(const float* data, size_t n, size_t dim);

  bool trained() const { return dim_ > 0; }
  size_t dim() const { return dim_; }
  size_t code_size() const { return dim_; }

  /// Encodes one vector into dim() bytes.
  void Encode(const float* v, uint8_t* code) const;
  /// Decodes dim() bytes back into a float vector.
  void Decode(const uint8_t* code, float* v) const;

  /// Squared L2 between a float query and an encoded vector (asymmetric:
  /// the fused SIMD kernel dequantizes into the accumulation, no
  /// materialized float copy).
  float L2SqrToCode(const float* query, const uint8_t* code) const;

  /// Dot product between a float query and an encoded vector (fused
  /// dequantize, same contract as L2SqrToCode).
  float DotToCode(const float* query, const uint8_t* code) const;

  /// Cosine distance (1 - cos) between a float query and an encoded vector.
  /// `query_norm` is the query's precomputed Euclidean magnitude; the decoded
  /// vector's dot and norm come from one fused pass — no decode buffer.
  /// Zero norm on either side yields 1.0 (the shared convention).
  float CosineToCode(const float* query, const uint8_t* code,
                     float query_norm) const;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  size_t dim_ = 0;
  std::vector<float> vmin_;
  std::vector<float> vscale_;  // (max-min)/255, floored to a tiny epsilon
};

/// Reduced-precision packed vector store (DESIGN.md §13): the quantized
/// first-pass tier behind FLAT/IVF/HNSW when an index is built with a
/// `precision` of fp16, bf16, or int8. Rows are packed contiguously in a
/// 64-byte-aligned buffer (2 bytes/dim for the half formats, 1 for int8 —
/// the resident-memory win), scanned by the batched reduced-precision
/// kernels, and never accompanied by raw fp32 copies: the executor reranks
/// survivors from the segment's own vector column.
///
/// int8 uses one symmetric scale (decoded = scale * code) calibrated from
/// the first appended batch (maxabs / 127) — Train() can fix it earlier
/// from a larger sample. Cosine stores each row's decoded magnitude so
/// scans compose the dot kernel with CosineFromDot; all metrics keep the
/// engine-wide "smaller distance = closer" convention.
class PrecisionStore {
 public:
  /// Distances are computed in batches of at most this many rows (matches
  /// the indexes' scan-chunk size); int8 scratch buffers are sized by it.
  static constexpr size_t kMaxBatch = 256;

  void Configure(Precision precision, size_t dim, Metric metric);

  Precision precision() const { return precision_; }
  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  /// Bytes one encoded row occupies.
  size_t row_bytes() const { return dim_ * PrecisionBytes(precision_); }
  /// int8: has the symmetric scale been fixed yet?
  bool calibrated() const;

  /// Fixes the int8 scale from a sample (no-op for the half formats, and
  /// once calibrated). The first Append calls this implicitly.
  void Train(const float* data, size_t n);

  /// Encodes and appends n packed fp32 vectors.
  void Append(const float* data, size_t n);

  /// Per-query scan state. For int8 the query is quantized once here: at
  /// the store scale for L2 (symmetric differences need a shared grid), at
  /// its own scale for dot/cosine (preserves query resolution).
  struct QueryCtx {
    const float* query = nullptr;
    float query_norm = 0.0f;  // Euclidean magnitude; cosine only
    std::vector<int8_t> q8;   // int8 formats only
    float l2_factor = 1.0f;   // int8 L2: scale^2
    float dot_factor = 1.0f;  // int8 dot: query_scale * scale
  };
  void PrepareQuery(const float* query, QueryCtx* ctx) const;

  /// Metric-adjusted distances (smaller = closer) from the prepared query
  /// to rows [first, first + n). n <= kMaxBatch.
  void BatchDistance(const QueryCtx& ctx, size_t first, size_t n,
                     float* out) const;

  /// Same over a gathered tile of n packed codes (row_bytes() apart), with
  /// the matching gathered magnitudes (cosine only, else ignored). Serves
  /// the filter-aware compacted scans.
  void BatchDistanceCodes(const QueryCtx& ctx, const void* codes,
                          const float* norms, size_t n, float* out) const;

  /// Single-row distance straight from the fp32 query (asymmetric kernels);
  /// the graph-walk path, where re-batching per hop would dominate.
  float Distance1(const QueryCtx& ctx, size_t row) const;

  /// Distance1 without a prepared context: derives the cosine query norm on
  /// the fly. For callers whose query changes per call (HNSW construction
  /// compares stored items against each other).
  float DistanceToRow(const float* query, size_t row) const;

  /// Raw encoded row, for prefetch and tile gathering.
  const void* RowPtr(size_t row) const;

  /// Decodes one row back to fp32.
  void Decode(size_t row, float* out) const;

  /// Per-row decoded magnitudes (cosine metric only; else empty).
  const std::vector<float>& norms() const { return norms_; }

  size_t MemoryBytes() const;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  void EncodeRow(const float* v, size_t row);

  Precision precision_ = Precision::kFp16;
  Metric metric_ = Metric::kL2;
  size_t dim_ = 0;
  size_t size_ = 0;
  float scale_ = 0.0f;  // int8: decoded = scale_ * code; 0 = uncalibrated
  common::AlignedVector<uint16_t> half_;  // fp16 / bf16 codes
  common::AlignedVector<int8_t> i8_;      // int8 codes
  std::vector<float> norms_;              // cosine: decoded row magnitudes
};

}  // namespace blendhouse::vecindex
