#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"

namespace blendhouse::vecindex {

/// SQ8 scalar quantizer: per-dimension min/max affine mapping to uint8.
/// Quarters the memory of float32 vectors while preserving distance order
/// well enough for HNSWSQ (Table VI in the paper: 596 GB -> 238 GB).
class ScalarQuantizer {
 public:
  /// Learns per-dimension [min, max] from `n` training vectors.
  common::Status Train(const float* data, size_t n, size_t dim);

  bool trained() const { return dim_ > 0; }
  size_t dim() const { return dim_; }
  size_t code_size() const { return dim_; }

  /// Encodes one vector into dim() bytes.
  void Encode(const float* v, uint8_t* code) const;
  /// Decodes dim() bytes back into a float vector.
  void Decode(const uint8_t* code, float* v) const;

  /// Squared L2 between a float query and an encoded vector (asymmetric:
  /// the fused SIMD kernel dequantizes into the accumulation, no
  /// materialized float copy).
  float L2SqrToCode(const float* query, const uint8_t* code) const;

  /// Dot product between a float query and an encoded vector (fused
  /// dequantize, same contract as L2SqrToCode).
  float DotToCode(const float* query, const uint8_t* code) const;

  /// Cosine distance (1 - cos) between a float query and an encoded vector.
  /// `query_norm` is the query's precomputed Euclidean magnitude; the decoded
  /// vector's dot and norm come from one fused pass — no decode buffer.
  /// Zero norm on either side yields 1.0 (the shared convention).
  float CosineToCode(const float* query, const uint8_t* code,
                     float query_norm) const;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  size_t dim_ = 0;
  std::vector<float> vmin_;
  std::vector<float> vscale_;  // (max-min)/255, floored to a tiny epsilon
};

}  // namespace blendhouse::vecindex
