#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/io.h"
#include "common/result.h"
#include "storage/value.h"

namespace blendhouse::storage {

/// Per-granule min/max marks for numeric columns — the "fine-grained sparse
/// index" of the paper's read-amplification optimization: after a vector
/// search returns scattered row offsets, granule marks let the reader skip
/// granules no requested row falls into and prune range predicates early.
struct GranuleMarks {
  size_t granule_rows = 128;
  std::vector<double> min_vals;
  std::vector<double> max_vals;

  size_t GranuleOf(size_t row) const { return row / granule_rows; }
  size_t NumGranules() const { return min_vals.size(); }

  /// May any row of granule `g` satisfy value in [lo, hi]?
  bool MayContainRange(size_t g, double lo, double hi) const {
    return !(max_vals[g] < lo || min_vals[g] > hi);
  }
};

/// Immutable typed column inside a segment. Numeric columns carry granule
/// marks; string columns carry offsets into a single arena; vector columns
/// are packed floats.
class Column {
 public:
  Column() = default;
  Column(std::string name, ColumnType type, size_t vector_dim = 0)
      : name_(std::move(name)), type_(type), vector_dim_(vector_dim) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return num_rows_; }
  size_t vector_dim() const { return vector_dim_; }

  /// Appends one value; the Value alternative must match the column type.
  common::Status Append(const Value& v);

  int64_t GetInt64(size_t row) const { return ints_[row]; }
  double GetFloat64(size_t row) const { return doubles_[row]; }
  std::string_view GetString(size_t row) const {
    size_t begin = str_offsets_[row];
    size_t end = str_offsets_[row + 1];
    return std::string_view(str_arena_).substr(begin, end - begin);
  }
  const float* GetVector(size_t row) const {
    return vectors_.data() + row * vector_dim_;
  }
  /// Numeric view used by predicate evaluation: Int64 is widened to double.
  double GetNumeric(size_t row) const {
    return type_ == ColumnType::kInt64 ? static_cast<double>(ints_[row])
                                       : doubles_[row];
  }

  Value GetValue(size_t row) const;

  /// Raw packed vector data (vector columns only), 64-byte aligned so flat
  /// scans and index builds start the SIMD kernels on an aligned base.
  const common::AlignedVector<float>& vector_data() const { return vectors_; }

  /// Raw typed storage for columnar predicate kernels (valid only for the
  /// matching column type): tight loops over these emit bitmap words
  /// directly instead of calling GetNumeric per row.
  const std::vector<int64_t>& raw_ints() const { return ints_; }
  const std::vector<double>& raw_doubles() const { return doubles_; }

  /// Builds min/max marks over `granule_rows`-row granules. No-op for
  /// string/vector columns.
  void BuildGranuleMarks(size_t granule_rows = 128);
  const GranuleMarks* granule_marks() const {
    return marks_.NumGranules() > 0 ? &marks_ : nullptr;
  }

  /// Column-level min/max used for segment pruning. Valid only for numeric
  /// columns with at least one row.
  double MinNumeric() const { return col_min_; }
  double MaxNumeric() const { return col_max_; }

  size_t MemoryUsage() const;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  std::string name_;
  ColumnType type_ = ColumnType::kInt64;
  size_t vector_dim_ = 0;
  size_t num_rows_ = 0;

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::string str_arena_;
  std::vector<uint64_t> str_offsets_{0};
  common::AlignedVector<float> vectors_;

  GranuleMarks marks_;
  double col_min_ = std::numeric_limits<double>::max();
  double col_max_ = std::numeric_limits<double>::lowest();
};

}  // namespace blendhouse::storage
