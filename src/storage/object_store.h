#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"

namespace blendhouse::storage {

/// Latency/bandwidth model for a storage tier. The disaggregated
/// architecture's defining property — remote reads cost much more than local
/// ones — is injected here rather than assumed from real hardware.
struct StorageCostModel {
  /// Fixed per-operation latency (microseconds). ~2000us models an
  /// S3/HDFS-class remote store; ~50us models local NVMe.
  int64_t base_latency_micros = 2000;
  /// Throughput in bytes per microsecond (bytes/us). 200 B/us ~= 200 MB/s.
  double bytes_per_micro = 200.0;
  /// Disable sleeping entirely (unit tests).
  bool simulate_latency = true;

  static StorageCostModel Remote() { return {2000, 200.0, true}; }
  static StorageCostModel LocalDisk() { return {50, 2000.0, true}; }
  static StorageCostModel Instant() { return {0, 1e12, false}; }
};

struct ObjectStoreStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  /// Total simulated latency charged by this store's cost model. The
  /// EXPLAIN ANALYZE reconciliation test checks span sim-I/O sums against
  /// the registry mirror of this value.
  std::atomic<uint64_t> sim_latency_micros{0};
};

/// Simulated remote shared storage (the paper's HDFS/S3 tier). Thread-safe
/// in-process key/value store whose every operation pays the configured
/// latency model, with byte/op counters for the benches.
///
/// The cost model is guarded by mu_ (benches swap it between phases while
/// background loaders may still be in flight); latency sleeps happen with a
/// copy of the model, outside the lock.
class ObjectStore {
 public:
  explicit ObjectStore(StorageCostModel cost_model = StorageCostModel::Remote())
      : cost_model_(cost_model) {}

  common::Status Put(const std::string& key, std::string bytes);
  common::Result<std::string> Get(const std::string& key) const;
  bool Exists(const std::string& key) const;
  common::Status Delete(const std::string& key);
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  const ObjectStoreStats& stats() const { return stats_; }
  void ResetStats();

  StorageCostModel cost_model() const {
    common::MutexLock lock(mu_);
    return cost_model_;
  }
  void set_cost_model(StorageCostModel m) {
    common::MutexLock lock(mu_);
    cost_model_ = m;
  }

 private:
  struct Metrics {
    common::metrics::Counter* gets;
    common::metrics::Counter* puts;
    common::metrics::Counter* bytes_read;
    common::metrics::Counter* bytes_written;
    common::metrics::Counter* sim_latency_micros;
  };
  static const Metrics& RegistryMetrics();

  void ChargeLatency(size_t bytes) const;

  mutable common::Mutex mu_{common::lockrank::kObjectStore};
  StorageCostModel cost_model_ GUARDED_BY(mu_);
  std::map<std::string, std::string> objects_ GUARDED_BY(mu_);
  mutable ObjectStoreStats stats_;
};

}  // namespace blendhouse::storage
