#ifndef BLENDHOUSE_STORAGE_OBJECT_STORE_H_
#define BLENDHOUSE_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blendhouse::storage {

/// Latency/bandwidth model for a storage tier. The disaggregated
/// architecture's defining property — remote reads cost much more than local
/// ones — is injected here rather than assumed from real hardware.
struct StorageCostModel {
  /// Fixed per-operation latency (microseconds). ~2000us models an
  /// S3/HDFS-class remote store; ~50us models local NVMe.
  int64_t base_latency_micros = 2000;
  /// Throughput in bytes per microsecond (bytes/us). 200 B/us ~= 200 MB/s.
  double bytes_per_micro = 200.0;
  /// Disable sleeping entirely (unit tests).
  bool simulate_latency = true;

  static StorageCostModel Remote() { return {2000, 200.0, true}; }
  static StorageCostModel LocalDisk() { return {50, 2000.0, true}; }
  static StorageCostModel Instant() { return {0, 1e12, false}; }
};

struct ObjectStoreStats {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

/// Simulated remote shared storage (the paper's HDFS/S3 tier). Thread-safe
/// in-process key/value store whose every operation pays the configured
/// latency model, with byte/op counters for the benches.
class ObjectStore {
 public:
  explicit ObjectStore(StorageCostModel cost_model = StorageCostModel::Remote())
      : cost_model_(cost_model) {}

  common::Status Put(const std::string& key, std::string bytes);
  common::Result<std::string> Get(const std::string& key) const;
  bool Exists(const std::string& key) const;
  common::Status Delete(const std::string& key);
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  const ObjectStoreStats& stats() const { return stats_; }
  void ResetStats();

  const StorageCostModel& cost_model() const { return cost_model_; }
  void set_cost_model(StorageCostModel m) { cost_model_ = m; }

 private:
  void ChargeLatency(size_t bytes) const;

  StorageCostModel cost_model_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
  mutable ObjectStoreStats stats_;
};

}  // namespace blendhouse::storage

#endif  // BLENDHOUSE_STORAGE_OBJECT_STORE_H_
