#include "storage/column.h"

#include <algorithm>

namespace blendhouse::storage {

common::Status Column::Append(const Value& v) {
  switch (type_) {
    case ColumnType::kInt64: {
      const int64_t* p = std::get_if<int64_t>(&v);
      if (p == nullptr)
        return common::Status::InvalidArgument(name_ + ": expected Int64");
      ints_.push_back(*p);
      col_min_ = std::min(col_min_, static_cast<double>(*p));
      col_max_ = std::max(col_max_, static_cast<double>(*p));
      break;
    }
    case ColumnType::kFloat64: {
      const double* p = std::get_if<double>(&v);
      // Accept ints into float columns (SQL literals are often integral).
      double d;
      if (p != nullptr) {
        d = *p;
      } else if (const int64_t* ip = std::get_if<int64_t>(&v)) {
        d = static_cast<double>(*ip);
      } else {
        return common::Status::InvalidArgument(name_ + ": expected Float64");
      }
      doubles_.push_back(d);
      col_min_ = std::min(col_min_, d);
      col_max_ = std::max(col_max_, d);
      break;
    }
    case ColumnType::kString: {
      const std::string* p = std::get_if<std::string>(&v);
      if (p == nullptr)
        return common::Status::InvalidArgument(name_ + ": expected String");
      str_arena_ += *p;
      str_offsets_.push_back(str_arena_.size());
      break;
    }
    case ColumnType::kFloatVector: {
      const std::vector<float>* p = std::get_if<std::vector<float>>(&v);
      if (p == nullptr)
        return common::Status::InvalidArgument(name_ + ": expected vector");
      if (vector_dim_ == 0) vector_dim_ = p->size();
      if (p->size() != vector_dim_)
        return common::Status::InvalidArgument(
            name_ + ": vector dim mismatch");
      vectors_.insert(vectors_.end(), p->begin(), p->end());
      break;
    }
  }
  ++num_rows_;
  return common::Status::Ok();
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case ColumnType::kInt64:
      return ints_[row];
    case ColumnType::kFloat64:
      return doubles_[row];
    case ColumnType::kString:
      return std::string(GetString(row));
    case ColumnType::kFloatVector:
      return std::vector<float>(GetVector(row), GetVector(row) + vector_dim_);
  }
  return int64_t{0};
}

void Column::BuildGranuleMarks(size_t granule_rows) {
  if (type_ != ColumnType::kInt64 && type_ != ColumnType::kFloat64) return;
  marks_ = GranuleMarks{};
  marks_.granule_rows = granule_rows;
  for (size_t g = 0; g * granule_rows < num_rows_; ++g) {
    double mn = std::numeric_limits<double>::max();
    double mx = std::numeric_limits<double>::lowest();
    size_t end = std::min(num_rows_, (g + 1) * granule_rows);
    for (size_t i = g * granule_rows; i < end; ++i) {
      double v = GetNumeric(i);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    marks_.min_vals.push_back(mn);
    marks_.max_vals.push_back(mx);
  }
}

size_t Column::MemoryUsage() const {
  return ints_.size() * sizeof(int64_t) + doubles_.size() * sizeof(double) +
         str_arena_.size() + str_offsets_.size() * sizeof(uint64_t) +
         vectors_.size() * sizeof(float) +
         (marks_.min_vals.size() + marks_.max_vals.size()) * sizeof(double);
}

void Column::Serialize(common::BinaryWriter* w) const {
  w->WriteString(name_);
  w->Write<uint8_t>(static_cast<uint8_t>(type_));
  w->Write<uint64_t>(vector_dim_);
  w->Write<uint64_t>(num_rows_);
  w->WriteVector(ints_);
  w->WriteVector(doubles_);
  w->WriteString(str_arena_);
  w->WriteVector(str_offsets_);
  w->WriteVector(vectors_);
  w->Write<uint64_t>(marks_.granule_rows);
  w->WriteVector(marks_.min_vals);
  w->WriteVector(marks_.max_vals);
  w->Write<double>(col_min_);
  w->Write<double>(col_max_);
}

common::Status Column::Deserialize(common::BinaryReader* r) {
  uint8_t type = 0;
  uint64_t dim = 0, rows = 0, granule = 0;
  BH_RETURN_IF_ERROR(r->ReadString(&name_));
  BH_RETURN_IF_ERROR(r->Read(&type));
  BH_RETURN_IF_ERROR(r->Read(&dim));
  BH_RETURN_IF_ERROR(r->Read(&rows));
  type_ = static_cast<ColumnType>(type);
  vector_dim_ = dim;
  num_rows_ = rows;
  BH_RETURN_IF_ERROR(r->ReadVector(&ints_));
  BH_RETURN_IF_ERROR(r->ReadVector(&doubles_));
  BH_RETURN_IF_ERROR(r->ReadString(&str_arena_));
  BH_RETURN_IF_ERROR(r->ReadVector(&str_offsets_));
  BH_RETURN_IF_ERROR(r->ReadVector(&vectors_));
  BH_RETURN_IF_ERROR(r->Read(&granule));
  marks_.granule_rows = granule;
  BH_RETURN_IF_ERROR(r->ReadVector(&marks_.min_vals));
  BH_RETURN_IF_ERROR(r->ReadVector(&marks_.max_vals));
  BH_RETURN_IF_ERROR(r->Read(&col_min_));
  BH_RETURN_IF_ERROR(r->Read(&col_max_));
  return common::Status::Ok();
}

}  // namespace blendhouse::storage
