#include "storage/lsm_engine.h"

#include <algorithm>
#include <future>
#include <map>

#include "common/assert.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "vecindex/auto_index.h"
#include "vecindex/index_factory.h"

namespace blendhouse::storage {

namespace {

/// Process-wide LSM registry metrics (summed over engines/tables).
struct LsmMetrics {
  common::metrics::Counter* rows_ingested;
  common::metrics::Counter* flushes;
  common::metrics::Counter* segments_flushed;
  common::metrics::Counter* compactions;
  common::metrics::Gauge* memtable_rows;
  common::metrics::HistogramMetric* index_build_micros;
  common::metrics::HistogramMetric* segment_write_micros;
};

const LsmMetrics& EngineMetrics() {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  static const LsmMetrics m{
      reg.GetCounter("bh_lsm_rows_ingested_total"),
      reg.GetCounter("bh_lsm_flushes_total"),
      reg.GetCounter("bh_lsm_segments_flushed_total"),
      reg.GetCounter("bh_lsm_compactions_total"),
      reg.GetGauge("bh_lsm_memtable_rows"),
      reg.GetHistogram("bh_lsm_index_build_micros"),
      reg.GetHistogram("bh_lsm_segment_write_micros"),
  };
  return m;
}

}  // namespace

Row RowFromSegment(const Segment& segment, size_t i) {
  Row row;
  row.values.reserve(segment.num_columns());
  for (size_t c = 0; c < segment.num_columns(); ++c)
    row.values.push_back(segment.column(c).GetValue(i));
  return row;
}

LsmEngine::LsmEngine(TableSchema schema, ObjectStore* store,
                     common::ThreadPool* index_pool, IngestOptions options)
    : LsmEngine(std::move(schema), store,
                std::vector<common::ThreadPool*>{index_pool}, options) {}

LsmEngine::LsmEngine(TableSchema schema, ObjectStore* store,
                     std::vector<common::ThreadPool*> index_pools,
                     IngestOptions options)
    : schema_(std::move(schema)),
      store_(store),
      index_pools_(std::move(index_pools)),
      options_(options) {
  BH_ASSERT_MSG(!index_pools_.empty(), "LsmEngine needs an index-build pool");
  if (options_.async_flush)
    flush_pool_ = std::make_unique<common::ThreadPool>(1);
}

LsmEngine::~LsmEngine() {
  // Joining the flush thread first guarantees no background task touches
  // versions_/stats_ mid-destruction.
  flush_pool_.reset();
}

std::string LsmEngine::NextSegmentId() {
  return schema_.table_name + "_seg_" +
         std::to_string(segment_counter_.fetch_add(1));
}

size_t LsmEngine::MemtableRows() const {
  common::MutexLock lock(memtable_mu_);
  return memtable_.size();
}

common::Status LsmEngine::Insert(std::vector<Row> rows) {
  size_t num_rows = rows.size();
  std::vector<Row> to_flush;
  size_t memtable_rows = 0;
  {
    common::MutexLock lock(memtable_mu_);
    for (Row& r : rows) memtable_.push_back(std::move(r));
    if (memtable_.size() >= options_.flush_threshold_rows)
      to_flush = std::move(memtable_);
    memtable_rows = memtable_.size();
  }
  stats_.rows_ingested.fetch_add(num_rows, std::memory_order_relaxed);
  EngineMetrics().rows_ingested->Add(num_rows);
  EngineMetrics().memtable_rows->Set(static_cast<int64_t>(memtable_rows));
  if (to_flush.empty()) return common::Status::Ok();
  if (flush_pool_ == nullptr) return FlushBatch(std::move(to_flush));
  // Async ingestion pipeline: hand the batch to the background flusher so
  // the client's next Insert proceeds while indexes build.
  {
    common::MutexLock lock(pending_mu_);
    pending_flushes_.push_back(flush_pool_->Submit(
        [this, batch = std::move(to_flush)]() mutable {
          return FlushBatch(std::move(batch));
        }));
  }
  return common::Status::Ok();
}

common::Status LsmEngine::DrainPendingFlushes() {
  std::vector<std::future<common::Status>> pending;
  {
    common::MutexLock lock(pending_mu_);
    pending = std::move(pending_flushes_);
  }
  common::Status status;
  for (auto& fut : pending) {
    common::Status s = fut.get();
    if (!s.ok() && status.ok()) status = s;
  }
  return status;
}

common::Status LsmEngine::Flush() {
  std::vector<Row> to_flush;
  {
    common::MutexLock lock(memtable_mu_);
    to_flush = std::move(memtable_);
  }
  EngineMetrics().memtable_rows->Set(0);
  common::Status tail;
  if (!to_flush.empty()) tail = FlushBatch(std::move(to_flush));
  common::Status drained = DrainPendingFlushes();
  return tail.ok() ? drained : tail;
}

common::Status LsmEngine::EnsureSemanticPartitioner(
    const std::vector<Row>& rows) {
  if (schema_.semantic_buckets == 0 || semantic_partitioner() != nullptr)
    return common::Status::Ok();
  if (schema_.vector_column < 0)
    return common::Status::InvalidArgument(
        "CLUSTER BY requires a vector column");
  // Train on (a sample of) the first flush batch.
  size_t dim = schema_.VectorDim();
  std::vector<float> sample;
  size_t max_sample = 20000;
  for (const Row& r : rows) {
    const auto* vec =
        std::get_if<std::vector<float>>(&r.values[schema_.vector_column]);
    if (vec == nullptr || vec->size() != dim)
      return common::Status::InvalidArgument("bad vector in ingest batch");
    sample.insert(sample.end(), vec->begin(), vec->end());
    if (sample.size() / dim >= max_sample) break;
  }
  // Train into a private instance, then publish it as an immutable snapshot
  // — queries pruning concurrently only ever see a fully trained partitioner.
  auto fresh = std::make_shared<SemanticPartitioner>();
  BH_RETURN_IF_ERROR(fresh->Train(sample.data(), sample.size() / dim, dim,
                                  schema_.semantic_buckets));
  // Persist centroids so query-side pruning sees the same mapping.
  std::string bytes;
  common::BinaryWriter w(&bytes);
  fresh->Serialize(&w);
  BH_RETURN_IF_ERROR(store_->Put(
      "tables/" + schema_.table_name + "/partitioner", std::move(bytes)));
  {
    common::MutexLock lock(partitioner_mu_);
    semantic_partitioner_ = std::move(fresh);
  }
  return common::Status::Ok();
}

common::Result<std::vector<SegmentPtr>> LsmEngine::BuildSegments(
    std::vector<Row> rows) {
  std::shared_ptr<const SemanticPartitioner> partitioner =
      semantic_partitioner();
  // Group rows by (scalar partition key, semantic bucket).
  std::map<std::pair<std::string, int64_t>, std::vector<Row>> groups;
  for (Row& row : rows) {
    std::string key = ScalarPartitionKey(schema_, row);
    int64_t bucket = -1;
    if (partitioner != nullptr && schema_.vector_column >= 0) {
      const auto* vec =
          std::get_if<std::vector<float>>(&row.values[schema_.vector_column]);
      if (vec != nullptr) bucket = partitioner->AssignBucket(vec->data());
    }
    groups[{std::move(key), bucket}].push_back(std::move(row));
  }

  std::vector<SegmentPtr> segments;
  for (auto& [group_key, group_rows] : groups) {
    for (size_t begin = 0; begin < group_rows.size();
         begin += options_.max_segment_rows) {
      size_t end =
          std::min(group_rows.size(), begin + options_.max_segment_rows);
      SegmentBuilder builder(schema_, NextSegmentId());
      builder.SetPartitionKey(group_key.first);
      builder.SetSemanticBucket(group_key.second);
      for (size_t i = begin; i < end; ++i)
        BH_RETURN_IF_ERROR(builder.AppendRow(group_rows[i]));
      auto segment = builder.Finish();
      if (!segment.ok()) return segment.status();
      BH_DCHECK_MSG((*segment)->num_rows() > 0 &&
                        (*segment)->num_rows() <= options_.max_segment_rows,
                    "flushed segment violates the row bound");
      segments.push_back(std::move(*segment));
    }
  }
  return segments;
}

common::Status LsmEngine::BuildAndStoreIndex(const Segment& segment) {
  if (!schema_.index_spec.has_value() || schema_.vector_column < 0)
    return common::Status::Ok();
  common::metrics::ScopedTimer timer(EngineMetrics().index_build_micros);
  vecindex::IndexSpec spec = *schema_.index_spec;
  if (options_.auto_tune_index)
    spec = vecindex::AutoTuneSpec(spec, segment.num_rows());
  auto index = vecindex::IndexFactory::Global().Create(spec);
  if (!index.ok()) return index.status();

  const Column& vec_col = segment.column(schema_.vector_column);
  const common::AlignedVector<float>& data = vec_col.vector_data();
  size_t n = segment.num_rows();
  std::vector<vecindex::IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<vecindex::IdType>(i);
  if ((*index)->NeedsTraining())
    BH_RETURN_IF_ERROR((*index)->Train(data.data(), n));
  BH_RETURN_IF_ERROR((*index)->AddWithIds(data.data(), ids.data(), n));

  std::string bytes;
  BH_RETURN_IF_ERROR((*index)->Save(&bytes));
  BH_RETURN_IF_ERROR(store_->Put(
      SegmentKeys::Index(schema_.table_name, segment.meta().segment_id),
      std::move(bytes)));
  stats_.indexes_built.fetch_add(1, std::memory_order_relaxed);
  stats_.index_build_micros.fetch_add(
      static_cast<uint64_t>(timer.ElapsedMicros()),
      std::memory_order_relaxed);
  return common::Status::Ok();
}

common::Status LsmEngine::FlushBatch(std::vector<Row> rows) {
  common::MutexLock lock(flush_mu_);
  BH_RETURN_IF_ERROR(EnsureSemanticPartitioner(rows));
  auto segments = BuildSegments(std::move(rows));
  if (!segments.ok()) return segments.status();

  std::vector<std::future<common::Status>> index_builds;
  common::Status index_status;
  for (const SegmentPtr& segment : *segments) {
    {
      common::metrics::ScopedTimer write_timer(
          EngineMetrics().segment_write_micros);
      BH_RETURN_IF_ERROR(store_->Put(
          SegmentKeys::Data(schema_.table_name, segment->meta().segment_id),
          segment->SerializeToString()));
      stats_.segment_write_micros.fetch_add(
          static_cast<uint64_t>(write_timer.ElapsedMicros()),
          std::memory_order_relaxed);
    }
    if (!options_.build_index_on_ingest) continue;
    if (options_.pipelined_index_build) {
      // Index of this segment builds while the next segment is written.
      index_builds.push_back(NextIndexPool()->Submit(
          [this, segment] { return BuildAndStoreIndex(*segment); }));
    } else {
      BH_RETURN_IF_ERROR(BuildAndStoreIndex(*segment));
    }
  }
  for (auto& fut : index_builds) {
    common::Status s = fut.get();
    if (!s.ok() && index_status.ok()) index_status = s;
  }
  BH_RETURN_IF_ERROR(index_status);

  std::vector<SegmentMeta> metas;
  metas.reserve(segments->size());
  for (const SegmentPtr& s : *segments) metas.push_back(s->meta());
  versions_.AddSegments(metas);
  stats_.segments_flushed.fetch_add(segments->size(),
                                    std::memory_order_relaxed);
  EngineMetrics().flushes->Add(1);
  EngineMetrics().segments_flushed->Add(segments->size());
  return common::Status::Ok();
}

common::Status LsmEngine::DeleteRows(
    const std::string& segment_id, const std::vector<uint64_t>& row_offsets) {
  return versions_.MarkDeleted(segment_id, row_offsets);
}

common::Result<SegmentPtr> LsmEngine::FetchSegment(
    const std::string& segment_id) const {
  auto bytes = store_->Get(SegmentKeys::Data(schema_.table_name, segment_id));
  if (!bytes.ok()) return bytes.status();
  return Segment::Deserialize(*bytes);
}

common::Status LsmEngine::CompactGroup(const std::vector<SegmentMeta>& group) {
  TableSnapshot snap = versions_.Snapshot();
  // Merge surviving rows of the group into new, larger segments.
  std::vector<std::string> removed;
  uint32_t max_level = 0;
  SegmentBuilder* builder = nullptr;
  std::vector<std::unique_ptr<SegmentBuilder>> builders;
  std::vector<SegmentPtr> merged;

  auto finish_builder = [&]() -> common::Status {
    if (builder == nullptr || builder->num_rows() == 0) return common::Status::Ok();
    auto segment = builder->Finish();
    if (!segment.ok()) return segment.status();
    merged.push_back(std::move(*segment));
    builder = nullptr;
    return common::Status::Ok();
  };

  for (const SegmentMeta& meta : group) {
    auto segment = FetchSegment(meta.segment_id);
    if (!segment.ok()) return segment.status();
    const common::Bitset* deletes = snap.DeletesFor(meta.segment_id);
    max_level = std::max(max_level, meta.level);
    for (size_t i = 0; i < (*segment)->num_rows(); ++i) {
      if (deletes != nullptr && deletes->Test(i)) continue;  // drop deleted
      if (builder == nullptr) {
        builders.push_back(
            std::make_unique<SegmentBuilder>(schema_, NextSegmentId()));
        builder = builders.back().get();
        builder->SetPartitionKey(meta.partition_key);
        builder->SetSemanticBucket(meta.semantic_bucket);
      }
      BH_RETURN_IF_ERROR(builder->AppendRow(RowFromSegment(**segment, i)));
      if (builder->num_rows() >= options_.compaction_target_rows)
        BH_RETURN_IF_ERROR(finish_builder());
    }
    removed.push_back(meta.segment_id);
  }
  BH_RETURN_IF_ERROR(finish_builder());

  std::vector<SegmentMeta> added;
  for (const SegmentPtr& segment : merged) {
    segment->mutable_meta().level = max_level + 1;
    BH_RETURN_IF_ERROR(store_->Put(
        SegmentKeys::Data(schema_.table_name, segment->meta().segment_id),
        segment->SerializeToString()));
    // Vector index consolidation rides on compaction (paper §III-B).
    BH_RETURN_IF_ERROR(BuildAndStoreIndex(*segment));
    added.push_back(segment->meta());
  }
  BH_RETURN_IF_ERROR(versions_.ReplaceSegments(removed, added));
  // Old segment payloads are garbage; drop them from the store.
  for (const std::string& id : removed) {
    (void)store_->Delete(SegmentKeys::Data(schema_.table_name, id));
    (void)store_->Delete(SegmentKeys::Index(schema_.table_name, id));
  }
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics().compactions->Add(1);
  return common::Status::Ok();
}

common::Result<size_t> LsmEngine::Compact() {
  common::MutexLock lock(flush_mu_);
  TableSnapshot snap = versions_.Snapshot();
  std::map<std::pair<std::string, int64_t>, std::vector<SegmentMeta>> groups;
  for (const SegmentMeta& m : snap.segments)
    groups[{m.partition_key, m.semantic_bucket}].push_back(m);
  size_t jobs = 0;
  for (auto& [_, group] : groups) {
    bool has_deletes = false;
    for (const SegmentMeta& m : group)
      if (snap.DeletesFor(m.segment_id) != nullptr) has_deletes = true;
    if (group.size() < 2 && !has_deletes) continue;
    BH_RETURN_IF_ERROR(CompactGroup(group));
    ++jobs;
  }
  return jobs;
}

common::Result<size_t> LsmEngine::CompactIfNeeded() {
  common::MutexLock lock(flush_mu_);
  TableSnapshot snap = versions_.Snapshot();
  std::map<std::pair<std::string, int64_t>, std::vector<SegmentMeta>> groups;
  for (const SegmentMeta& m : snap.segments)
    groups[{m.partition_key, m.semantic_bucket}].push_back(m);
  size_t jobs = 0;
  for (auto& [_, group] : groups) {
    if (group.size() < options_.compaction_trigger_segments) continue;
    BH_RETURN_IF_ERROR(CompactGroup(group));
    ++jobs;
  }
  return jobs;
}

}  // namespace blendhouse::storage
