#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/segment.h"

namespace blendhouse::storage {

/// One table's consistent view: live segments and their delete bitmaps at a
/// point in time. Bitmaps are shared immutable snapshots (copy-on-write in
/// the VersionSet), so a snapshot stays valid while updates proceed.
struct TableSnapshot {
  uint64_t version = 0;
  std::vector<SegmentMeta> segments;
  /// segment_id -> delete bitmap; absent means no deletions.
  std::map<std::string, std::shared_ptr<const common::Bitset>> delete_bitmaps;
  /// segment_id -> count of MarkDeleted commits against that segment; absent
  /// means 0 (never deleted from). Keys worker-level filter-bitmap caches:
  /// a cached bitmap is valid exactly while (segment_id, epoch) is unchanged,
  /// and compaction produces fresh segment ids so replaced segments can never
  /// alias a stale entry.
  std::map<std::string, uint64_t> delete_epochs;

  const common::Bitset* DeletesFor(const std::string& segment_id) const {
    auto it = delete_bitmaps.find(segment_id);
    return it == delete_bitmaps.end() ? nullptr : it->second.get();
  }

  uint64_t DeleteEpochFor(const std::string& segment_id) const {
    auto it = delete_epochs.find(segment_id);
    return it == delete_epochs.end() ? 0 : it->second;
  }

  uint64_t TotalRows() const {
    uint64_t n = 0;
    for (const auto& s : segments) n += s.num_rows;
    return n;
  }
  uint64_t TotalDeletedRows() const {
    uint64_t n = 0;
    for (const auto& [_, bm] : delete_bitmaps) n += bm->Count();
    return n;
  }
};

/// Multi-version commit state for one table (paper Fig. 6): updates never
/// touch committed segments; they add new segments and flip bits in
/// copy-on-write delete bitmaps. Compaction atomically replaces a set of
/// segments (dropping their bitmaps) with merged ones.
class VersionSet {
 public:
  /// Commits freshly flushed segments. Segment ids must be fresh — a
  /// re-committed id would silently shadow live data, so it aborts.
  void AddSegments(const std::vector<SegmentMeta>& metas) EXCLUDES(mu_);

  /// Atomic compaction commit: removes `removed_ids` (and their delete
  /// bitmaps) and adds `added` in one version bump.
  common::Status ReplaceSegments(const std::vector<std::string>& removed_ids,
                                 const std::vector<SegmentMeta>& added)
      EXCLUDES(mu_);

  /// Marks rows of one segment deleted (update/delete path). Copy-on-write:
  /// existing snapshots are unaffected.
  common::Status MarkDeleted(const std::string& segment_id,
                             const std::vector<uint64_t>& row_offsets)
      EXCLUDES(mu_);

  TableSnapshot Snapshot() const EXCLUDES(mu_);
  uint64_t CurrentVersion() const EXCLUDES(mu_);
  size_t NumSegments() const EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::lockrank::kVersionSet};
  uint64_t version_ GUARDED_BY(mu_) = 0;
  std::map<std::string, SegmentMeta> segments_ GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const common::Bitset>> deletes_
      GUARDED_BY(mu_);
  std::map<std::string, uint64_t> delete_epochs_ GUARDED_BY(mu_);
};

}  // namespace blendhouse::storage
