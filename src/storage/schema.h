#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"
#include "vecindex/index_factory.h"

namespace blendhouse::storage {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// Table definition shared by storage, planning, and execution. Mirrors the
/// paper's Example 1: scalar columns, a vector column with an ANN index
/// spec, scalar PARTITION BY columns, and semantic CLUSTER BY buckets.
struct TableSchema {
  std::string table_name;
  std::vector<ColumnDef> columns;

  /// Vector index definition attached to the vector column, if any.
  std::optional<vecindex::IndexSpec> index_spec;
  /// Column the index is defined on; -1 when there is no vector column.
  int vector_column = -1;

  /// Scalar partitioning: indexes of PARTITION BY columns.
  std::vector<int> partition_columns;
  /// Semantic partitioning: CLUSTER BY <vector_column> INTO n BUCKETS.
  /// 0 disables semantic partitioning.
  size_t semantic_buckets = 0;

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i)
      if (columns[i].name == name) return static_cast<int>(i);
    return -1;
  }

  size_t VectorDim() const {
    return index_spec.has_value() ? index_spec->dim : 0;
  }
};

}  // namespace blendhouse::storage
