#include "storage/partitioner.h"

#include <algorithm>
#include <cstdio>

#include "vecindex/distance.h"
#include "vecindex/kmeans.h"

namespace blendhouse::storage {

namespace {
std::string ValueToKeyPart(const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const double* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
    return buf;
  }
  if (const std::string* s = std::get_if<std::string>(&v)) return *s;
  return "<vec>";
}
}  // namespace

std::string ScalarPartitionKey(const TableSchema& schema, const Row& row) {
  std::string key;
  for (size_t i = 0; i < schema.partition_columns.size(); ++i) {
    if (i > 0) key += '|';
    int col = schema.partition_columns[i];
    if (col >= 0 && static_cast<size_t>(col) < row.values.size())
      key += ValueToKeyPart(row.values[col]);
  }
  return key;
}

common::Status SemanticPartitioner::Train(const float* data, size_t n,
                                          size_t dim, size_t buckets,
                                          uint64_t seed) {
  vecindex::KMeansOptions opts;
  opts.k = buckets;
  opts.seed = seed;
  auto km = vecindex::RunKMeans(data, n, dim, opts);
  if (!km.ok()) return km.status();
  dim_ = dim;
  centroids_ = std::move(km->centroids);
  return common::Status::Ok();
}

int64_t SemanticPartitioner::AssignBucket(const float* vec) const {
  return static_cast<int64_t>(
      vecindex::NearestCentroid(vec, centroids_.data(), num_buckets(), dim_));
}

std::vector<int64_t> SemanticPartitioner::RankBuckets(
    const float* query) const {
  size_t k = num_buckets();
  std::vector<std::pair<float, int64_t>> ranked(k);
  for (size_t b = 0; b < k; ++b)
    ranked[b] = {vecindex::L2Sqr(query, centroids_.data() + b * dim_, dim_),
                 static_cast<int64_t>(b)};
  std::sort(ranked.begin(), ranked.end());
  std::vector<int64_t> out(k);
  for (size_t b = 0; b < k; ++b) out[b] = ranked[b].second;
  return out;
}

void SemanticPartitioner::Serialize(common::BinaryWriter* w) const {
  w->Write<uint64_t>(dim_);
  w->WriteVector(centroids_);
}

common::Status SemanticPartitioner::Deserialize(common::BinaryReader* r) {
  uint64_t dim = 0;
  BH_RETURN_IF_ERROR(r->Read(&dim));
  dim_ = dim;
  BH_RETURN_IF_ERROR(r->ReadVector(&centroids_));
  if (dim_ != 0 && centroids_.size() % dim_ != 0)
    return common::Status::Corruption("partitioner: centroid shape");
  return common::Status::Ok();
}

}  // namespace blendhouse::storage
