#include "storage/segment.h"

namespace blendhouse::storage {

void SegmentMeta::Serialize(common::BinaryWriter* w) const {
  w->WriteString(segment_id);
  w->WriteString(table_name);
  w->Write<uint64_t>(num_rows);
  w->WriteString(partition_key);
  w->Write<int64_t>(semantic_bucket);
  w->WriteVector(centroid);
  w->Write<uint64_t>(numeric_ranges.size());
  for (const auto& [name, range] : numeric_ranges) {
    w->WriteString(name);
    w->Write<double>(range.first);
    w->Write<double>(range.second);
  }
  w->Write<uint32_t>(level);
}

common::Status SegmentMeta::Deserialize(common::BinaryReader* r) {
  BH_RETURN_IF_ERROR(r->ReadString(&segment_id));
  BH_RETURN_IF_ERROR(r->ReadString(&table_name));
  BH_RETURN_IF_ERROR(r->Read(&num_rows));
  BH_RETURN_IF_ERROR(r->ReadString(&partition_key));
  BH_RETURN_IF_ERROR(r->Read(&semantic_bucket));
  BH_RETURN_IF_ERROR(r->ReadVector(&centroid));
  uint64_t num_ranges = 0;
  BH_RETURN_IF_ERROR(r->Read(&num_ranges));
  numeric_ranges.clear();
  for (uint64_t i = 0; i < num_ranges; ++i) {
    std::string name;
    double lo = 0, hi = 0;
    BH_RETURN_IF_ERROR(r->ReadString(&name));
    BH_RETURN_IF_ERROR(r->Read(&lo));
    BH_RETURN_IF_ERROR(r->Read(&hi));
    numeric_ranges[name] = {lo, hi};
  }
  BH_RETURN_IF_ERROR(r->Read(&level));
  return common::Status::Ok();
}

const Column* Segment::FindColumn(const std::string& name) const {
  for (const Column& c : columns_)
    if (c.name() == name) return &c;
  return nullptr;
}

size_t Segment::MemoryUsage() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.MemoryUsage();
  return bytes;
}

std::string Segment::SerializeToString() const {
  std::string out;
  common::BinaryWriter w(&out);
  meta_.Serialize(&w);
  w.Write<uint64_t>(columns_.size());
  for (const Column& c : columns_) c.Serialize(&w);
  return out;
}

common::Result<SegmentPtr> Segment::Deserialize(std::string_view bytes) {
  auto segment = std::make_shared<Segment>();
  common::BinaryReader r(bytes);
  BH_RETURN_IF_ERROR(segment->meta_.Deserialize(&r));
  uint64_t num_columns = 0;
  BH_RETURN_IF_ERROR(r.Read(&num_columns));
  segment->columns_.resize(num_columns);
  for (Column& c : segment->columns_) BH_RETURN_IF_ERROR(c.Deserialize(&r));
  return segment;
}

SegmentBuilder::SegmentBuilder(const TableSchema& schema,
                               std::string segment_id)
    : schema_(schema), segment_id_(std::move(segment_id)) {
  columns_.reserve(schema.columns.size());
  for (const ColumnDef& def : schema.columns)
    columns_.emplace_back(def.name, def.type,
                          def.type == ColumnType::kFloatVector
                              ? schema.VectorDim()
                              : 0);
}

common::Status SegmentBuilder::AppendRow(const Row& row) {
  if (row.values.size() != columns_.size())
    return common::Status::InvalidArgument("row arity mismatch");
  for (size_t i = 0; i < columns_.size(); ++i)
    BH_RETURN_IF_ERROR(columns_[i].Append(row.values[i]));
  ++num_rows_;
  return common::Status::Ok();
}

common::Result<SegmentPtr> SegmentBuilder::Finish() {
  if (num_rows_ == 0)
    return common::Status::InvalidArgument("empty segment");
  auto segment = std::make_shared<Segment>();
  segment->meta_.segment_id = segment_id_;
  segment->meta_.table_name = schema_.table_name;
  segment->meta_.num_rows = num_rows_;
  segment->meta_.partition_key = partition_key_;
  segment->meta_.semantic_bucket = semantic_bucket_;

  for (Column& c : columns_) {
    c.BuildGranuleMarks();
    if ((c.type() == ColumnType::kInt64 ||
         c.type() == ColumnType::kFloat64) &&
        c.size() > 0)
      segment->meta_.numeric_ranges[c.name()] = {c.MinNumeric(),
                                                 c.MaxNumeric()};
  }

  // Centroid = mean vector; the semantic-pruning distance target.
  if (schema_.vector_column >= 0) {
    const Column& vec = columns_[schema_.vector_column];
    size_t dim = vec.vector_dim();
    if (dim > 0) {
      std::vector<double> sum(dim, 0.0);
      for (size_t i = 0; i < num_rows_; ++i) {
        const float* v = vec.GetVector(i);
        for (size_t d = 0; d < dim; ++d) sum[d] += v[d];
      }
      segment->meta_.centroid.resize(dim);
      for (size_t d = 0; d < dim; ++d)
        segment->meta_.centroid[d] =
            static_cast<float>(sum[d] / static_cast<double>(num_rows_));
    }
  }

  segment->columns_ = std::move(columns_);
  return segment;
}

}  // namespace blendhouse::storage
