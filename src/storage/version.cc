#include "storage/version.h"

#include "common/assert.h"

namespace blendhouse::storage {

void VersionSet::AddSegments(const std::vector<SegmentMeta>& metas) {
  common::MutexLock lock(mu_);
  for (const SegmentMeta& m : metas) {
    BH_ASSERT_MSG(segments_.count(m.segment_id) == 0,
                  "flush re-committed a live segment id");
    segments_[m.segment_id] = m;
  }
  ++version_;
}

common::Status VersionSet::ReplaceSegments(
    const std::vector<std::string>& removed_ids,
    const std::vector<SegmentMeta>& added) {
  common::MutexLock lock(mu_);
  for (const std::string& id : removed_ids) {
    if (segments_.count(id) == 0)
      return common::Status::NotFound("compaction input gone: " + id);
  }
  for (const std::string& id : removed_ids) {
    segments_.erase(id);
    deletes_.erase(id);
    delete_epochs_.erase(id);
  }
  for (const SegmentMeta& m : added) {
    BH_INVARIANT(segments_.count(m.segment_id) == 0,
                 "compaction output collides with a live segment id");
    BH_INVARIANT(deletes_.count(m.segment_id) == 0,
                 "compaction output inherits a stale delete bitmap");
    segments_[m.segment_id] = m;
  }
  ++version_;
  return common::Status::Ok();
}

common::Status VersionSet::MarkDeleted(
    const std::string& segment_id, const std::vector<uint64_t>& row_offsets) {
  common::MutexLock lock(mu_);
  auto seg_it = segments_.find(segment_id);
  if (seg_it == segments_.end())
    return common::Status::NotFound("segment: " + segment_id);

  // Copy-on-write so outstanding snapshots keep their old bitmap.
  auto fresh = std::make_shared<common::Bitset>(seg_it->second.num_rows);
  auto old_it = deletes_.find(segment_id);
  if (old_it != deletes_.end()) {
    BH_INVARIANT(old_it->second->size() == seg_it->second.num_rows,
                 "delete bitmap size diverged from segment row count");
    *fresh = *old_it->second;
  }
  for (uint64_t row : row_offsets) {
    if (row >= seg_it->second.num_rows)
      return common::Status::InvalidArgument("delete offset out of range");
    fresh->Set(row);
  }
  deletes_[segment_id] = std::move(fresh);
  ++delete_epochs_[segment_id];
  ++version_;
  return common::Status::Ok();
}

TableSnapshot VersionSet::Snapshot() const {
  common::MutexLock lock(mu_);
  TableSnapshot snap;
  snap.version = version_;
  snap.segments.reserve(segments_.size());
  for (const auto& [_, meta] : segments_) snap.segments.push_back(meta);
  snap.delete_bitmaps = deletes_;
  snap.delete_epochs = delete_epochs_;
  return snap;
}

uint64_t VersionSet::CurrentVersion() const {
  common::MutexLock lock(mu_);
  return version_;
}

size_t VersionSet::NumSegments() const {
  common::MutexLock lock(mu_);
  return segments_.size();
}

}  // namespace blendhouse::storage
