#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace blendhouse::storage {

/// Lightweight segment descriptor kept in the catalog/version set. The
/// scheduler prunes on this without fetching segment data: scalar pruning
/// uses partition_key and numeric min/max; semantic pruning uses the
/// centroid (paper §IV-B).
struct SegmentMeta {
  std::string segment_id;
  std::string table_name;
  uint64_t num_rows = 0;
  /// Encoded scalar PARTITION BY value, e.g. "20241010|animal". Empty when
  /// the table is unpartitioned.
  std::string partition_key;
  /// Semantic bucket id under CLUSTER BY, or -1.
  int64_t semantic_bucket = -1;
  /// Mean of the segment's vectors (semantic pruning distance target).
  std::vector<float> centroid;
  /// Column name -> (min, max) for numeric columns.
  std::map<std::string, std::pair<double, double>> numeric_ranges;
  /// Compaction generation: 0 for freshly flushed segments.
  uint32_t level = 0;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);
};

/// Immutable columnar segment — the unit of storage, index building,
/// scheduling, and caching. Created once by a flush or compaction, then
/// never modified (updates go through delete bitmaps + new segments).
class Segment {
 public:
  Segment() = default;

  const SegmentMeta& meta() const { return meta_; }
  SegmentMeta& mutable_meta() { return meta_; }
  size_t num_rows() const { return meta_.num_rows; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  const Column* FindColumn(const std::string& name) const;

  size_t MemoryUsage() const;

  std::string SerializeToString() const;
  static common::Result<std::shared_ptr<Segment>> Deserialize(
      std::string_view bytes);

 private:
  friend class SegmentBuilder;

  SegmentMeta meta_;
  std::vector<Column> columns_;
};

using SegmentPtr = std::shared_ptr<Segment>;

/// Accumulates rows and freezes them into an immutable Segment: builds
/// granule marks, computes the vector centroid, and fills meta stats.
class SegmentBuilder {
 public:
  SegmentBuilder(const TableSchema& schema, std::string segment_id);

  common::Status AppendRow(const Row& row);
  size_t num_rows() const { return num_rows_; }

  /// Finalizes the segment. The builder must not be reused afterwards.
  common::Result<SegmentPtr> Finish();

  void SetPartitionKey(std::string key) { partition_key_ = std::move(key); }
  void SetSemanticBucket(int64_t bucket) { semantic_bucket_ = bucket; }

 private:
  const TableSchema& schema_;
  std::string segment_id_;
  std::string partition_key_;
  int64_t semantic_bucket_ = -1;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
};

/// Object-store key layout for a table's segments.
struct SegmentKeys {
  static std::string Data(const std::string& table, const std::string& seg) {
    return "tables/" + table + "/segments/" + seg + "/data";
  }
  static std::string Index(const std::string& table, const std::string& seg) {
    return "tables/" + table + "/segments/" + seg + "/index";
  }
};

}  // namespace blendhouse::storage
