#include "storage/object_store.h"

#include "common/task_scheduler.h"

namespace blendhouse::storage {

const ObjectStore::Metrics& ObjectStore::RegistryMetrics() {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  static const Metrics m{
      reg.GetCounter("bh_object_store_gets_total"),
      reg.GetCounter("bh_object_store_puts_total"),
      reg.GetCounter("bh_object_store_bytes_read_total"),
      reg.GetCounter("bh_object_store_bytes_written_total"),
      reg.GetCounter("bh_object_store_sim_latency_micros_total"),
  };
  return m;
}

void ObjectStore::ChargeLatency(size_t bytes) const {
  StorageCostModel cost = cost_model();  // copy; never charge under the lock
  if (!cost.simulate_latency) return;
  double transfer = static_cast<double>(bytes) / cost.bytes_per_micro;
  int64_t total = cost.base_latency_micros + static_cast<int64_t>(transfer);
  if (total > 0) {
    stats_.sim_latency_micros.fetch_add(static_cast<uint64_t>(total),
                                        std::memory_order_relaxed);
    RegistryMetrics().sim_latency_micros->Add(static_cast<uint64_t>(total));
    common::ChargeSimLatency(static_cast<uint64_t>(total));
  }
}

common::Status ObjectStore::Put(const std::string& key, std::string bytes) {
  ChargeLatency(bytes.size());
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes.size(), std::memory_order_relaxed);
  RegistryMetrics().puts->Add(1);
  RegistryMetrics().bytes_written->Add(bytes.size());
  common::MutexLock lock(mu_);
  objects_[key] = std::move(bytes);
  return common::Status::Ok();
}

common::Result<std::string> ObjectStore::Get(const std::string& key) const {
  std::string bytes;
  {
    common::MutexLock lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end())
      return common::Status::NotFound("object: " + key);
    bytes = it->second;
  }
  ChargeLatency(bytes.size());
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes.size(), std::memory_order_relaxed);
  RegistryMetrics().gets->Add(1);
  RegistryMetrics().bytes_read->Add(bytes.size());
  return bytes;
}

bool ObjectStore::Exists(const std::string& key) const {
  common::MutexLock lock(mu_);
  return objects_.count(key) > 0;
}

common::Status ObjectStore::Delete(const std::string& key) {
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return common::Status::NotFound("object: " + key);
  objects_.erase(it);
  return common::Status::Ok();
}

std::vector<std::string> ObjectStore::ListPrefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    keys.push_back(it->first);
  return keys;
}

void ObjectStore::ResetStats() {
  stats_.gets.store(0);
  stats_.puts.store(0);
  stats_.bytes_read.store(0);
  stats_.bytes_written.store(0);
  stats_.sim_latency_micros.store(0);
}

}  // namespace blendhouse::storage
