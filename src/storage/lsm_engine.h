#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "storage/object_store.h"
#include "storage/partitioner.h"
#include "storage/schema.h"
#include "storage/segment.h"
#include "storage/version.h"

namespace blendhouse::storage {

struct IngestOptions {
  /// Memtable rows that trigger an automatic flush.
  size_t flush_threshold_rows = 4096;
  /// Upper bound on rows per flushed segment (large flushes are split).
  size_t max_segment_rows = 4096;
  /// Build the per-segment vector index at flush time.
  bool build_index_on_ingest = true;
  /// Build segment i's index concurrently while segment i+1 is being
  /// written — BlendHouse's pipelined ingestion, the reason it wins
  /// Table IV. Disabled = write all segments, then build indexes serially.
  bool pipelined_index_build = true;
  /// Apply size-based auto-tuning (K_IVF etc.) to the index spec.
  bool auto_tune_index = true;
  /// Segments per (partition, bucket) group that trigger compaction.
  size_t compaction_trigger_segments = 8;
  /// Target rows per compacted segment.
  size_t compaction_target_rows = 32768;
  /// Run threshold-triggered flushes on a background thread so Insert()
  /// returns as soon as the memtable is handed off — the server-side
  /// ingestion pipeline that lets index building overlap with the client's
  /// insert stream. Flush() still drains everything synchronously.
  bool async_flush = false;
};

struct IngestStats {
  std::atomic<uint64_t> rows_ingested{0};
  std::atomic<uint64_t> segments_flushed{0};
  std::atomic<uint64_t> indexes_built{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> index_build_micros{0};
  std::atomic<uint64_t> segment_write_micros{0};
};

/// LSM-style storage engine for one table over the shared object store:
/// memtable -> immutable partitioned segments with per-segment vector
/// indexes -> background-style compaction that rebuilds indexes as segments
/// merge (the paper's "vector index compaction"). Updates never rewrite
/// segments; they set delete-bitmap bits and add new segments (Fig. 6).
///
/// Lock hierarchy (outer first): flush_mu_ > memtable_mu_ / pending_mu_ >
/// VersionSet::mu_. Queries never take engine locks: they read immutable
/// TableSnapshot copies and the immutable published partitioner snapshot.
class LsmEngine {
 public:
  LsmEngine(TableSchema schema, ObjectStore* store,
            common::ThreadPool* index_pool, IngestOptions options = {});

  /// Index-build work is distributed round-robin over `index_pools`. Passing
  /// the read VW's worker pools here deliberately mixes write work into the
  /// query VW (the Fig. 12 interference setup); a dedicated pool models an
  /// isolated index-build VW.
  LsmEngine(TableSchema schema, ObjectStore* store,
            std::vector<common::ThreadPool*> index_pools,
            IngestOptions options = {});

  /// Drains queued background flushes before any member is torn down.
  ~LsmEngine();

  const TableSchema& schema() const { return schema_; }
  const IngestOptions& options() const { return options_; }
  const IngestStats& stats() const { return stats_; }

  /// Immutable snapshot of the semantic partitioner; null until the first
  /// CLUSTER BY flush trains and publishes it. Queries hold the shared_ptr
  /// while pruning, so a concurrent re-train can never mutate under them.
  std::shared_ptr<const SemanticPartitioner> semantic_partitioner() const
      EXCLUDES(partitioner_mu_) {
    common::MutexLock lock(partitioner_mu_);
    return semantic_partitioner_;
  }

  /// Buffers rows; flushes automatically past the threshold.
  common::Status Insert(std::vector<Row> rows) EXCLUDES(memtable_mu_);

  /// Flushes the memtable into committed segments (no-op when empty).
  common::Status Flush() EXCLUDES(memtable_mu_, flush_mu_);

  /// Marks rows of a committed segment as deleted (the update path).
  common::Status DeleteRows(const std::string& segment_id,
                            const std::vector<uint64_t>& row_offsets);

  /// Merges every (partition, bucket) group with more than one segment,
  /// dropping deleted rows and rebuilding vector indexes. Returns the number
  /// of compaction jobs executed.
  common::Result<size_t> Compact() EXCLUDES(flush_mu_);

  /// Compacts only groups at/above the trigger threshold.
  common::Result<size_t> CompactIfNeeded() EXCLUDES(flush_mu_);

  TableSnapshot Snapshot() const { return versions_.Snapshot(); }
  size_t NumSegments() const { return versions_.NumSegments(); }
  size_t MemtableRows() const EXCLUDES(memtable_mu_);

  /// Fetches a committed segment from the object store.
  common::Result<SegmentPtr> FetchSegment(const std::string& segment_id) const;

  /// Builds (or rebuilds) the vector index for a segment and persists it.
  common::Status BuildAndStoreIndex(const Segment& segment);

 private:
  std::string NextSegmentId();
  /// Writes one memtable batch out as committed segments. Takes flush_mu_
  /// itself (commits are serialized with compaction).
  common::Status FlushBatch(std::vector<Row> rows) EXCLUDES(flush_mu_);
  common::Status EnsureSemanticPartitioner(const std::vector<Row>& rows)
      REQUIRES(flush_mu_);
  common::Result<std::vector<SegmentPtr>> BuildSegments(std::vector<Row> rows)
      REQUIRES(flush_mu_);
  common::Status CompactGroup(const std::vector<SegmentMeta>& group)
      REQUIRES(flush_mu_);

  common::ThreadPool* NextIndexPool() {
    return index_pools_[pool_rr_.fetch_add(1) % index_pools_.size()];
  }

  TableSchema schema_;
  ObjectStore* store_;
  std::vector<common::ThreadPool*> index_pools_;
  std::atomic<size_t> pool_rr_{0};
  IngestOptions options_;

  /// Waits for queued background flushes; returns the first error seen.
  common::Status DrainPendingFlushes() EXCLUDES(pending_mu_);

  mutable common::Mutex memtable_mu_{common::lockrank::kLsmMemtable};
  std::vector<Row> memtable_ GUARDED_BY(memtable_mu_);

  std::unique_ptr<common::ThreadPool> flush_pool_;  // async_flush only
  common::Mutex pending_mu_{common::lockrank::kLsmPending};
  std::vector<std::future<common::Status>> pending_flushes_
      GUARDED_BY(pending_mu_);

  common::Mutex flush_mu_{
      common::lockrank::kLsmFlush};  // serializes flush/compaction commits
  VersionSet versions_;
  /// Published (copy-on-train) under partitioner_mu_; trained under
  /// flush_mu_ on the first CLUSTER BY flush.
  mutable common::Mutex partitioner_mu_{common::lockrank::kLsmPartitioner};
  std::shared_ptr<const SemanticPartitioner> semantic_partitioner_
      GUARDED_BY(partitioner_mu_);
  std::atomic<uint64_t> segment_counter_{0};
  IngestStats stats_;
};

/// Reconstructs row `i` of a segment (used by compaction and tests).
Row RowFromSegment(const Segment& segment, size_t i);

}  // namespace blendhouse::storage
