#pragma once

#include <string>
#include <vector>

#include "common/io.h"
#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace blendhouse::storage {

/// Encodes the scalar PARTITION BY key of one row: partition column values
/// joined with '|' (e.g. "20241010|animal"). Rows with equal keys land in
/// the same segments, enabling scalar segment pruning (paper §IV-B).
std::string ScalarPartitionKey(const TableSchema& schema, const Row& row);

/// Semantic similarity-based partitioner: k-means centroids learned at first
/// ingest assign each vector to one of `CLUSTER BY ... INTO n BUCKETS`
/// buckets; queries then prune to buckets whose centroid is near the query
/// vector.
class SemanticPartitioner {
 public:
  SemanticPartitioner() = default;

  bool trained() const { return !centroids_.empty(); }
  size_t num_buckets() const { return dim_ == 0 ? 0 : centroids_.size() / dim_; }
  size_t dim() const { return dim_; }
  const std::vector<float>& centroids() const { return centroids_; }

  /// Learns `buckets` centroids from sample vectors (packed n x dim).
  common::Status Train(const float* data, size_t n, size_t dim,
                       size_t buckets, uint64_t seed = 42);

  /// Bucket id for a vector; requires trained().
  int64_t AssignBucket(const float* vec) const;

  /// Bucket ids ranked by centroid distance to `query` (nearest first) —
  /// the scheduler probes a prefix of this ranking.
  std::vector<int64_t> RankBuckets(const float* query) const;

  void Serialize(common::BinaryWriter* w) const;
  common::Status Deserialize(common::BinaryReader* r);

 private:
  size_t dim_ = 0;
  std::vector<float> centroids_;
};

}  // namespace blendhouse::storage
