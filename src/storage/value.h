#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace blendhouse::storage {

/// Cell value. FloatVector is the embedding type (`Array(Float32)` in the
/// paper's SQL dialect).
using Value =
    std::variant<int64_t, double, std::string, std::vector<float>>;

enum class ColumnType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
  kFloatVector = 3,
};

/// One ingested row; values are positional against the table schema.
struct Row {
  std::vector<Value> values;
};

inline const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "Int64";
    case ColumnType::kFloat64:
      return "Float64";
    case ColumnType::kString:
      return "String";
    case ColumnType::kFloatVector:
      return "Array(Float32)";
  }
  return "?";
}

}  // namespace blendhouse::storage
