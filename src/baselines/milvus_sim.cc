#include "baselines/milvus_sim.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <queue>
#include <thread>

#include "common/bitset.h"
#include "vecindex/distance.h"

namespace blendhouse::baselines {

MilvusSim::MilvusSim(MilvusSimOptions options)
    : options_(options),
      store_(options.simulate_latency
                 ? storage::StorageCostModel::Remote()
                 : storage::StorageCostModel::Instant()) {}

void MilvusSim::ChargeProxyHop() const {
  if (!options_.simulate_latency) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(options_.proxy_rpc_micros));
}

common::Status MilvusSim::Load(const BenchDataset& data) {
  dim_ = data.dim;
  segments_.clear();

  // Group rows: by attr-range partition when partition keys are configured,
  // otherwise a single arrival-order stream; both are then chunked into
  // fixed-size segments.
  size_t parts = std::max<size_t>(1, options_.attr_partitions);
  std::vector<std::vector<size_t>> partition_rows(parts);
  for (size_t i = 0; i < data.n; ++i) {
    size_t p = parts == 1
                   ? 0
                   : static_cast<size_t>(data.int_attr[i]) * parts /
                         (static_cast<size_t>(BenchDataset::kAttrMax) + 1);
    partition_rows[std::min(p, parts - 1)].push_back(i);
  }

  // Stage 1: flush every segment's raw data to shared storage first.
  size_t next_base = 0;
  for (const std::vector<size_t>& rows : partition_rows) {
    for (size_t begin = 0; begin < rows.size();
         begin += options_.segment_rows) {
      size_t end = std::min(rows.size(), begin + options_.segment_rows);
      Segment seg;
      seg.base = next_base;
      next_base += options_.segment_rows;
      seg.rows = end - begin;
      seg.vectors.reserve(seg.rows * dim_);
      for (size_t r = begin; r < end; ++r) {
        size_t i = rows[r];
        seg.global_ids.push_back(static_cast<vecindex::IdType>(i));
        seg.attrs.push_back(data.int_attr[i]);
        seg.vectors.insert(seg.vectors.end(), data.vector(i),
                           data.vector(i) + dim_);
      }
      seg.attr_min = *std::min_element(seg.attrs.begin(), seg.attrs.end());
      seg.attr_max = *std::max_element(seg.attrs.begin(), seg.attrs.end());
      options_.ingest_stream.Charge(seg.vectors.size() * sizeof(float));
      std::string payload(reinterpret_cast<const char*>(seg.vectors.data()),
                          seg.vectors.size() * sizeof(float));
      BH_RETURN_IF_ERROR(store_.Put(
          "milvus/segments/" + std::to_string(seg.base) + "/data",
          std::move(payload)));
      segments_.push_back(std::move(seg));
    }
  }

  // Stage 2: only after all writes finish does index building start.
  common::ThreadPool pool(options_.build_threads);
  std::vector<std::future<common::Status>> builds;
  for (Segment& seg : segments_) {
    builds.push_back(pool.Submit([this, &seg]() -> common::Status {
      vecindex::HnswOptions opts;
      opts.M = options_.hnsw_m;
      opts.ef_construction = options_.hnsw_ef_construction;
      seg.index = std::make_unique<vecindex::HnswIndex>(
          dim_, vecindex::Metric::kL2, opts);
      std::vector<vecindex::IdType> local_ids(seg.rows);
      for (size_t i = 0; i < seg.rows; ++i)
        local_ids[i] = static_cast<vecindex::IdType>(i);
      BH_RETURN_IF_ERROR(seg.index->AddWithIds(seg.vectors.data(),
                                               local_ids.data(), seg.rows));
      std::string bytes;
      BH_RETURN_IF_ERROR(seg.index->Save(&bytes));
      return store_.Put(
          "milvus/segments/" + std::to_string(seg.base) + "/index",
          std::move(bytes));
    }));
  }
  for (auto& fut : builds) {
    common::Status s = fut.get();
    if (!s.ok()) return s;
  }

  // Stage 3: query nodes load every index back from shared storage before
  // the collection is searchable.
  for (const Segment& seg : segments_) {
    auto bytes =
        store_.Get("milvus/segments/" + std::to_string(seg.base) + "/index");
    if (!bytes.ok()) return bytes.status();
  }
  return common::Status::Ok();
}

common::Result<std::vector<vecindex::Neighbor>> MilvusSim::Search(
    const SearchRequest& request) {
  if (segments_.empty())
    return common::Status::Internal("milvus-sim: not loaded");
  ChargeProxyHop();

  std::priority_queue<vecindex::Neighbor> global;  // max-heap of best k
  auto offer = [&](vecindex::IdType global_id, float dist) {
    if (global.size() < request.k) {
      global.push({global_id, dist});
    } else if (dist < global.top().distance) {
      global.pop();
      global.push({global_id, dist});
    }
  };

  for (const Segment& seg : segments_) {
    if (!request.filtered) {
      vecindex::SearchParams params;
      params.k = static_cast<int>(request.k);
      params.ef_search = request.ef_search;
      auto hits = seg.index->SearchWithFilter(request.query, params);
      if (!hits.ok()) return hits.status();
      for (const auto& h : *hits)
        offer(seg.global_ids[static_cast<size_t>(h.id)], h.distance);
      continue;
    }

    // Partition-key pruning: attr-partitioned segments outside the filter
    // range are skipped wholesale.
    if (seg.attr_max < request.lo || seg.attr_min > request.hi) continue;

    // Pre-filter: materialize the qualifying-row bitmap from attributes.
    common::Bitset bitmap(seg.rows);
    size_t passing = 0;
    for (size_t i = 0; i < seg.rows; ++i) {
      if (seg.attrs[i] >= request.lo && seg.attrs[i] <= request.hi) {
        bitmap.Set(i);
        ++passing;
      }
    }
    if (passing == 0) continue;
    double pass_fraction =
        static_cast<double>(passing) / static_cast<double>(seg.rows);
    if (pass_fraction < options_.brute_force_threshold) {
      // Milvus's own heuristic: tiny candidate sets skip the graph.
      for (size_t i = 0; i < seg.rows; ++i) {
        if (!bitmap.Test(i)) continue;
        float d = vecindex::L2Sqr(request.query,
                                  seg.vectors.data() + i * dim_, dim_);
        offer(seg.global_ids[i], d);
      }
    } else {
      vecindex::SearchParams params;
      params.k = static_cast<int>(request.k);
      params.ef_search = request.ef_search;
      params.filter = &bitmap;
      auto hits = seg.index->SearchWithFilter(request.query, params);
      if (!hits.ok()) return hits.status();
      for (const auto& h : *hits)
        offer(seg.global_ids[static_cast<size_t>(h.id)], h.distance);
    }
  }

  std::vector<vecindex::Neighbor> out(global.size());
  for (size_t i = global.size(); i-- > 0;) {
    out[i] = global.top();
    global.pop();
  }
  return out;
}

}  // namespace blendhouse::baselines
