#pragma once

#include <string>
#include <vector>

#include "baselines/dataset.h"
#include "common/result.h"
#include "vecindex/types.h"

namespace blendhouse::baselines {

/// Client->server insert-stream cost model shared by all systems: each
/// ingest batch pays bytes / bandwidth of simulated transfer (VectorDBBench
/// streams inserts over gRPC/libpq). 0 disables the charge.
struct IngestStreamModel {
  double bytes_per_micro = 0.0;

  void Charge(size_t bytes) const;
};

struct SearchRequest {
  const float* query = nullptr;
  size_t k = 10;
  /// Recall/latency knob (ef_search for HNSW-backed systems).
  int ef_search = 64;
  /// Optional range filter over int_attr (the VectorDBBench hybrid query).
  bool filtered = false;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// Common facade the comparison benches drive. BlendHouse, MilvusSim, and
/// PgvectorSim all sit behind it so Table IV / Fig. 9 / Fig. 10 / Table VII
/// treat the systems uniformly. Returned ids are global dataset row ids.
class VectorSystem {
 public:
  virtual ~VectorSystem() = default;

  virtual std::string Name() const = 0;

  /// End-to-end ingest: returns only when the dataset is fully queryable
  /// (data written, indexes built, serving layer loaded) — the quantity
  /// Table IV reports.
  virtual common::Status Load(const BenchDataset& data) = 0;

  virtual common::Result<std::vector<vecindex::Neighbor>> Search(
      const SearchRequest& request) = 0;
};

}  // namespace blendhouse::baselines
