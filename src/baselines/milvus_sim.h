#pragma once

#include <memory>
#include <vector>

#include "baselines/vectordb_iface.h"
#include "common/threadpool.h"
#include "storage/object_store.h"
#include "vecindex/hnsw_index.h"

namespace blendhouse::baselines {

struct MilvusSimOptions {
  size_t segment_rows = 8192;
  size_t build_threads = 4;
  size_t hnsw_m = 16;
  size_t hnsw_ef_construction = 200;
  /// Per-query proxy->querynode RPC cost (microseconds). Milvus's
  /// coordinator/proxy architecture adds a network hop BlendHouse's
  /// in-warehouse execution avoids; this models it.
  int64_t proxy_rpc_micros = 250;
  /// Pass-fraction below which Milvus's own heuristic switches a filtered
  /// search to brute force over qualifying rows.
  double brute_force_threshold = 0.05;
  bool simulate_latency = true;
  /// Simulated client insert-stream bandwidth (0 = off).
  IngestStreamModel ingest_stream;
  /// Milvus partition-key support: > 0 groups rows into this many attr-range
  /// partitions, letting filtered searches skip non-matching segments
  /// entirely (the Table VII "Milvus-Partition" configuration).
  size_t attr_partitions = 0;
};

/// Behavioural model of Milvus 2.4 for the paper's comparisons:
///  - staged ingest: write ALL segments to shared storage, THEN build
///    indexes, THEN load them into query nodes (no pipelining) — the
///    Table IV disadvantage;
///  - filtered search is pre-filter only (bitmap from attributes), with a
///    selectivity heuristic that falls back to brute force;
///  - every query pays a proxy RPC hop.
class MilvusSim : public VectorSystem {
 public:
  explicit MilvusSim(MilvusSimOptions options = MilvusSimOptions());

  std::string Name() const override { return "Milvus"; }
  common::Status Load(const BenchDataset& data) override;
  common::Result<std::vector<vecindex::Neighbor>> Search(
      const SearchRequest& request) override;

 private:
  struct Segment {
    size_t base = 0;   // key for storage paths (unique per segment)
    size_t rows = 0;
    std::vector<vecindex::IdType> global_ids;
    std::vector<float> vectors;
    std::vector<int64_t> attrs;
    int64_t attr_min = 0;
    int64_t attr_max = 0;
    std::unique_ptr<vecindex::HnswIndex> index;
  };

  void ChargeProxyHop() const;

  MilvusSimOptions options_;
  storage::ObjectStore store_;  // shared remote storage (Milvus is cloud-native)
  size_t dim_ = 0;
  std::vector<Segment> segments_;
};

}  // namespace blendhouse::baselines
