#include "baselines/blendhouse_system.h"

#include <cstdio>

namespace blendhouse::baselines {

BlendHouseSystem::BlendHouseSystem(BlendHouseSystemOptions options)
    : options_(std::move(options)),
      db_(std::make_unique<core::BlendHouse>(options_.db)),
      settings_(options_.db.settings) {}

common::Status BlendHouseSystem::Load(const BenchDataset& data) {
  dim_ = data.dim;
  storage::TableSchema schema;
  schema.table_name = "bench";
  schema.columns = {{"id", storage::ColumnType::kInt64},
                    {"attr", storage::ColumnType::kInt64},
                    {"attr_bucket", storage::ColumnType::kInt64},
                    {"sim", storage::ColumnType::kFloat64},
                    {"caption", storage::ColumnType::kString},
                    {"emb", storage::ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = options_.index_type;
  spec.dim = data.dim;
  spec.params = options_.index_params;
  schema.index_spec = spec;
  schema.vector_column = 5;
  schema.semantic_buckets = options_.semantic_buckets;
  if (options_.scalar_partition_buckets > 0)
    schema.partition_columns = {2};  // PARTITION BY attr_bucket
  BH_RETURN_IF_ERROR(db_->CreateTable(schema));

  size_t parts = std::max<size_t>(1, options_.scalar_partition_buckets);
  std::vector<storage::Row> batch;
  batch.reserve(options_.insert_batch);
  for (size_t i = 0; i < data.n; ++i) {
    int64_t bucket = static_cast<int64_t>(
        static_cast<size_t>(data.int_attr[i]) * parts /
        (static_cast<size_t>(BenchDataset::kAttrMax) + 1));
    storage::Row row;
    row.values = {static_cast<int64_t>(i), data.int_attr[i], bucket,
                  data.sim_score[i], data.captions[i],
                  std::vector<float>(data.vector(i), data.vector(i) + dim_)};
    batch.push_back(std::move(row));
    if (batch.size() >= options_.insert_batch) {
      options_.ingest_stream.Charge(batch.size() * dim_ * sizeof(float));
      BH_RETURN_IF_ERROR(db_->Insert("bench", std::move(batch)));
      batch.clear();
    }
  }
  if (!batch.empty()) {
    options_.ingest_stream.Charge(batch.size() * dim_ * sizeof(float));
    BH_RETURN_IF_ERROR(db_->Insert("bench", std::move(batch)));
  }
  BH_RETURN_IF_ERROR(db_->Flush("bench"));
  if (options_.preload) BH_RETURN_IF_ERROR(db_->PreloadTable("bench"));
  return common::Status::Ok();
}

std::string BlendHouseSystem::BuildSearchSql(
    const SearchRequest& request) const {
  std::string sql = "SELECT id, d FROM bench";
  if (request.filtered) {
    sql += " WHERE attr BETWEEN " + std::to_string(request.lo) + " AND " +
           std::to_string(request.hi);
  }
  sql += " ORDER BY L2Distance(emb, [";
  char buf[32];
  for (size_t i = 0; i < dim_; ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%.6g" : ",%.6g",
                  static_cast<double>(request.query[i]));
    sql += buf;
  }
  sql += "]) AS d LIMIT " + std::to_string(request.k) + ";";
  return sql;
}

common::Result<std::vector<vecindex::Neighbor>> BlendHouseSystem::Search(
    const SearchRequest& request) {
  // Join the current accumulation epoch before running: a drain issued while
  // this query is in flight waits for it instead of losing its stats.
  uint64_t epoch;
  {
    common::MutexLock lock(stats_mu_);
    epoch = epoch_;
    ++epochs_[epoch].inflight;
  }

  sql::QuerySettings settings = settings_;
  settings.ef_search = request.ef_search;
  auto result = db_->QueryWithSettings(BuildSearchSql(request), settings);

  {
    common::MutexLock lock(stats_mu_);
    EpochSlot& slot = epochs_[epoch];
    if (result.ok()) {
      slot.stats.queries += 1;
      slot.stats.exec_micros += result->stats.exec_micros;
      slot.stats.queue_wait_micros += result->stats.queue_wait_micros;
      slot.stats.compute_micros += result->stats.compute_micros;
      slot.stats.sim_io_micros += result->stats.sim_io_micros;
      slot.stats.retries += result->stats.retries;
    }
    if (--slot.inflight == 0 && epoch != epoch_) stats_cv_.NotifyAll();
  }
  if (!result.ok()) return result.status();

  std::vector<vecindex::Neighbor> out;
  out.reserve(result->rows.size());
  for (const storage::Row& row : result->rows) {
    const int64_t* id = std::get_if<int64_t>(&row.values[0]);
    const double* dist = std::get_if<double>(&row.values[1]);
    if (id == nullptr || dist == nullptr)
      return common::Status::Internal("unexpected result row shape");
    out.push_back({*id, static_cast<float>(*dist)});
  }
  return out;
}

BlendHouseSystem::AccumulatedExecStats BlendHouseSystem::DrainExecStats() {
  common::MutexLock lock(stats_mu_);
  // Close the epoch first so new searches accumulate elsewhere, then wait
  // for its stragglers. Concurrent drains each close (and collect) their
  // own epoch.
  uint64_t closed = epoch_++;
  while (epochs_[closed].inflight > 0) stats_cv_.Wait(stats_mu_);
  auto it = epochs_.find(closed);
  AccumulatedExecStats out = it->second.stats;
  epochs_.erase(it);
  return out;
}

}  // namespace blendhouse::baselines
