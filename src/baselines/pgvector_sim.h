#pragma once

#include <memory>
#include <vector>

#include "baselines/vectordb_iface.h"
#include "vecindex/hnsw_index.h"

namespace blendhouse::baselines {

struct PgvectorSimOptions {
  size_t hnsw_m = 16;
  size_t hnsw_ef_construction = 200;
  /// Simulated client insert-stream bandwidth (0 = off).
  IngestStreamModel ingest_stream;
  /// Rows per COPY batch (stream-charge granularity).
  size_t insert_batch = 2048;
  /// Per-query PostgreSQL parse/plan/executor + libpq round-trip cost.
  int64_t per_query_overhead_micros = 150;
};

/// Behavioural model of pgvector 0.7 for the paper's comparisons:
///  - standalone single node: one monolithic HNSW built on a single thread
///    (its Table IV disadvantage — no parallel per-segment builds);
///  - filtered search is post-filter only with a FIXED candidate budget:
///    scan ef_search graph candidates once, apply the predicate, truncate.
///    No iterator, no retry with a larger k, no cost-based fallback — which
///    is exactly why its recall collapses (< 10-35%) on highly selective
///    hybrid queries in Fig. 9 / Table VII.
class PgvectorSim : public VectorSystem {
 public:
  explicit PgvectorSim(PgvectorSimOptions options = PgvectorSimOptions());

  std::string Name() const override { return "pgvector"; }
  common::Status Load(const BenchDataset& data) override;
  common::Result<std::vector<vecindex::Neighbor>> Search(
      const SearchRequest& request) override;

 private:
  PgvectorSimOptions options_;
  size_t dim_ = 0;
  std::vector<int64_t> attrs_;
  std::unique_ptr<vecindex::HnswIndex> index_;
};

}  // namespace blendhouse::baselines
