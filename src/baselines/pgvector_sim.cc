#include "baselines/pgvector_sim.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace blendhouse::baselines {

PgvectorSim::PgvectorSim(PgvectorSimOptions options) : options_(options) {}

common::Status PgvectorSim::Load(const BenchDataset& data) {
  dim_ = data.dim;
  attrs_ = data.int_attr;
  vecindex::HnswOptions opts;
  opts.M = options_.hnsw_m;
  opts.ef_construction = options_.hnsw_ef_construction;
  index_ = std::make_unique<vecindex::HnswIndex>(dim_, vecindex::Metric::kL2,
                                                 opts);
  // Single-threaded monolithic build: COPY batches stream in and the HNSW
  // index is maintained incrementally on the same backend process, so the
  // transfer and the build fully serialize.
  for (size_t begin = 0; begin < data.n; begin += options_.insert_batch) {
    size_t end = std::min(data.n, begin + options_.insert_batch);
    options_.ingest_stream.Charge((end - begin) * dim_ * sizeof(float));
    std::vector<vecindex::IdType> ids(end - begin);
    for (size_t i = begin; i < end; ++i)
      ids[i - begin] = static_cast<vecindex::IdType>(i);
    BH_RETURN_IF_ERROR(index_->AddWithIds(
        data.vectors.data() + begin * dim_, ids.data(), end - begin));
  }
  return common::Status::Ok();
}

common::Result<std::vector<vecindex::Neighbor>> PgvectorSim::Search(
    const SearchRequest& request) {
  if (index_ == nullptr)
    return common::Status::Internal("pgvector-sim: not loaded");
  if (options_.per_query_overhead_micros > 0)
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.per_query_overhead_micros));

  // One graph pass with a fixed candidate budget of ef_search.
  vecindex::SearchParams params;
  params.k = static_cast<int>(
      std::max<size_t>(request.k, static_cast<size_t>(request.ef_search)));
  params.ef_search = request.ef_search;
  auto hits = index_->SearchWithFilter(request.query, params);
  if (!hits.ok()) return hits.status();

  std::vector<vecindex::Neighbor> out;
  out.reserve(request.k);
  for (const vecindex::Neighbor& h : *hits) {
    if (request.filtered) {
      int64_t a = attrs_[static_cast<size_t>(h.id)];
      if (a < request.lo || a > request.hi) continue;  // post-filter
    }
    out.push_back(h);
    if (out.size() >= request.k) break;
  }
  return out;  // possibly (far) fewer than k — pgvector's failure mode
}

}  // namespace blendhouse::baselines
