#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vecindex/types.h"

namespace blendhouse::baselines {

/// Synthetic stand-in for the paper's Cohere/OpenAI/LAION datasets
/// (Table III), generated as a Gaussian-mixture at laptop scale. Vectors
/// carry a random-int attribute (the VectorDBBench filter column), a
/// caption-similarity float in [0,1] and a synthetic caption string
/// (the LAION workload's regex target).
struct BenchDataset {
  std::string name;
  size_t n = 0;
  size_t dim = 0;
  std::vector<float> vectors;      // n * dim
  std::vector<int64_t> int_attr;   // uniform in [0, kAttrMax]
  std::vector<double> sim_score;   // uniform in [0, 1]
  std::vector<std::string> captions;

  std::vector<float> queries;      // num_queries * dim
  size_t num_queries = 0;

  static constexpr int64_t kAttrMax = 999999;

  const float* query(size_t i) const { return queries.data() + i * dim; }
  const float* vector(size_t i) const { return vectors.data() + i * dim; }
};

struct DatasetSpec {
  std::string name = "cohere-s";
  size_t n = 20000;
  size_t dim = 96;
  size_t clusters = 64;
  size_t num_queries = 64;
  uint64_t seed = 42;
  float cluster_spread = 0.25f;
};

/// Laptop-scale stand-ins proportional to the paper's datasets.
DatasetSpec CohereSmall();   // 1M x 768  ->  20k x 96
DatasetSpec OpenAiSmall();   // 5M x 1536 ->  40k x 192
DatasetSpec LaionSmall();    // 1M x 512  ->  20k x 64

BenchDataset MakeDataset(const DatasetSpec& spec);

/// Exact top-k (global row ids) with an optional int_attr range filter —
/// ground truth for recall measurements.
std::vector<vecindex::IdType> GroundTruth(const BenchDataset& data,
                                          const float* query, size_t k,
                                          bool filtered = false,
                                          int64_t lo = 0, int64_t hi = 0);

/// Recall of `hits` against exact `truth` ids.
double RecallOf(const std::vector<vecindex::Neighbor>& hits,
                const std::vector<vecindex::IdType>& truth);

/// The attribute range [lo, hi] that keeps ~`pass_fraction` of rows.
/// pass_fraction 0.99 models VectorDBBench's "1% filter" workload and 0.01
/// its "99% filter" workload.
std::pair<int64_t, int64_t> AttrRangeForSelectivity(double pass_fraction);

}  // namespace blendhouse::baselines
