#pragma once

#include <map>
#include <memory>
#include <string>

#include "baselines/vectordb_iface.h"
#include "common/mutex.h"
#include "core/blendhouse.h"

namespace blendhouse::baselines {

struct BlendHouseSystemOptions {
  core::BlendHouseOptions db;
  std::string index_type = "HNSW";
  /// Extra index parameters (M, EF_CONSTRUCTION, NLIST, ...).
  std::map<std::string, std::string> index_params;
  /// CLUSTER BY ... INTO n BUCKETS; 0 disables semantic partitioning.
  size_t semantic_buckets = 0;
  /// PARTITION BY a derived attr bucket (attr * n / max); 0 disables scalar
  /// partitioning. Gives filtered searches segment-level pruning.
  size_t scalar_partition_buckets = 0;
  /// Rows per INSERT batch during Load.
  size_t insert_batch = 2048;
  /// Simulated client insert-stream bandwidth (0 = off).
  IngestStreamModel ingest_stream;
  /// Preload indexes into worker caches after load (the paper's
  /// cache-aware preload; all systems are measured warm unless a bench
  /// says otherwise).
  bool preload = true;
};

/// The system under test, driven end-to-end through its public SQL surface
/// so comparisons include parsing, planning, and distributed execution.
class BlendHouseSystem : public VectorSystem {
 public:
  explicit BlendHouseSystem(
      BlendHouseSystemOptions options = BlendHouseSystemOptions());

  std::string Name() const override { return "BlendHouse"; }
  common::Status Load(const BenchDataset& data) override;
  common::Result<std::vector<vecindex::Neighbor>> Search(
      const SearchRequest& request) override;

  core::BlendHouse& db() { return *db_; }
  sql::QuerySettings& settings() { return settings_; }

  /// Renders the SQL this adapter issues for a request (for logs/tests).
  std::string BuildSearchSql(const SearchRequest& request) const;

  /// Per-query ExecStats summed over every successful Search() since the
  /// last drain; benches print the async execution breakdown from this.
  struct AccumulatedExecStats {
    size_t queries = 0;
    double exec_micros = 0;
    double queue_wait_micros = 0;
    double compute_micros = 0;
    double sim_io_micros = 0;
    size_t retries = 0;
  };
  /// Epoch-based drain: closes the current accumulation epoch, waits for
  /// every Search() that entered it (in-flight at the instant of the drain,
  /// e.g. racing a worker scale-down) to fold its stats, and returns the
  /// epoch's totals. Searches that start after the drain land in the next
  /// epoch, so concurrent drains never lose or double-count a query.
  AccumulatedExecStats DrainExecStats() EXCLUDES(stats_mu_);

 private:
  BlendHouseSystemOptions options_;
  std::unique_ptr<core::BlendHouse> db_;
  sql::QuerySettings settings_;
  size_t dim_ = 0;

  /// One accumulation window. Kept in a map keyed by epoch number until its
  /// last in-flight search folds and a drain collects it.
  struct EpochSlot {
    AccumulatedExecStats stats;
    size_t inflight = 0;
  };

  mutable common::Mutex stats_mu_{common::lockrank::kBaselineStats};
  common::CondVar stats_cv_;
  uint64_t epoch_ GUARDED_BY(stats_mu_) = 0;
  std::map<uint64_t, EpochSlot> epochs_ GUARDED_BY(stats_mu_);
};

}  // namespace blendhouse::baselines
