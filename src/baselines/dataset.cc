#include "baselines/dataset.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <thread>
#include <unordered_set>

#include "baselines/vectordb_iface.h"
#include "common/rng.h"
#include "vecindex/distance.h"

namespace blendhouse::baselines {

void IngestStreamModel::Charge(size_t bytes) const {
  if (bytes_per_micro <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_micro)));
}

DatasetSpec CohereSmall() {
  DatasetSpec s;
  s.name = "cohere-s";
  s.n = 20000;
  s.dim = 96;
  s.clusters = 16;
  s.cluster_spread = 1.0f;  // overlapping clusters: recall curves bite
  return s;
}

DatasetSpec OpenAiSmall() {
  DatasetSpec s;
  s.name = "openai-s";
  s.n = 40000;
  s.dim = 192;
  s.clusters = 24;
  s.cluster_spread = 1.0f;
  s.seed = 43;
  return s;
}

DatasetSpec LaionSmall() {
  DatasetSpec s;
  s.name = "laion-s";
  s.n = 20000;
  s.dim = 64;
  s.clusters = 48;
  s.cluster_spread = 0.4f;  // separated clusters: semantic pruning works
  s.seed = 44;
  return s;
}

namespace {
const char* const kCaptionWords[] = {
    "cat",    "dog",   "mountain", "beach", "car",    "painting",
    "street", "tree",  "portrait", "food",  "sunset", "building",
    "river",  "bird",  "flower",   "night", "snow",   "child",
};
}  // namespace

BenchDataset MakeDataset(const DatasetSpec& spec) {
  common::Rng rng(spec.seed);
  BenchDataset data;
  data.name = spec.name;
  data.n = spec.n;
  data.dim = spec.dim;
  data.num_queries = spec.num_queries;

  std::vector<float> centers(spec.clusters * spec.dim);
  for (auto& c : centers) c = rng.Gaussian(0.0f, 1.0f);

  data.vectors.resize(spec.n * spec.dim);
  data.int_attr.resize(spec.n);
  data.sim_score.resize(spec.n);
  data.captions.reserve(spec.n);
  constexpr size_t kNumWords = sizeof(kCaptionWords) / sizeof(char*);
  for (size_t i = 0; i < spec.n; ++i) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, spec.clusters - 1));
    for (size_t d = 0; d < spec.dim; ++d)
      data.vectors[i * spec.dim + d] =
          centers[c * spec.dim + d] + rng.Gaussian(0.0f, spec.cluster_spread);
    data.int_attr[i] = rng.UniformInt(0, BenchDataset::kAttrMax);
    data.sim_score[i] = rng.Uniform();
    std::string caption;
    size_t words = static_cast<size_t>(rng.UniformInt(3, 8));
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) caption += ' ';
      caption += kCaptionWords[rng.UniformInt(0, kNumWords - 1)];
    }
    data.captions.push_back(std::move(caption));
  }

  // Queries: cluster centers perturbed, so results are non-degenerate.
  data.queries.resize(spec.num_queries * spec.dim);
  for (size_t q = 0; q < spec.num_queries; ++q) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, spec.clusters - 1));
    for (size_t d = 0; d < spec.dim; ++d)
      data.queries[q * spec.dim + d] =
          centers[c * spec.dim + d] +
          rng.Gaussian(0.0f, spec.cluster_spread * 0.8f);
  }
  return data;
}

std::vector<vecindex::IdType> GroundTruth(const BenchDataset& data,
                                          const float* query, size_t k,
                                          bool filtered, int64_t lo,
                                          int64_t hi) {
  std::priority_queue<vecindex::Neighbor> heap;
  for (size_t i = 0; i < data.n; ++i) {
    if (filtered && (data.int_attr[i] < lo || data.int_attr[i] > hi))
      continue;
    float d = vecindex::L2Sqr(query, data.vector(i), data.dim);
    if (heap.size() < k) {
      heap.push({static_cast<vecindex::IdType>(i), d});
    } else if (d < heap.top().distance) {
      heap.pop();
      heap.push({static_cast<vecindex::IdType>(i), d});
    }
  }
  std::vector<vecindex::IdType> ids(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    ids[i] = heap.top().id;
    heap.pop();
  }
  return ids;
}

double RecallOf(const std::vector<vecindex::Neighbor>& hits,
                const std::vector<vecindex::IdType>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<vecindex::IdType> want(truth.begin(), truth.end());
  size_t got = 0;
  for (const auto& h : hits) got += want.count(h.id);
  return static_cast<double>(got) / static_cast<double>(truth.size());
}

std::pair<int64_t, int64_t> AttrRangeForSelectivity(double pass_fraction) {
  // int_attr is uniform on [0, kAttrMax]; a centered range of the right
  // width passes ~pass_fraction of rows.
  double width = pass_fraction * static_cast<double>(BenchDataset::kAttrMax);
  int64_t mid = BenchDataset::kAttrMax / 2;
  int64_t lo = mid - static_cast<int64_t>(width / 2);
  int64_t hi = lo + static_cast<int64_t>(width);
  return {std::max<int64_t>(0, lo),
          std::min<int64_t>(BenchDataset::kAttrMax, hi)};
}

}  // namespace blendhouse::baselines
