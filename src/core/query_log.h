#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/query_ledger.h"

namespace blendhouse::core {

/// One finished query, as surfaced by `SELECT * FROM system.query_log`
/// (DESIGN.md §15). Every SELECT that reaches RunSelect lands here exactly
/// once — success or failure — with its full resource ledger; system.*
/// introspection queries are the only exception (recording them would make
/// reading the log grow the log).
struct QueryLogRecord {
  /// Monotonic per-log id, assigned at append.
  uint64_t query_id = 0;
  std::string sql;
  /// Normalized parameterized signature (literals → '?'), computed at plan
  /// time; identical-shape queries share one fingerprint.
  std::string fingerprint;
  uint64_t fingerprint_hash = 0;
  std::string type;    // "ann" | "scalar"
  std::string status;  // "ok" | "error"
  std::string error;   // failure message when status == "error"
  /// The query's trace id and the sink's tail-retention verdict for it
  /// ("error" / "slow" / "sampled" / "dropped") — a retained trace is
  /// addressable as system.query_trace(<trace_id>).
  uint64_t trace_id = 0;
  std::string trace_retention;
  double latency_micros = 0;  // full wall time, plan included
  double plan_micros = 0;
  double exec_micros = 0;
  common::QueryLedger ledger;
};

/// Aggregated per-fingerprint view, `SELECT * FROM system.query_profile`.
struct QueryProfileRow {
  std::string fingerprint;
  uint64_t fingerprint_hash = 0;
  uint64_t count = 0;
  uint64_t errors = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  double max_micros = 0;
};

/// Bounded ring of finished-query records plus rolling per-fingerprint
/// latency profiles. The profiles double as the tail-based trace retention
/// oracle: SlowThresholdMicros() hands RunSelect the fingerprint's rolling
/// p99, so a query's keep/drop verdict compares it against *its own shape's*
/// history rather than one global constant.
///
/// Locking: mu_ is rank kQueryLog (taken with no other lock held; the
/// critical sections touch only the ring and the profile map — the
/// histograms inside are lock-free).
class QueryLog {
 public:
  struct Options {
    /// Ring capacity; the oldest record is evicted past this.
    size_t max_records = 1024;
    /// A fingerprint's rolling p99 is trusted as a slowness threshold only
    /// after this many samples (a cold profile's p99 is noise).
    size_t min_profile_samples = 16;
  };

  QueryLog() : QueryLog(Options()) {}
  explicit QueryLog(Options opts) : opts_(opts) {}
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// FNV-1a 64 of the normalized fingerprint text (stable across runs, so
  /// tests and tools can address profiles by hash).
  static uint64_t Hash(const std::string& fingerprint);

  /// The fingerprint's rolling p99 latency, or 0 while the profile has
  /// fewer than min_profile_samples samples. Read *before* appending the
  /// current query so a query is never judged against itself.
  double SlowThresholdMicros(uint64_t fingerprint_hash) const EXCLUDES(mu_);

  /// Assigns query_id, pushes into the ring (evicting past capacity), and
  /// folds the latency into the fingerprint's profile.
  void Append(QueryLogRecord record) EXCLUDES(mu_);

  std::vector<QueryLogRecord> Records() const EXCLUDES(mu_);
  std::vector<QueryProfileRow> Profiles() const EXCLUDES(mu_);

  /// Records currently in the ring.
  size_t size() const EXCLUDES(mu_);
  /// Records ever appended (ring evictions don't decrement).
  uint64_t total_appended() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

 private:
  struct Profile {
    std::string fingerprint;
    uint64_t count = 0;
    uint64_t errors = 0;
    double max_micros = 0;
    /// Rolling latency distribution; fixed default micro buckets, lock-free
    /// Record, Percentile via snapshot — same machinery as registry
    /// histograms but privately owned (one per fingerprint).
    std::unique_ptr<common::metrics::HistogramMetric> latency;
  };

  Options opts_;
  mutable common::Mutex mu_{common::lockrank::kQueryLog};
  std::deque<QueryLogRecord> records_ GUARDED_BY(mu_);
  std::map<uint64_t, Profile> profiles_ GUARDED_BY(mu_);
  uint64_t next_query_id_ GUARDED_BY(mu_) = 1;
  uint64_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace blendhouse::core
