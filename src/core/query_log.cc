#include "core/query_log.h"

#include <algorithm>

namespace blendhouse::core {

uint64_t QueryLog::Hash(const std::string& fingerprint) {
  // FNV-1a 64: stable across runs/platforms so profiles are addressable by
  // hash from tests and tools.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

double QueryLog::SlowThresholdMicros(uint64_t fingerprint_hash) const {
  common::MutexLock lock(mu_);
  auto it = profiles_.find(fingerprint_hash);
  if (it == profiles_.end()) return 0;
  const Profile& p = it->second;
  if (p.count < opts_.min_profile_samples || p.latency == nullptr) return 0;
  return p.latency->Snapshot().Percentile(99);
}

void QueryLog::Append(QueryLogRecord record) {
  common::MutexLock lock(mu_);
  record.query_id = next_query_id_++;
  ++total_;

  Profile& p = profiles_[record.fingerprint_hash];
  if (p.latency == nullptr) {
    p.fingerprint = record.fingerprint;
    p.latency = std::make_unique<common::metrics::HistogramMetric>(
        common::metrics::DefaultLatencyBoundsMicros());
  }
  ++p.count;
  if (record.status != "ok") ++p.errors;
  p.max_micros = std::max(p.max_micros, record.latency_micros);
  p.latency->Record(record.latency_micros);

  records_.push_back(std::move(record));
  while (records_.size() > opts_.max_records) records_.pop_front();
}

std::vector<QueryLogRecord> QueryLog::Records() const {
  common::MutexLock lock(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<QueryProfileRow> QueryLog::Profiles() const {
  common::MutexLock lock(mu_);
  std::vector<QueryProfileRow> out;
  out.reserve(profiles_.size());
  for (const auto& [hash, p] : profiles_) {
    QueryProfileRow row;
    row.fingerprint = p.fingerprint;
    row.fingerprint_hash = hash;
    row.count = p.count;
    row.errors = p.errors;
    row.max_micros = p.max_micros;
    if (p.latency != nullptr) {
      common::BucketedHistogram snap = p.latency->Snapshot();
      row.p50_micros = snap.Percentile(50);
      row.p95_micros = snap.Percentile(95);
      row.p99_micros = snap.Percentile(99);
    }
    out.push_back(std::move(row));
  }
  return out;
}

size_t QueryLog::size() const {
  common::MutexLock lock(mu_);
  return records_.size();
}

uint64_t QueryLog::total_appended() const {
  common::MutexLock lock(mu_);
  return total_;
}

void QueryLog::Clear() {
  common::MutexLock lock(mu_);
  records_.clear();
  profiles_.clear();
  next_query_id_ = 1;
  total_ = 0;
}

}  // namespace blendhouse::core
