#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/virtual_warehouse.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/options.h"
#include "core/query_log.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/plan_cache.h"
#include "storage/lsm_engine.h"

namespace blendhouse::core {

/// The BlendHouse database: a cloud-native generalized vector database over
/// disaggregated storage and compute.
///
/// Quickstart:
///
///   core::BlendHouse db;
///   db.ExecuteSql("CREATE TABLE images (id Int64, label String,"
///                 " embedding Array(Float32),"
///                 " INDEX ann embedding TYPE HNSW('DIM=96'))"
///                 " PARTITION BY (label)"
///                 " CLUSTER BY embedding INTO 8 BUCKETS;");
///   db.ExecuteSql("INSERT INTO images VALUES (1, 'cat', [ ... ]);");
///   auto r = db.Query("SELECT id, dist FROM images WHERE label = 'cat'"
///                     " ORDER BY L2Distance(embedding, [ ... ])"
///                     " LIMIT 10;");
///
/// All entry points are thread-safe; benches drive Query() from many client
/// threads concurrently. catalog_mu_ only guards the table map itself —
/// TableState objects are never destroyed while the database lives, so a
/// pointer handed out by FindTable stays valid without the lock.
class BlendHouse {
 public:
  explicit BlendHouse(BlendHouseOptions options = BlendHouseOptions());
  ~BlendHouse();

  BlendHouse(const BlendHouse&) = delete;
  BlendHouse& operator=(const BlendHouse&) = delete;

  // ---- SQL surface ---------------------------------------------------------

  /// Executes any statement. SELECT results are returned; DDL/DML return an
  /// empty result on success.
  common::Result<sql::QueryResult> ExecuteSql(const std::string& sql);

  /// SELECT with the session default settings.
  common::Result<sql::QueryResult> Query(const std::string& sql) {
    return QueryWithSettings(sql, options_.settings);
  }
  /// SELECT with per-query settings (benches flip optimizations here).
  common::Result<sql::QueryResult> QueryWithSettings(
      const std::string& sql, const sql::QuerySettings& settings);

  /// Optimizer report for a SELECT: plan tree, rewrite rules fired, plan
  /// costs, chosen strategy.
  common::Result<std::string> Explain(const std::string& sql);

  /// EXPLAIN ANALYZE: executes the SELECT and returns its rendered trace
  /// span tree (per-span wall/compute/sim-I/O times, cache-hit tags).
  common::Result<std::string> ExplainAnalyze(const std::string& sql);

  // ---- Programmatic surface ------------------------------------------------

  common::Status CreateTable(storage::TableSchema schema);
  common::Status Insert(const std::string& table,
                        std::vector<storage::Row> rows);
  /// Commits buffered rows so queries see them.
  common::Status Flush(const std::string& table);
  /// Synchronous full compaction (merges small segments, drops deleted
  /// rows, rebuilds indexes).
  common::Result<size_t> Compact(const std::string& table);
  /// Triggered compaction using the configured thresholds.
  common::Result<size_t> CompactIfNeeded(const std::string& table);

  /// Pushes every committed index into its owning worker's caches.
  common::Status PreloadTable(const std::string& table);

  // ---- Elasticity ----------------------------------------------------------

  cluster::Worker* AddReadWorker();
  common::Status RemoveReadWorker(const std::string& worker_id);

  // ---- Introspection (benches, tests) ---------------------------------------

  storage::LsmEngine* engine(const std::string& table);
  cluster::VirtualWarehouse& read_vw() { return *read_vw_; }
  storage::ObjectStore& object_store() { return store_; }
  cluster::RpcFabric& rpc() { return rpc_; }
  sql::PlanCache& plan_cache() { return plan_cache_; }
  /// Retained per-query traces (see BlendHouseOptions::trace). Retention is
  /// tail-based: error traces and slower-than-p99 traces always, a sampled
  /// residual of the rest.
  trace::TraceSink& trace_sink() { return trace_sink_; }
  /// Finished-query history behind `SELECT * FROM system.query_log` /
  /// `system.query_profile` (DESIGN.md §15).
  QueryLog& query_log() { return query_log_; }
  BlendHouseOptions& mutable_options() { return options_; }
  const BlendHouseOptions& options() const { return options_; }

  std::vector<std::string> TableNames() const EXCLUDES(catalog_mu_);

  /// Test-only: installed on every query executor this instance constructs;
  /// lets retry tests mutate the read VW topology between a query's
  /// placement and its dispatch. See Executor::SetTopologyHookForTest.
  void SetExecutorTopologyHookForTest(std::function<void(size_t)> hook) {
    executor_topology_hook_for_test_ = std::move(hook);
  }

 private:
  struct TableState {
    storage::TableSchema schema;
    std::unique_ptr<storage::LsmEngine> engine;
    common::Mutex stats_mu{common::lockrank::kTableStats};
    /// Immutable statistics snapshot: queries copy the shared_ptr under
    /// stats_mu and keep using it while refreshes swap in new snapshots.
    std::shared_ptr<const sql::TableStatistics> stats GUARDED_BY(stats_mu);
  };

  TableState* FindTable(const std::string& name) EXCLUDES(catalog_mu_);
  /// Returns the current (possibly refreshed) statistics snapshot; null when
  /// statistics cannot be built.
  std::shared_ptr<const sql::TableStatistics> RefreshStatistics(
      TableState* table);
  std::vector<common::ThreadPool*> IndexBuildPools();

  common::Result<sql::OptimizedQuery> Plan(const std::string& sql,
                                           const sql::SelectStmt& stmt,
                                           TableState* table,
                                           const sql::QuerySettings& settings,
                                           sql::ExecStats* stats);

  /// Shared SELECT path: plans + executes `select` under a fresh trace.
  /// When `out_trace` is non-null the finished trace is handed back (EXPLAIN
  /// ANALYZE), independent of the sink's sampling decision.
  common::Result<sql::QueryResult> RunSelect(
      const std::string& sql, const sql::SelectStmt& select,
      const sql::QuerySettings& settings, trace::TracePtr* out_trace);

  /// Dispatch for the system.* virtual tables (metrics, query_log,
  /// query_profile, query_trace(<id>)): in-memory snapshots scanned through
  /// the real predicate engine with WHERE pushdown and projection. These
  /// queries are never recorded into system.query_log.
  common::Result<sql::QueryResult> QuerySystemTable(
      const sql::SelectStmt& select);

  /// Optimizer report for an already-parsed SELECT (plain EXPLAIN body).
  common::Result<std::string> ExplainSelect(const sql::SelectStmt& select);

  common::Status ApplySetting(const sql::SetStmt& stmt);
  common::Status ExecuteInsert(const sql::InsertStmt& stmt);
  common::Status ExecuteUpdate(const sql::UpdateStmt& stmt);
  common::Status ExecuteDelete(const sql::DeleteStmt& stmt);

  BlendHouseOptions options_;
  storage::ObjectStore store_;
  cluster::RpcFabric rpc_;
  std::unique_ptr<cluster::VirtualWarehouse> read_vw_;
  std::function<void(size_t)> executor_topology_hook_for_test_;
  std::unique_ptr<common::ThreadPool> build_pool_;
  sql::PlanCache plan_cache_;
  trace::TraceSink trace_sink_;
  QueryLog query_log_;

  mutable common::Mutex catalog_mu_{common::lockrank::kCatalog};
  std::map<std::string, std::unique_ptr<TableState>> tables_
      GUARDED_BY(catalog_mu_);
};

}  // namespace blendhouse::core
