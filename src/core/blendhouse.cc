#include "core/blendhouse.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <map>

#include "cluster/scheduler.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/sharding.h"
#include "storage/segment.h"

namespace blendhouse::core {

namespace {

/// Per-query SQL-layer metrics: query counts by type and per-stage latency
/// histograms. Resolved once; the per-query cost is a few relaxed RMWs.
struct SqlMetrics {
  common::metrics::Counter* queries_ann;
  common::metrics::Counter* queries_scalar;
  common::metrics::Counter* query_failures;
  common::metrics::HistogramMetric* plan_micros;
  common::metrics::HistogramMetric* query_micros;
};

const SqlMetrics& QueryMetrics() {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  static const SqlMetrics m{
      reg.GetCounter("bh_sql_queries_ann_total"),
      reg.GetCounter("bh_sql_queries_scalar_total"),
      reg.GetCounter("bh_sql_query_failures_total"),
      reg.GetHistogram("bh_sql_plan_micros"),
      reg.GetHistogram("bh_sql_query_micros"),
  };
  return m;
}

std::string HexFingerprint(uint64_t hash) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
  return buf;
}

/// Builds a synthetic single-use table schema for a system.* virtual table.
storage::TableSchema VirtualSchema(
    std::string name,
    std::initializer_list<std::pair<const char*, storage::ColumnType>> cols) {
  storage::TableSchema schema;
  schema.table_name = std::move(name);
  for (const auto& [col, type] : cols)
    schema.columns.push_back({col, type});
  return schema;
}

/// Scans an in-memory row snapshot through the real query machinery: rows
/// are frozen into a columnar Segment (granule marks included) and WHERE is
/// compiled once and pushed down as a vectorized bitmap — the same
/// CompiledPredicate/BuildBitmap path regular segments use — then the
/// projection and LIMIT/OFFSET apply over the surviving bits.
common::Result<sql::QueryResult> ScanVirtualTable(
    const sql::SelectStmt& select, const storage::TableSchema& schema,
    const std::vector<storage::Row>& rows) {
  if (select.ann.has_value())
    return common::Status::InvalidArgument(schema.table_name +
                                           " does not support ANN clauses");
  sql::QueryResult out;
  if (select.select_star) {
    for (const storage::ColumnDef& c : schema.columns)
      out.column_names.push_back(c.name);
  } else {
    for (const std::string& c : select.select_columns) {
      if (schema.FindColumn(c) < 0)
        return common::Status::InvalidArgument("unknown column: " + c +
                                               " in " + schema.table_name);
      out.column_names.push_back(c);
    }
  }
  if (rows.empty()) return out;

  storage::SegmentBuilder builder(schema, "virtual");
  for (const storage::Row& r : rows) BH_RETURN_IF_ERROR(builder.AppendRow(r));
  auto segment = builder.Finish();
  if (!segment.ok()) return segment.status();

  common::Bitset bitmap((*segment)->num_rows(), /*initial=*/true);
  if (select.where != nullptr) {
    auto compiled = sql::CompiledPredicate::Compile(*select.where);
    if (!compiled.ok()) return compiled.status();
    auto bound = sql::PredicateEvaluator::Bind(std::move(*compiled), **segment);
    if (!bound.ok()) return bound.status();
    bitmap = bound->BuildBitmap(/*deletes=*/nullptr,
                                /*use_granule_pruning=*/true);
  }

  std::vector<const storage::Column*> cols;
  cols.reserve(out.column_names.size());
  for (const std::string& name : out.column_names)
    cols.push_back((*segment)->FindColumn(name));
  size_t limit =
      select.scalar_limit.value_or(std::numeric_limits<size_t>::max());
  size_t to_skip = select.scalar_offset.value_or(0);
  bitmap.ForEachSetBit([&](size_t i) {
    if (out.rows.size() >= limit) return;
    if (to_skip > 0) {
      --to_skip;
      return;
    }
    storage::Row row;
    row.values.reserve(cols.size());
    for (const storage::Column* c : cols) row.values.push_back(c->GetValue(i));
    out.rows.push_back(std::move(row));
  });
  return out;
}

}  // namespace

BlendHouse::BlendHouse(BlendHouseOptions options)
    : options_(std::move(options)),
      store_(options_.remote_cost),
      rpc_(options_.rpc_cost),
      trace_sink_(options_.trace),
      query_log_(options_.query_log) {
  // Pin the process-wide topology default before any pool/scheduler below
  // is constructed (the flag is read at construction time).
  common::SetSchedulerSharding(options_.scheduler_sharding);
  cluster::WorkerOptions worker_options = options_.worker;
  worker_options.threads = options_.worker_threads;
  read_vw_ = std::make_unique<cluster::VirtualWarehouse>(
      "read", options_.read_workers, &store_, &rpc_, worker_options);
  if (options_.separate_write_vw)
    build_pool_ = std::make_unique<common::ThreadPool>(options_.build_threads);
}

BlendHouse::~BlendHouse() = default;

std::vector<common::ThreadPool*> BlendHouse::IndexBuildPools() {
  if (options_.separate_write_vw) return {build_pool_.get()};
  // Mixed configuration: index builds contend with queries for the read
  // VW's worker threads (Fig. 12).
  std::vector<common::ThreadPool*> pools;
  for (cluster::Worker* w : read_vw_->workers()) pools.push_back(&w->pool());
  return pools;
}

BlendHouse::TableState* BlendHouse::FindTable(const std::string& name) {
  common::MutexLock lock(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> BlendHouse::TableNames() const {
  common::MutexLock lock(catalog_mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

storage::LsmEngine* BlendHouse::engine(const std::string& table) {
  TableState* t = FindTable(table);
  return t == nullptr ? nullptr : t->engine.get();
}

common::Status BlendHouse::CreateTable(storage::TableSchema schema) {
  if (schema.table_name.empty())
    return common::Status::InvalidArgument("table needs a name");
  if (schema.index_spec.has_value() && schema.index_spec->dim == 0)
    return common::Status::InvalidArgument(
        "vector index needs DIM, e.g. HNSW('DIM=96')");
  // Session default storage precision: injected into index specs that don't
  // pin PRECISION themselves, so `SET distance_precision = 'int8'` covers
  // every subsequently created table (DESIGN.md §13).
  if (schema.index_spec.has_value() &&
      options_.settings.distance_precision != vecindex::Precision::kFp32 &&
      schema.index_spec->params.count("PRECISION") == 0) {
    schema.index_spec->params["PRECISION"] =
        vecindex::PrecisionName(options_.settings.distance_precision);
  }
  common::MutexLock lock(catalog_mu_);
  if (tables_.count(schema.table_name) > 0)
    return common::Status::AlreadyExists("table: " + schema.table_name);
  auto state = std::make_unique<TableState>();
  state->schema = schema;
  state->engine = std::make_unique<storage::LsmEngine>(
      std::move(schema), &store_, IndexBuildPools(), options_.ingest);
  tables_[state->schema.table_name] = std::move(state);
  plan_cache_.Invalidate();
  return common::Status::Ok();
}

common::Status BlendHouse::Insert(const std::string& table,
                                  std::vector<storage::Row> rows) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  BH_RETURN_IF_ERROR(t->engine->Insert(std::move(rows)));
  return common::Status::Ok();
}

common::Status BlendHouse::Flush(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  BH_RETURN_IF_ERROR(t->engine->Flush());
  if (options_.preload_after_flush) BH_RETURN_IF_ERROR(PreloadTable(table));
  return common::Status::Ok();
}

common::Result<size_t> BlendHouse::Compact(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  auto jobs = t->engine->Compact();
  if (!jobs.ok()) return jobs.status();
  if (options_.preload_after_flush) BH_RETURN_IF_ERROR(PreloadTable(table));
  return jobs;
}

common::Result<size_t> BlendHouse::CompactIfNeeded(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  return t->engine->CompactIfNeeded();
}

common::Status BlendHouse::PreloadTable(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  return cluster::PreloadIndexes(*read_vw_, t->schema,
                                 t->engine->Snapshot());
}

cluster::Worker* BlendHouse::AddReadWorker() { return read_vw_->AddWorker(); }

common::Status BlendHouse::RemoveReadWorker(const std::string& worker_id) {
  return read_vw_->RemoveWorker(worker_id);
}

std::shared_ptr<const sql::TableStatistics> BlendHouse::RefreshStatistics(
    TableState* table) {
  storage::TableSnapshot snapshot = table->engine->Snapshot();
  // stats_mu also serializes concurrent refreshes so only one thread pays
  // the sampling cost.
  common::MutexLock lock(table->stats_mu);
  if (table->stats != nullptr && table->stats->version() == snapshot.version)
    return table->stats;
  // Sample a bounded number of segments (largest first for coverage).
  std::vector<storage::SegmentMeta> metas = snapshot.segments;
  std::sort(metas.begin(), metas.end(),
            [](const storage::SegmentMeta& a, const storage::SegmentMeta& b) {
              return a.num_rows > b.num_rows;
            });
  if (metas.size() > options_.statistics_sample_segments)
    metas.resize(options_.statistics_sample_segments);
  std::vector<storage::SegmentPtr> segments;
  for (const storage::SegmentMeta& m : metas) {
    auto segment = table->engine->FetchSegment(m.segment_id);
    if (!segment.ok()) return table->stats;  // keep serving the old snapshot
    segments.push_back(*segment);
  }
  auto fresh = std::make_shared<sql::TableStatistics>(
      sql::TableStatistics::Build(segments));
  fresh->set_version(snapshot.version);
  table->stats = fresh;
  return table->stats;
}

common::Result<sql::OptimizedQuery> BlendHouse::Plan(
    const std::string& sql, const sql::SelectStmt& stmt, TableState* table,
    const sql::QuerySettings& settings, sql::ExecStats* stats) {
  // Plan cache: parameterized signature -> previously chosen strategy; a
  // hit takes the short-circuit path and skips stats + rules + costing.
  std::string signature;
  if (settings.use_plan_cache) {
    auto sig = sql::ParameterizedSignature(sql);
    if (sig.ok()) {
      signature = std::move(*sig);
      if (auto cached = plan_cache_.Get(signature)) {
        // Extended plan matching: a cached strategy is only valid while the
        // new parameters land in a similar selectivity regime — the same
        // query shape with a 1%-pass range must not reuse a plan chosen for
        // a 99%-pass range. The histogram lookup is far cheaper than the
        // full rule + costing pipeline this hit skips.
        bool selectivity_compatible = true;
        if (stmt.where != nullptr) {
          std::shared_ptr<const sql::TableStatistics> snapshot;
          {
            common::MutexLock lock(table->stats_mu);
            snapshot = table->stats;
          }
          if (snapshot != nullptr) {
            double s = snapshot->EstimateSelectivity(*stmt.where);
            double cached_s = std::max(1e-4, cached->estimated_selectivity);
            double ratio = std::max(s, 1e-4) / cached_s;
            selectivity_compatible = ratio > 0.25 && ratio < 4.0;
          }
        }
        if (selectivity_compatible) {
          auto quick = sql::ShortCircuitOptimize(stmt, table->schema,
                                                 cached->strategy);
          if (quick.ok()) {
            stats->used_plan_cache = true;
            stats->used_short_circuit = true;
            quick->estimated_selectivity = cached->estimated_selectivity;
            quick->rules_fired = cached->rules_fired;
            return quick;
          }
        }
      }
    }
  }

  // Full pipeline: refresh stats, build + rewrite the plan, cost it. The
  // shared_ptr keeps this snapshot alive even if a concurrent flush swaps
  // in fresher statistics mid-optimization.
  std::shared_ptr<const sql::TableStatistics> stats_snapshot;
  if (options_.auto_refresh_statistics)
    stats_snapshot = RefreshStatistics(table);
  auto optimized =
      sql::Optimize(stmt, table->schema, stats_snapshot.get(), settings);
  if (!optimized.ok()) return optimized.status();

  if (settings.use_plan_cache && !signature.empty()) {
    sql::CachedPlan entry;
    entry.strategy = optimized->choice.strategy;
    entry.estimated_selectivity = optimized->estimated_selectivity;
    entry.rules_fired = optimized->rules_fired;
    plan_cache_.Put(signature, entry);
  }
  return optimized;
}

common::Result<sql::QueryResult> BlendHouse::QuerySystemTable(
    const sql::SelectStmt& select) {
  using storage::ColumnType;

  if (select.table == "system.metrics") {
    storage::TableSchema schema =
        VirtualSchema("system.metrics", {{"name", ColumnType::kString},
                                         {"value", ColumnType::kFloat64}});
    std::vector<storage::Row> rows;
    for (const common::metrics::MetricSample& s :
         common::metrics::MetricsRegistry::Instance().Snapshot()) {
      storage::Row row;
      row.values.emplace_back(s.name);
      row.values.emplace_back(s.value);
      rows.push_back(std::move(row));
    }
    return ScanVirtualTable(select, schema, rows);
  }

  if (select.table == "system.query_log") {
    storage::TableSchema schema = VirtualSchema(
        "system.query_log",
        {{"query_id", ColumnType::kInt64},
         {"query", ColumnType::kString},
         {"fingerprint", ColumnType::kString},
         {"fingerprint_hash", ColumnType::kString},
         {"type", ColumnType::kString},
         {"status", ColumnType::kString},
         {"error", ColumnType::kString},
         {"trace_id", ColumnType::kInt64},
         {"trace_retention", ColumnType::kString},
         {"latency_micros", ColumnType::kFloat64},
         {"plan_micros", ColumnType::kFloat64},
         {"exec_micros", ColumnType::kFloat64},
         {"queue_wait_micros", ColumnType::kFloat64},
         {"compute_micros", ColumnType::kFloat64},
         {"sim_io_micros", ColumnType::kFloat64},
         {"rows_scanned", ColumnType::kInt64},
         {"dist_fp32", ColumnType::kInt64},
         {"dist_fp16", ColumnType::kInt64},
         {"dist_bf16", ColumnType::kInt64},
         {"dist_int8", ColumnType::kInt64},
         {"fp32_rerank_rows", ColumnType::kInt64},
         {"iter_batches", ColumnType::kInt64},
         {"iter_rows_visited", ColumnType::kInt64},
         {"iter_recompute_rounds", ColumnType::kInt64},
         {"filter_cache_hits", ColumnType::kInt64},
         {"filter_cache_misses", ColumnType::kInt64},
         {"segments_scanned", ColumnType::kInt64},
         {"workers_fanout", ColumnType::kInt64},
         {"retries", ColumnType::kInt64}});
    std::vector<storage::Row> rows;
    for (const QueryLogRecord& r : query_log_.Records()) {
      const common::QueryLedger& l = r.ledger;
      storage::Row row;
      row.values = {static_cast<int64_t>(r.query_id),
                    r.sql,
                    r.fingerprint,
                    HexFingerprint(r.fingerprint_hash),
                    r.type,
                    r.status,
                    r.error,
                    static_cast<int64_t>(r.trace_id),
                    r.trace_retention,
                    r.latency_micros,
                    r.plan_micros,
                    r.exec_micros,
                    l.queue_wait_micros,
                    l.compute_micros,
                    l.sim_io_micros,
                    static_cast<int64_t>(l.rows_scanned),
                    static_cast<int64_t>(l.distance_comps[0]),
                    static_cast<int64_t>(l.distance_comps[1]),
                    static_cast<int64_t>(l.distance_comps[2]),
                    static_cast<int64_t>(l.distance_comps[3]),
                    static_cast<int64_t>(l.fp32_rerank_rows),
                    static_cast<int64_t>(l.iter_batches),
                    static_cast<int64_t>(l.iter_rows_visited),
                    static_cast<int64_t>(l.iter_recompute_rounds),
                    static_cast<int64_t>(l.filter_cache_hits),
                    static_cast<int64_t>(l.filter_cache_misses),
                    static_cast<int64_t>(l.segments_scanned),
                    static_cast<int64_t>(l.workers_fanout),
                    static_cast<int64_t>(l.retries)};
      rows.push_back(std::move(row));
    }
    return ScanVirtualTable(select, schema, rows);
  }

  if (select.table == "system.query_profile") {
    storage::TableSchema schema = VirtualSchema(
        "system.query_profile",
        {{"fingerprint", ColumnType::kString},
         {"fingerprint_hash", ColumnType::kString},
         {"count", ColumnType::kInt64},
         {"errors", ColumnType::kInt64},
         {"p50_micros", ColumnType::kFloat64},
         {"p95_micros", ColumnType::kFloat64},
         {"p99_micros", ColumnType::kFloat64},
         {"max_micros", ColumnType::kFloat64}});
    std::vector<storage::Row> rows;
    for (const QueryProfileRow& p : query_log_.Profiles()) {
      storage::Row row;
      row.values = {p.fingerprint,
                    HexFingerprint(p.fingerprint_hash),
                    static_cast<int64_t>(p.count),
                    static_cast<int64_t>(p.errors),
                    p.p50_micros,
                    p.p95_micros,
                    p.p99_micros,
                    p.max_micros};
      rows.push_back(std::move(row));
    }
    return ScanVirtualTable(select, schema, rows);
  }

  if (select.table == "system.query_trace") {
    // EXPLAIN-ANALYZE-style rendering of a retained historical trace:
    // `SELECT * FROM system.query_trace(<trace_id>)`.
    if (!select.table_arg.has_value())
      return common::Status::InvalidArgument(
          "system.query_trace needs a trace id: system.query_trace(42)");
    auto found = trace_sink_.FindTrace(*select.table_arg);
    if (!found.has_value())
      return common::Status::NotFound(
          "trace " + std::to_string(*select.table_arg) +
          " not retained (evicted, dropped by sampling, or never existed)");
    char head[160];
    std::snprintf(head, sizeof(head),
                  "trace_id=%llu retention=%s latency=%.0fus",
                  static_cast<unsigned long long>(found->trace_id),
                  trace::RetentionName(found->retention),
                  found->latency_micros);
    std::string text = head;
    if (!found->fingerprint.empty())
      text += " fingerprint=" + found->fingerprint;
    text += "\n" + trace::RenderSpanTree(found->spans);
    sql::QueryResult out;
    out.column_names = {"explain"};
    size_t begin = 0;
    while (begin <= text.size()) {
      size_t end = text.find('\n', begin);
      if (end == std::string::npos) end = text.size();
      if (end > begin) {
        storage::Row row;
        row.values.emplace_back(text.substr(begin, end - begin));
        out.rows.push_back(std::move(row));
      }
      begin = end + 1;
    }
    return out;
  }

  return common::Status::NotFound("unknown system table: " + select.table);
}

common::Result<sql::QueryResult> BlendHouse::QueryWithSettings(
    const std::string& sql, const sql::QuerySettings& settings) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt->kind != sql::Statement::Kind::kSelect)
    return common::Status::InvalidArgument("Query() expects SELECT");
  return RunSelect(sql, *stmt->select, settings, /*out_trace=*/nullptr);
}

common::Result<sql::QueryResult> BlendHouse::RunSelect(
    const std::string& sql, const sql::SelectStmt& select,
    const sql::QuerySettings& settings, trace::TracePtr* out_trace) {
  // system.* introspection is answered from snapshots and never recorded
  // into the query log (reading history must not grow history).
  if (select.table.rfind("system.", 0) == 0) return QuerySystemTable(select);
  TableState* table = FindTable(select.table);
  if (table == nullptr)
    return common::Status::NotFound("table: " + select.table);

  const SqlMetrics& m = QueryMetrics();
  const bool is_ann = select.ann.has_value();
  (is_ann ? m.queries_ann : m.queries_scalar)->Add(1);

  // Fingerprint at plan time: the normalized parameterized signature, so
  // identical-shape queries share one profile row and one retention
  // threshold. Unparseable input (shouldn't happen — we parsed it already)
  // degrades to the raw SQL as its own shape.
  std::string fingerprint;
  if (auto sig = sql::ParameterizedSignature(sql); sig.ok())
    fingerprint = std::move(*sig);
  else
    fingerprint = sql;
  const uint64_t fingerprint_hash = QueryLog::Hash(fingerprint);

  trace::TracePtr trace = trace::Trace::Make("query");
  trace::SpanPtr root = trace->StartSpan("query");
  root->SetTag("table", select.table);
  root->SetTag("type", is_ann ? "ann" : "scalar");
  root->SetTag("fingerprint", HexFingerprint(fingerprint_hash));

  // Runs at every exit — success and both failure paths — so every finished
  // query gets exactly one tail-retention decision and one query-log record.
  auto finish = [&](const common::Status& status, const sql::ExecStats& stats) {
    double latency = root->ElapsedMicros();
    m.query_micros->Record(latency);
    root->End();
    if (out_trace != nullptr) *out_trace = trace;

    // Tail-based retention at trace completion (DESIGN.md §15): the verdict
    // compares the root latency against the fingerprint's rolling p99 —
    // read *before* this query is appended, so a query is never judged
    // against itself — floored by `SET slow_query_threshold_ms` when set.
    double threshold = query_log_.SlowThresholdMicros(fingerprint_hash);
    double floor_micros = settings.slow_query_threshold_ms * 1000.0;
    if (floor_micros > 0)
      threshold =
          threshold > 0 ? std::min(threshold, floor_micros) : floor_micros;
    trace::TraceSink::Completion completion;
    completion.error = !status.ok();
    completion.latency_micros = latency;
    completion.slow_threshold_micros = threshold;
    completion.fingerprint = fingerprint;
    trace::Retention verdict = trace_sink_.Offer(*trace, completion);

    QueryLogRecord rec;
    rec.sql = sql;
    rec.fingerprint = fingerprint;
    rec.fingerprint_hash = fingerprint_hash;
    rec.type = is_ann ? "ann" : "scalar";
    rec.status = status.ok() ? "ok" : "error";
    if (!status.ok()) rec.error = status.ToString();
    rec.trace_id = trace->trace_id();
    rec.trace_retention = trace::RetentionName(verdict);
    rec.latency_micros = latency;
    rec.plan_micros = stats.plan_micros;
    rec.exec_micros = stats.exec_micros;
    rec.ledger = stats.ledger;
    // Queries that died before execution have an empty breakdown; their
    // wall time was all inline work.
    if (rec.ledger.compute_micros + rec.ledger.sim_io_micros +
            rec.ledger.queue_wait_micros ==
        0)
      rec.ledger.compute_micros = latency;
    query_log_.Append(std::move(rec));
  };

  // Planning (which may refresh statistics with real object-store reads)
  // runs under a deferred scope so its simulated I/O is attributed to the
  // plan span, then paid once afterwards — total latency is unchanged, but
  // EXPLAIN ANALYZE can reconcile span I/O against the store's counters.
  sql::ExecStats pre_stats;
  trace::SpanPtr plan_span = trace->StartSpan("plan", root);
  uint64_t plan_sim = 0;
  auto plan = [&] {
    common::DeferredChargeScope scope;
    auto p = Plan(sql, select, table, settings, &pre_stats);
    plan_sim = scope.accumulated_micros();
    return p;
  }();
  double plan_micros = plan_span->ElapsedMicros();
  plan_span->SetBreakdown(plan_micros, static_cast<double>(plan_sim), 0);
  plan_span->SetTag("plan_cache", pre_stats.used_plan_cache ? "hit" : "miss");
  plan_span->End();
  if (plan_sim > 0) common::ChargeSimLatency(plan_sim);
  m.plan_micros->Record(plan_micros);
  pre_stats.plan_micros = plan_micros;
  if (!plan.ok()) {
    m.query_failures->Add(1);
    finish(plan.status(), pre_stats);
    return plan.status();
  }

  sql::Executor executor(read_vw_.get(), settings);
  executor.SetTrace(trace, root);
  if (executor_topology_hook_for_test_)
    executor.SetTopologyHookForTest(executor_topology_hook_for_test_);
  auto result = executor.Execute(*plan, *table->engine);

  if (!result.ok()) {
    m.query_failures->Add(1);
    finish(result.status(), pre_stats);
    return result.status();
  }
  result->stats.plan_micros = plan_micros;
  result->stats.used_plan_cache = pre_stats.used_plan_cache;
  result->stats.used_short_circuit = pre_stats.used_short_circuit;
  finish(common::Status::Ok(), result->stats);
  return result;
}

common::Result<std::string> BlendHouse::Explain(const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  // Accept both "SELECT ..." and "EXPLAIN [ANALYZE] SELECT ..." spellings.
  if (stmt->kind == sql::Statement::Kind::kExplain)
    return stmt->explain->analyze ? ExplainAnalyze(sql)
                                  : ExplainSelect(stmt->explain->select);
  if (stmt->kind != sql::Statement::Kind::kSelect)
    return common::Status::InvalidArgument("EXPLAIN expects SELECT");
  return ExplainSelect(*stmt->select);
}

common::Result<std::string> BlendHouse::ExplainSelect(
    const sql::SelectStmt& select) {
  TableState* table = FindTable(select.table);
  if (table == nullptr)
    return common::Status::NotFound("table: " + select.table);
  std::shared_ptr<const sql::TableStatistics> stats =
      RefreshStatistics(table);
  auto optimized =
      sql::Optimize(select, table->schema, stats.get(), options_.settings);
  if (!optimized.ok()) return optimized.status();

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "strategy=%s selectivity=%.4f rules_fired=%d\n"
                "cost A=%.0f B=%.0f C=%.0f\n",
                sql::ExecStrategyName(optimized->choice.strategy),
                optimized->estimated_selectivity, optimized->rules_fired,
                optimized->choice.cost_a, optimized->choice.cost_b,
                optimized->choice.cost_c);
  return std::string(buf) + optimized->explain;
}

common::Result<std::string> BlendHouse::ExplainAnalyze(
    const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  const sql::SelectStmt* select = nullptr;
  if (stmt->kind == sql::Statement::Kind::kExplain)
    select = &stmt->explain->select;
  else if (stmt->kind == sql::Statement::Kind::kSelect)
    select = &*stmt->select;
  else
    return common::Status::InvalidArgument("EXPLAIN ANALYZE expects SELECT");

  trace::TracePtr trace;
  auto result = RunSelect(sql, *select, options_.settings, &trace);
  if (!result.ok()) return result.status();
  if (trace == nullptr)
    return common::Status::Internal("query produced no trace");

  char buf[128];
  std::snprintf(buf, sizeof(buf), "rows=%zu plan_micros=%.0f\n",
                result->rows.size(), result->stats.plan_micros);
  return std::string(buf) + trace::RenderSpanTree(trace->Collect());
}

common::Status BlendHouse::ApplySetting(const sql::SetStmt& stmt) {
  sql::QuerySettings& s = options_.settings;
  auto as_int = [&]() -> common::Result<int64_t> {
    if (const int64_t* i = std::get_if<int64_t>(&stmt.value)) return *i;
    if (const double* d = std::get_if<double>(&stmt.value))
      return static_cast<int64_t>(*d);
    return common::Status::InvalidArgument("SET " + stmt.name +
                                           " expects a number");
  };
  std::string name = stmt.name;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);

  // ANN search knobs (the paper's ef_search / nprobe session settings).
  std::map<std::string, int*> int_knobs = {
      {"ef_search", &s.ef_search},
      {"nprobe", &s.nprobe},
      {"refine_factor", &s.refine_factor},
      {"rerank_depth", &s.rerank_depth},
  };
  if (auto it = int_knobs.find(name); it != int_knobs.end()) {
    auto v = as_int();
    if (!v.ok()) return v.status();
    if (*v <= 0)
      return common::Status::InvalidArgument("SET " + stmt.name + " > 0");
    *it->second = static_cast<int>(*v);
    return common::Status::Ok();
  }
  if (name == "semantic_probe_buckets") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    if (*v <= 0)
      return common::Status::InvalidArgument("SET " + stmt.name + " > 0");
    s.semantic_probe_buckets = static_cast<size_t>(*v);
    return common::Status::Ok();
  }
  std::map<std::string, bool*> bool_knobs = {
      {"use_cbo", &s.use_cbo},
      {"scalar_pruning", &s.scalar_pruning},
      {"semantic_pruning", &s.semantic_pruning},
      {"adaptive_semantic", &s.adaptive_semantic},
      {"use_column_cache", &s.use_column_cache},
      {"use_granule_pruning", &s.use_granule_pruning},
      {"use_plan_cache", &s.use_plan_cache},
      {"short_circuit", &s.short_circuit},
      {"use_native_iterators", &s.use_native_iterators},
  };
  if (auto it = bool_knobs.find(name); it != bool_knobs.end()) {
    auto v = as_int();
    if (!v.ok()) return v.status();
    *it->second = *v != 0;
    if (name == "use_plan_cache" && !*it->second) plan_cache_.Invalidate();
    return common::Status::Ok();
  }
  if (name == "slow_query_threshold_ms") {
    // Fractional milliseconds are meaningful here (a sim-latency-off unit
    // test's queries run in microseconds), so this knob keeps the double.
    double v;
    if (const int64_t* i = std::get_if<int64_t>(&stmt.value))
      v = static_cast<double>(*i);
    else if (const double* d = std::get_if<double>(&stmt.value))
      v = *d;
    else
      return common::Status::InvalidArgument(
          "SET slow_query_threshold_ms expects a number");
    if (v < 0)
      return common::Status::InvalidArgument(
          "SET slow_query_threshold_ms >= 0");
    s.slow_query_threshold_ms = v;
    return common::Status::Ok();
  }
  if (name == "distance_precision") {
    // String knob: the default storage precision for indexes created after
    // this point (DESIGN.md §13). `SET distance_precision = 'int8'`.
    const std::string* v = std::get_if<std::string>(&stmt.value);
    if (v == nullptr)
      return common::Status::InvalidArgument(
          "SET distance_precision expects a name (fp32/fp16/bf16/int8)");
    vecindex::Precision p;
    if (!vecindex::ParsePrecision(*v, &p))
      return common::Status::InvalidArgument("unknown precision: " + *v);
    s.distance_precision = p;
    return common::Status::Ok();
  }
  if (name == "scheduler_sharding") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    // Process-wide construction-time default: affects pools/schedulers
    // built after this point (a fresh instance, scale-out workers), not
    // ones already running — queue topology cannot be swapped live.
    options_.scheduler_sharding = *v != 0;
    common::SetSchedulerSharding(*v != 0);
    return common::Status::Ok();
  }
  return common::Status::NotFound("unknown setting: " + stmt.name);
}

common::Status BlendHouse::ExecuteInsert(const sql::InsertStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  if (!stmt.rows.empty() &&
      stmt.rows[0].values.size() != table->schema.columns.size())
    return common::Status::InvalidArgument(
        "INSERT arity mismatch: expected " +
        std::to_string(table->schema.columns.size()) + " values");
  return table->engine->Insert(stmt.rows);
}

common::Status BlendHouse::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  storage::LsmEngine& engine = *table->engine;

  // Resolve assignment targets once.
  std::vector<std::pair<int, storage::Value>> assigns;
  for (const auto& [col, value] : stmt.assignments) {
    int idx = table->schema.FindColumn(col);
    if (idx < 0) return common::Status::NotFound("column: " + col);
    assigns.emplace_back(idx, value);
  }

  // Fig. 6 realtime update: locate matching rows, write updated copies as a
  // new version, and mark the old rows in delete bitmaps. The old segments
  // and their indexes are never touched.
  sql::Executor executor(read_vw_.get(), options_.settings);
  auto matches = executor.FindMatchingRows(engine, stmt.where.get());
  if (!matches.ok()) return matches.status();

  std::vector<storage::Row> new_rows;
  for (const auto& [segment_id, offsets] : *matches) {
    auto segment = engine.FetchSegment(segment_id);
    if (!segment.ok()) return segment.status();
    for (uint64_t row : offsets) {
      storage::Row updated =
          storage::RowFromSegment(**segment, static_cast<size_t>(row));
      for (const auto& [idx, value] : assigns) updated.values[idx] = value;
      new_rows.push_back(std::move(updated));
    }
    BH_RETURN_IF_ERROR(engine.DeleteRows(segment_id, offsets));
  }
  if (!new_rows.empty()) {
    BH_RETURN_IF_ERROR(engine.Insert(std::move(new_rows)));
    BH_RETURN_IF_ERROR(engine.Flush());
  }
  return common::Status::Ok();
}

common::Status BlendHouse::ExecuteDelete(const sql::DeleteStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  sql::Executor executor(read_vw_.get(), options_.settings);
  auto matches = executor.FindMatchingRows(*table->engine, stmt.where.get());
  if (!matches.ok()) return matches.status();
  for (const auto& [segment_id, offsets] : *matches)
    BH_RETURN_IF_ERROR(table->engine->DeleteRows(segment_id, offsets));
  return common::Status::Ok();
}

common::Result<sql::QueryResult> BlendHouse::ExecuteSql(
    const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  switch (stmt->kind) {
    case sql::Statement::Kind::kSelect:
      return Query(sql);
    case sql::Statement::Kind::kExplain: {
      // EXPLAIN → the optimizer report; EXPLAIN ANALYZE → execute and render
      // the trace span tree. Either way the text comes back one row per
      // line in a single "explain" column.
      auto text = stmt->explain->analyze ? ExplainAnalyze(sql)
                                         : ExplainSelect(stmt->explain->select);
      if (!text.ok()) return text.status();
      sql::QueryResult out;
      out.column_names = {"explain"};
      size_t begin = 0;
      const std::string& s = *text;
      while (begin <= s.size()) {
        size_t end = s.find('\n', begin);
        if (end == std::string::npos) end = s.size();
        if (end > begin) {
          storage::Row row;
          row.values.emplace_back(s.substr(begin, end - begin));
          out.rows.push_back(std::move(row));
        }
        begin = end + 1;
      }
      return out;
    }
    case sql::Statement::Kind::kCreateTable:
      BH_RETURN_IF_ERROR(CreateTable(stmt->create_table->schema));
      return sql::QueryResult{};
    case sql::Statement::Kind::kInsert:
      BH_RETURN_IF_ERROR(ExecuteInsert(*stmt->insert));
      return sql::QueryResult{};
    case sql::Statement::Kind::kUpdate:
      BH_RETURN_IF_ERROR(ExecuteUpdate(*stmt->update));
      return sql::QueryResult{};
    case sql::Statement::Kind::kDelete:
      BH_RETURN_IF_ERROR(ExecuteDelete(*stmt->del));
      return sql::QueryResult{};
    case sql::Statement::Kind::kOptimize: {
      auto jobs = Compact(stmt->optimize->table);
      if (!jobs.ok()) return jobs.status();
      return sql::QueryResult{};
    }
    case sql::Statement::Kind::kSet:
      BH_RETURN_IF_ERROR(ApplySetting(*stmt->set));
      return sql::QueryResult{};
  }
  return common::Status::Internal("unreachable");
}

}  // namespace blendhouse::core
