#include "core/blendhouse.h"

#include <algorithm>
#include <map>

#include "cluster/scheduler.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/sharding.h"

namespace blendhouse::core {

namespace {

/// Per-query SQL-layer metrics: query counts by type and per-stage latency
/// histograms. Resolved once; the per-query cost is a few relaxed RMWs.
struct SqlMetrics {
  common::metrics::Counter* queries_ann;
  common::metrics::Counter* queries_scalar;
  common::metrics::Counter* query_failures;
  common::metrics::HistogramMetric* plan_micros;
  common::metrics::HistogramMetric* query_micros;
};

const SqlMetrics& QueryMetrics() {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  static const SqlMetrics m{
      reg.GetCounter("bh_sql_queries_ann_total"),
      reg.GetCounter("bh_sql_queries_scalar_total"),
      reg.GetCounter("bh_sql_query_failures_total"),
      reg.GetHistogram("bh_sql_plan_micros"),
      reg.GetHistogram("bh_sql_query_micros"),
  };
  return m;
}

}  // namespace

BlendHouse::BlendHouse(BlendHouseOptions options)
    : options_(std::move(options)),
      store_(options_.remote_cost),
      rpc_(options_.rpc_cost),
      trace_sink_(options_.trace) {
  // Pin the process-wide topology default before any pool/scheduler below
  // is constructed (the flag is read at construction time).
  common::SetSchedulerSharding(options_.scheduler_sharding);
  cluster::WorkerOptions worker_options = options_.worker;
  worker_options.threads = options_.worker_threads;
  read_vw_ = std::make_unique<cluster::VirtualWarehouse>(
      "read", options_.read_workers, &store_, &rpc_, worker_options);
  if (options_.separate_write_vw)
    build_pool_ = std::make_unique<common::ThreadPool>(options_.build_threads);
}

BlendHouse::~BlendHouse() = default;

std::vector<common::ThreadPool*> BlendHouse::IndexBuildPools() {
  if (options_.separate_write_vw) return {build_pool_.get()};
  // Mixed configuration: index builds contend with queries for the read
  // VW's worker threads (Fig. 12).
  std::vector<common::ThreadPool*> pools;
  for (cluster::Worker* w : read_vw_->workers()) pools.push_back(&w->pool());
  return pools;
}

BlendHouse::TableState* BlendHouse::FindTable(const std::string& name) {
  common::MutexLock lock(catalog_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> BlendHouse::TableNames() const {
  common::MutexLock lock(catalog_mu_);
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

storage::LsmEngine* BlendHouse::engine(const std::string& table) {
  TableState* t = FindTable(table);
  return t == nullptr ? nullptr : t->engine.get();
}

common::Status BlendHouse::CreateTable(storage::TableSchema schema) {
  if (schema.table_name.empty())
    return common::Status::InvalidArgument("table needs a name");
  if (schema.index_spec.has_value() && schema.index_spec->dim == 0)
    return common::Status::InvalidArgument(
        "vector index needs DIM, e.g. HNSW('DIM=96')");
  // Session default storage precision: injected into index specs that don't
  // pin PRECISION themselves, so `SET distance_precision = 'int8'` covers
  // every subsequently created table (DESIGN.md §13).
  if (schema.index_spec.has_value() &&
      options_.settings.distance_precision != vecindex::Precision::kFp32 &&
      schema.index_spec->params.count("PRECISION") == 0) {
    schema.index_spec->params["PRECISION"] =
        vecindex::PrecisionName(options_.settings.distance_precision);
  }
  common::MutexLock lock(catalog_mu_);
  if (tables_.count(schema.table_name) > 0)
    return common::Status::AlreadyExists("table: " + schema.table_name);
  auto state = std::make_unique<TableState>();
  state->schema = schema;
  state->engine = std::make_unique<storage::LsmEngine>(
      std::move(schema), &store_, IndexBuildPools(), options_.ingest);
  tables_[state->schema.table_name] = std::move(state);
  plan_cache_.Invalidate();
  return common::Status::Ok();
}

common::Status BlendHouse::Insert(const std::string& table,
                                  std::vector<storage::Row> rows) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  BH_RETURN_IF_ERROR(t->engine->Insert(std::move(rows)));
  return common::Status::Ok();
}

common::Status BlendHouse::Flush(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  BH_RETURN_IF_ERROR(t->engine->Flush());
  if (options_.preload_after_flush) BH_RETURN_IF_ERROR(PreloadTable(table));
  return common::Status::Ok();
}

common::Result<size_t> BlendHouse::Compact(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  auto jobs = t->engine->Compact();
  if (!jobs.ok()) return jobs.status();
  if (options_.preload_after_flush) BH_RETURN_IF_ERROR(PreloadTable(table));
  return jobs;
}

common::Result<size_t> BlendHouse::CompactIfNeeded(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  return t->engine->CompactIfNeeded();
}

common::Status BlendHouse::PreloadTable(const std::string& table) {
  TableState* t = FindTable(table);
  if (t == nullptr) return common::Status::NotFound("table: " + table);
  return cluster::PreloadIndexes(*read_vw_, t->schema,
                                 t->engine->Snapshot());
}

cluster::Worker* BlendHouse::AddReadWorker() { return read_vw_->AddWorker(); }

common::Status BlendHouse::RemoveReadWorker(const std::string& worker_id) {
  return read_vw_->RemoveWorker(worker_id);
}

std::shared_ptr<const sql::TableStatistics> BlendHouse::RefreshStatistics(
    TableState* table) {
  storage::TableSnapshot snapshot = table->engine->Snapshot();
  // stats_mu also serializes concurrent refreshes so only one thread pays
  // the sampling cost.
  common::MutexLock lock(table->stats_mu);
  if (table->stats != nullptr && table->stats->version() == snapshot.version)
    return table->stats;
  // Sample a bounded number of segments (largest first for coverage).
  std::vector<storage::SegmentMeta> metas = snapshot.segments;
  std::sort(metas.begin(), metas.end(),
            [](const storage::SegmentMeta& a, const storage::SegmentMeta& b) {
              return a.num_rows > b.num_rows;
            });
  if (metas.size() > options_.statistics_sample_segments)
    metas.resize(options_.statistics_sample_segments);
  std::vector<storage::SegmentPtr> segments;
  for (const storage::SegmentMeta& m : metas) {
    auto segment = table->engine->FetchSegment(m.segment_id);
    if (!segment.ok()) return table->stats;  // keep serving the old snapshot
    segments.push_back(*segment);
  }
  auto fresh = std::make_shared<sql::TableStatistics>(
      sql::TableStatistics::Build(segments));
  fresh->set_version(snapshot.version);
  table->stats = fresh;
  return table->stats;
}

common::Result<sql::OptimizedQuery> BlendHouse::Plan(
    const std::string& sql, const sql::SelectStmt& stmt, TableState* table,
    const sql::QuerySettings& settings, sql::ExecStats* stats) {
  // Plan cache: parameterized signature -> previously chosen strategy; a
  // hit takes the short-circuit path and skips stats + rules + costing.
  std::string signature;
  if (settings.use_plan_cache) {
    auto sig = sql::ParameterizedSignature(sql);
    if (sig.ok()) {
      signature = std::move(*sig);
      if (auto cached = plan_cache_.Get(signature)) {
        // Extended plan matching: a cached strategy is only valid while the
        // new parameters land in a similar selectivity regime — the same
        // query shape with a 1%-pass range must not reuse a plan chosen for
        // a 99%-pass range. The histogram lookup is far cheaper than the
        // full rule + costing pipeline this hit skips.
        bool selectivity_compatible = true;
        if (stmt.where != nullptr) {
          std::shared_ptr<const sql::TableStatistics> snapshot;
          {
            common::MutexLock lock(table->stats_mu);
            snapshot = table->stats;
          }
          if (snapshot != nullptr) {
            double s = snapshot->EstimateSelectivity(*stmt.where);
            double cached_s = std::max(1e-4, cached->estimated_selectivity);
            double ratio = std::max(s, 1e-4) / cached_s;
            selectivity_compatible = ratio > 0.25 && ratio < 4.0;
          }
        }
        if (selectivity_compatible) {
          auto quick = sql::ShortCircuitOptimize(stmt, table->schema,
                                                 cached->strategy);
          if (quick.ok()) {
            stats->used_plan_cache = true;
            stats->used_short_circuit = true;
            quick->estimated_selectivity = cached->estimated_selectivity;
            quick->rules_fired = cached->rules_fired;
            return quick;
          }
        }
      }
    }
  }

  // Full pipeline: refresh stats, build + rewrite the plan, cost it. The
  // shared_ptr keeps this snapshot alive even if a concurrent flush swaps
  // in fresher statistics mid-optimization.
  std::shared_ptr<const sql::TableStatistics> stats_snapshot;
  if (options_.auto_refresh_statistics)
    stats_snapshot = RefreshStatistics(table);
  auto optimized =
      sql::Optimize(stmt, table->schema, stats_snapshot.get(), settings);
  if (!optimized.ok()) return optimized.status();

  if (settings.use_plan_cache && !signature.empty()) {
    sql::CachedPlan entry;
    entry.strategy = optimized->choice.strategy;
    entry.estimated_selectivity = optimized->estimated_selectivity;
    entry.rules_fired = optimized->rules_fired;
    plan_cache_.Put(signature, entry);
  }
  return optimized;
}

common::Result<sql::QueryResult> BlendHouse::QuerySystemMetrics(
    const sql::SelectStmt& select) {
  if (!select.select_star)
    return common::Status::InvalidArgument(
        "system.metrics supports SELECT * only");
  sql::QueryResult out;
  out.column_names = {"name", "value"};
  for (const common::metrics::MetricSample& s :
       common::metrics::MetricsRegistry::Instance().Snapshot()) {
    storage::Row row;
    row.values.emplace_back(s.name);
    row.values.emplace_back(s.value);
    out.rows.push_back(std::move(row));
  }
  return out;
}

common::Result<sql::QueryResult> BlendHouse::QueryWithSettings(
    const std::string& sql, const sql::QuerySettings& settings) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  if (stmt->kind != sql::Statement::Kind::kSelect)
    return common::Status::InvalidArgument("Query() expects SELECT");
  return RunSelect(sql, *stmt->select, settings, /*out_trace=*/nullptr);
}

common::Result<sql::QueryResult> BlendHouse::RunSelect(
    const std::string& sql, const sql::SelectStmt& select,
    const sql::QuerySettings& settings, trace::TracePtr* out_trace) {
  if (select.table == "system.metrics") return QuerySystemMetrics(select);
  TableState* table = FindTable(select.table);
  if (table == nullptr)
    return common::Status::NotFound("table: " + select.table);

  const SqlMetrics& m = QueryMetrics();
  (select.ann.has_value() ? m.queries_ann : m.queries_scalar)->Add(1);

  trace::TracePtr trace = trace::Trace::Make("query");
  trace::SpanPtr root = trace->StartSpan("query");
  root->SetTag("table", select.table);
  root->SetTag("type", select.ann.has_value() ? "ann" : "scalar");

  // Planning (which may refresh statistics with real object-store reads)
  // runs under a deferred scope so its simulated I/O is attributed to the
  // plan span, then paid once afterwards — total latency is unchanged, but
  // EXPLAIN ANALYZE can reconcile span I/O against the store's counters.
  sql::ExecStats pre_stats;
  trace::SpanPtr plan_span = trace->StartSpan("plan", root);
  uint64_t plan_sim = 0;
  auto plan = [&] {
    common::DeferredChargeScope scope;
    auto p = Plan(sql, select, table, settings, &pre_stats);
    plan_sim = scope.accumulated_micros();
    return p;
  }();
  double plan_micros = plan_span->ElapsedMicros();
  plan_span->SetBreakdown(plan_micros, static_cast<double>(plan_sim), 0);
  plan_span->SetTag("plan_cache", pre_stats.used_plan_cache ? "hit" : "miss");
  plan_span->End();
  if (plan_sim > 0) common::ChargeSimLatency(plan_sim);
  m.plan_micros->Record(plan_micros);
  if (!plan.ok()) {
    root->End();
    m.query_failures->Add(1);
    return plan.status();
  }

  sql::Executor executor(read_vw_.get(), settings);
  executor.SetTrace(trace, root);
  if (executor_topology_hook_for_test_)
    executor.SetTopologyHookForTest(executor_topology_hook_for_test_);
  auto result = executor.Execute(*plan, *table->engine);

  m.query_micros->Record(root->ElapsedMicros());
  root->End();
  if (out_trace != nullptr) *out_trace = trace;
  if (trace_sink_.ShouldSample()) trace_sink_.Record(*trace);

  if (!result.ok()) {
    m.query_failures->Add(1);
    return result.status();
  }
  result->stats.plan_micros = plan_micros;
  result->stats.used_plan_cache = pre_stats.used_plan_cache;
  result->stats.used_short_circuit = pre_stats.used_short_circuit;
  return result;
}

common::Result<std::string> BlendHouse::Explain(const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  // Accept both "SELECT ..." and "EXPLAIN [ANALYZE] SELECT ..." spellings.
  if (stmt->kind == sql::Statement::Kind::kExplain)
    return stmt->explain->analyze ? ExplainAnalyze(sql)
                                  : ExplainSelect(stmt->explain->select);
  if (stmt->kind != sql::Statement::Kind::kSelect)
    return common::Status::InvalidArgument("EXPLAIN expects SELECT");
  return ExplainSelect(*stmt->select);
}

common::Result<std::string> BlendHouse::ExplainSelect(
    const sql::SelectStmt& select) {
  TableState* table = FindTable(select.table);
  if (table == nullptr)
    return common::Status::NotFound("table: " + select.table);
  std::shared_ptr<const sql::TableStatistics> stats =
      RefreshStatistics(table);
  auto optimized =
      sql::Optimize(select, table->schema, stats.get(), options_.settings);
  if (!optimized.ok()) return optimized.status();

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "strategy=%s selectivity=%.4f rules_fired=%d\n"
                "cost A=%.0f B=%.0f C=%.0f\n",
                sql::ExecStrategyName(optimized->choice.strategy),
                optimized->estimated_selectivity, optimized->rules_fired,
                optimized->choice.cost_a, optimized->choice.cost_b,
                optimized->choice.cost_c);
  return std::string(buf) + optimized->explain;
}

common::Result<std::string> BlendHouse::ExplainAnalyze(
    const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  const sql::SelectStmt* select = nullptr;
  if (stmt->kind == sql::Statement::Kind::kExplain)
    select = &stmt->explain->select;
  else if (stmt->kind == sql::Statement::Kind::kSelect)
    select = &*stmt->select;
  else
    return common::Status::InvalidArgument("EXPLAIN ANALYZE expects SELECT");

  trace::TracePtr trace;
  auto result = RunSelect(sql, *select, options_.settings, &trace);
  if (!result.ok()) return result.status();
  if (trace == nullptr)
    return common::Status::Internal("query produced no trace");

  char buf[128];
  std::snprintf(buf, sizeof(buf), "rows=%zu plan_micros=%.0f\n",
                result->rows.size(), result->stats.plan_micros);
  return std::string(buf) + trace::RenderSpanTree(trace->Collect());
}

common::Status BlendHouse::ApplySetting(const sql::SetStmt& stmt) {
  sql::QuerySettings& s = options_.settings;
  auto as_int = [&]() -> common::Result<int64_t> {
    if (const int64_t* i = std::get_if<int64_t>(&stmt.value)) return *i;
    if (const double* d = std::get_if<double>(&stmt.value))
      return static_cast<int64_t>(*d);
    return common::Status::InvalidArgument("SET " + stmt.name +
                                           " expects a number");
  };
  std::string name = stmt.name;
  std::transform(name.begin(), name.end(), name.begin(), ::tolower);

  // ANN search knobs (the paper's ef_search / nprobe session settings).
  std::map<std::string, int*> int_knobs = {
      {"ef_search", &s.ef_search},
      {"nprobe", &s.nprobe},
      {"refine_factor", &s.refine_factor},
      {"rerank_depth", &s.rerank_depth},
  };
  if (auto it = int_knobs.find(name); it != int_knobs.end()) {
    auto v = as_int();
    if (!v.ok()) return v.status();
    if (*v <= 0)
      return common::Status::InvalidArgument("SET " + stmt.name + " > 0");
    *it->second = static_cast<int>(*v);
    return common::Status::Ok();
  }
  if (name == "semantic_probe_buckets") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    if (*v <= 0)
      return common::Status::InvalidArgument("SET " + stmt.name + " > 0");
    s.semantic_probe_buckets = static_cast<size_t>(*v);
    return common::Status::Ok();
  }
  std::map<std::string, bool*> bool_knobs = {
      {"use_cbo", &s.use_cbo},
      {"scalar_pruning", &s.scalar_pruning},
      {"semantic_pruning", &s.semantic_pruning},
      {"adaptive_semantic", &s.adaptive_semantic},
      {"use_column_cache", &s.use_column_cache},
      {"use_granule_pruning", &s.use_granule_pruning},
      {"use_plan_cache", &s.use_plan_cache},
      {"short_circuit", &s.short_circuit},
      {"use_native_iterators", &s.use_native_iterators},
  };
  if (auto it = bool_knobs.find(name); it != bool_knobs.end()) {
    auto v = as_int();
    if (!v.ok()) return v.status();
    *it->second = *v != 0;
    if (name == "use_plan_cache" && !*it->second) plan_cache_.Invalidate();
    return common::Status::Ok();
  }
  if (name == "distance_precision") {
    // String knob: the default storage precision for indexes created after
    // this point (DESIGN.md §13). `SET distance_precision = 'int8'`.
    const std::string* v = std::get_if<std::string>(&stmt.value);
    if (v == nullptr)
      return common::Status::InvalidArgument(
          "SET distance_precision expects a name (fp32/fp16/bf16/int8)");
    vecindex::Precision p;
    if (!vecindex::ParsePrecision(*v, &p))
      return common::Status::InvalidArgument("unknown precision: " + *v);
    s.distance_precision = p;
    return common::Status::Ok();
  }
  if (name == "scheduler_sharding") {
    auto v = as_int();
    if (!v.ok()) return v.status();
    // Process-wide construction-time default: affects pools/schedulers
    // built after this point (a fresh instance, scale-out workers), not
    // ones already running — queue topology cannot be swapped live.
    options_.scheduler_sharding = *v != 0;
    common::SetSchedulerSharding(*v != 0);
    return common::Status::Ok();
  }
  return common::Status::NotFound("unknown setting: " + stmt.name);
}

common::Status BlendHouse::ExecuteInsert(const sql::InsertStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  if (!stmt.rows.empty() &&
      stmt.rows[0].values.size() != table->schema.columns.size())
    return common::Status::InvalidArgument(
        "INSERT arity mismatch: expected " +
        std::to_string(table->schema.columns.size()) + " values");
  return table->engine->Insert(stmt.rows);
}

common::Status BlendHouse::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  storage::LsmEngine& engine = *table->engine;

  // Resolve assignment targets once.
  std::vector<std::pair<int, storage::Value>> assigns;
  for (const auto& [col, value] : stmt.assignments) {
    int idx = table->schema.FindColumn(col);
    if (idx < 0) return common::Status::NotFound("column: " + col);
    assigns.emplace_back(idx, value);
  }

  // Fig. 6 realtime update: locate matching rows, write updated copies as a
  // new version, and mark the old rows in delete bitmaps. The old segments
  // and their indexes are never touched.
  sql::Executor executor(read_vw_.get(), options_.settings);
  auto matches = executor.FindMatchingRows(engine, stmt.where.get());
  if (!matches.ok()) return matches.status();

  std::vector<storage::Row> new_rows;
  for (const auto& [segment_id, offsets] : *matches) {
    auto segment = engine.FetchSegment(segment_id);
    if (!segment.ok()) return segment.status();
    for (uint64_t row : offsets) {
      storage::Row updated =
          storage::RowFromSegment(**segment, static_cast<size_t>(row));
      for (const auto& [idx, value] : assigns) updated.values[idx] = value;
      new_rows.push_back(std::move(updated));
    }
    BH_RETURN_IF_ERROR(engine.DeleteRows(segment_id, offsets));
  }
  if (!new_rows.empty()) {
    BH_RETURN_IF_ERROR(engine.Insert(std::move(new_rows)));
    BH_RETURN_IF_ERROR(engine.Flush());
  }
  return common::Status::Ok();
}

common::Status BlendHouse::ExecuteDelete(const sql::DeleteStmt& stmt) {
  TableState* table = FindTable(stmt.table);
  if (table == nullptr) return common::Status::NotFound("table: " + stmt.table);
  sql::Executor executor(read_vw_.get(), options_.settings);
  auto matches = executor.FindMatchingRows(*table->engine, stmt.where.get());
  if (!matches.ok()) return matches.status();
  for (const auto& [segment_id, offsets] : *matches)
    BH_RETURN_IF_ERROR(table->engine->DeleteRows(segment_id, offsets));
  return common::Status::Ok();
}

common::Result<sql::QueryResult> BlendHouse::ExecuteSql(
    const std::string& sql) {
  auto stmt = sql::ParseStatement(sql);
  if (!stmt.ok()) return stmt.status();
  switch (stmt->kind) {
    case sql::Statement::Kind::kSelect:
      return Query(sql);
    case sql::Statement::Kind::kExplain: {
      // EXPLAIN → the optimizer report; EXPLAIN ANALYZE → execute and render
      // the trace span tree. Either way the text comes back one row per
      // line in a single "explain" column.
      auto text = stmt->explain->analyze ? ExplainAnalyze(sql)
                                         : ExplainSelect(stmt->explain->select);
      if (!text.ok()) return text.status();
      sql::QueryResult out;
      out.column_names = {"explain"};
      size_t begin = 0;
      const std::string& s = *text;
      while (begin <= s.size()) {
        size_t end = s.find('\n', begin);
        if (end == std::string::npos) end = s.size();
        if (end > begin) {
          storage::Row row;
          row.values.emplace_back(s.substr(begin, end - begin));
          out.rows.push_back(std::move(row));
        }
        begin = end + 1;
      }
      return out;
    }
    case sql::Statement::Kind::kCreateTable:
      BH_RETURN_IF_ERROR(CreateTable(stmt->create_table->schema));
      return sql::QueryResult{};
    case sql::Statement::Kind::kInsert:
      BH_RETURN_IF_ERROR(ExecuteInsert(*stmt->insert));
      return sql::QueryResult{};
    case sql::Statement::Kind::kUpdate:
      BH_RETURN_IF_ERROR(ExecuteUpdate(*stmt->update));
      return sql::QueryResult{};
    case sql::Statement::Kind::kDelete:
      BH_RETURN_IF_ERROR(ExecuteDelete(*stmt->del));
      return sql::QueryResult{};
    case sql::Statement::Kind::kOptimize: {
      auto jobs = Compact(stmt->optimize->table);
      if (!jobs.ok()) return jobs.status();
      return sql::QueryResult{};
    }
    case sql::Statement::Kind::kSet:
      BH_RETURN_IF_ERROR(ApplySetting(*stmt->set));
      return sql::QueryResult{};
  }
  return common::Status::Internal("unreachable");
}

}  // namespace blendhouse::core
