#pragma once

#include <cstddef>

#include "cluster/rpc.h"
#include "cluster/worker.h"
#include "common/trace.h"
#include "core/query_log.h"
#include "sql/settings.h"
#include "storage/lsm_engine.h"
#include "storage/object_store.h"

namespace blendhouse::core {

/// Top-level configuration of a BlendHouse instance. Every simulated
/// hardware characteristic (remote storage latency, RPC cost) and every
/// architectural choice the paper evaluates (VW separation, preload,
/// pipelined ingest) is set here.
struct BlendHouseOptions {
  /// Remote shared storage cost model (S3/HDFS-class by default).
  storage::StorageCostModel remote_cost = storage::StorageCostModel::Remote();
  /// Worker-to-worker RPC cost model (vector search serving).
  cluster::RpcFabric::CostModel rpc_cost;

  /// Read (query-serving) virtual warehouse size.
  size_t read_workers = 2;
  /// Threads per worker.
  size_t worker_threads = 2;
  /// Shard-per-core execution substrate (DESIGN.md §12): per-thread run
  /// queues with work stealing in every ThreadPool/TaskScheduler this
  /// instance constructs. False restores the single shared FIFO queue
  /// (`SET scheduler_sharding = 0|1` flips the process default for pools
  /// constructed afterwards, e.g. scale-out workers).
  bool scheduler_sharding = true;
  /// Per-worker cache configuration.
  cluster::WorkerOptions worker;

  /// Dedicated index-build VW: when true (the BlendHouse architecture),
  /// ingestion's index builds run on a separate pool; when false, build
  /// tasks are deliberately scheduled onto the read VW's worker pools —
  /// the mixed-workload configuration of Fig. 12.
  bool separate_write_vw = true;
  /// Threads in the dedicated build pool (ignored when mixed).
  size_t build_threads = 4;

  /// LSM/ingest behaviour.
  storage::IngestOptions ingest;

  /// Cache-aware preload: push fresh indexes into the owning workers'
  /// caches right after every flush/compaction (paper §II-D).
  bool preload_after_flush = false;

  /// Session defaults; per-query overrides via QueryWithSettings.
  sql::QuerySettings settings;

  /// Trace retention: ring capacity, residual sampling rate, and RNG seed
  /// for the per-instance TraceSink. Spans are always produced (they feed
  /// ExecStats and EXPLAIN ANALYZE); this only controls which finished
  /// traces are kept. Retention is tail-based (DESIGN.md §15): error traces
  /// and slower-than-p99 traces are always kept, sample_rate applies to the
  /// ordinary residual only.
  trace::TraceSink::Options trace;

  /// system.query_log ring capacity and the per-fingerprint sample count
  /// below which a rolling p99 is not yet trusted as a slowness threshold.
  QueryLog::Options query_log;

  /// Rebuild table statistics when the committed version changes.
  bool auto_refresh_statistics = true;
  /// Segments sampled per statistics rebuild.
  size_t statistics_sample_segments = 8;

  /// A configuration with all latency simulation off — unit tests.
  static BlendHouseOptions Fast() {
    BlendHouseOptions o;
    o.remote_cost = storage::StorageCostModel::Instant();
    o.rpc_cost.simulate_latency = false;
    o.worker.cache.disk_cost = storage::StorageCostModel::Instant();
    return o;
  }
};

}  // namespace blendhouse::core
