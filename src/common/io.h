#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace blendhouse::common {

/// Appends POD values and vectors to a byte string. Used for serializing
/// segments and vector indexes to the object store.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  template <typename T>
  void Write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_->append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void WriteString(std::string_view s) {
    Write<uint64_t>(s.size());
    out_->append(s.data(), s.size());
  }

  template <typename T, typename Alloc>
  void WriteVector(const std::vector<T, Alloc>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(v.size());
    if (!v.empty())  // data() may be null for an empty vector
      out_->append(reinterpret_cast<const char*>(v.data()),
                   v.size() * sizeof(T));
  }

 private:
  std::string* out_;
};

/// Bounds-checked reader over a byte string; every read reports Corruption on
/// truncation instead of walking off the buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view in) : in_(in) {}

  template <typename T>
  Status Read(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > in_.size())
      return Status::Corruption("binary read past end");
    std::memcpy(v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    BH_RETURN_IF_ERROR(Read(&n));
    if (n > in_.size() - pos_) return Status::Corruption("string past end");
    s->assign(in_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  template <typename T, typename Alloc>
  Status ReadVector(std::vector<T, Alloc>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    BH_RETURN_IF_ERROR(Read(&n));
    // Divide instead of multiplying: n * sizeof(T) can wrap uint64 and slip
    // past the bounds check on a corrupt length prefix.
    if (n > (in_.size() - pos_) / sizeof(T))
      return Status::Corruption("vector past end");
    v->resize(n);
    if (n > 0)  // data() may be null for an empty vector
      std::memcpy(v->data(), in_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::Ok();
  }

  size_t remaining() const { return in_.size() - pos_; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace blendhouse::common
