#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"

namespace blendhouse::trace {

/// Per-query distributed tracing (DESIGN.md §10).
///
/// A query creates one Trace; every stage opens a Span parented to its
/// caller's span. Spans are shared_ptrs captured by async continuations, so
/// they survive Future::Then hops and delay-queue rescheduling; End() is
/// exactly-once (atomic exchange), and an un-ended span self-closes when the
/// last reference drops — a straggler continuation can therefore never leak
/// an open span or double-record one.
///
/// Span taxonomy: query → plan | execute | materialize; execute →
/// segment_scan (one per segment task, repeated per retry attempt) →
/// acquire_index | build_filter_bitmap. Tags carry cache outcomes.

/// Finished-span record. Times are micros; start is relative to trace start.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_micros = 0;
  double wall_micros = 0;
  // Breakdown fields are optional (zero when a stage has no async breakdown).
  double compute_micros = 0;
  double sim_io_micros = 0;
  double queue_wait_micros = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

class Trace;
using TracePtr = std::shared_ptr<Trace>;

class Span {
 public:
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void SetTag(std::string key, std::string value) EXCLUDES(mu_);
  /// Async time breakdown, set once by the completing continuation.
  void SetBreakdown(double compute_micros, double sim_io_micros,
                    double queue_wait_micros) EXCLUDES(mu_);
  /// Accumulates simulated I/O attributed to this span (plan-stage object
  /// store reads, materialize fetches).
  void AddSimIo(double micros) EXCLUDES(mu_);

  /// Closes the span and records it into the owning trace. Exactly-once: a
  /// second End() (or the destructor after an End()) is a no-op.
  void End();

  double ElapsedMicros() const;
  uint64_t span_id() const { return record_.span_id; }

 private:
  friend class Trace;
  Span(TracePtr trace, uint64_t span_id, uint64_t parent_id, std::string name,
       double start_micros);

  TracePtr trace_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> ended_{false};
  mutable common::Mutex mu_{common::lockrank::kSpan};
  SpanRecord record_ GUARDED_BY(mu_);
};

using SpanPtr = std::shared_ptr<Span>;

/// One query's span collection. Created per query (cheap: one allocation and
/// a steady_clock read); whether the finished trace is retained in the
/// TraceSink is a separate, sampled decision.
class Trace : public std::enable_shared_from_this<Trace> {
 public:
  static TracePtr Make(std::string name);

  /// Opens a span. `parent` may be null (root span).
  SpanPtr StartSpan(std::string name, const SpanPtr& parent = nullptr);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& name() const { return name_; }

  /// Spans started but not yet ended — 0 after a complete query.
  int64_t open_spans() const {
    return open_spans_.load(std::memory_order_acquire);
  }

  /// Snapshot of finished spans, in End() order.
  std::vector<SpanRecord> Collect() const EXCLUDES(mu_);

  double ElapsedMicros() const;

 private:
  friend class Span;
  explicit Trace(std::string name);

  void Finish(SpanRecord record) EXCLUDES(mu_);

  const uint64_t trace_id_;
  const std::string name_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<int64_t> open_spans_{0};
  mutable common::Mutex mu_{common::lockrank::kTrace};
  std::vector<SpanRecord> finished_ GUARDED_BY(mu_);
};

/// A finished trace as retained by the sink.
struct FinishedTrace {
  uint64_t trace_id = 0;
  std::string name;
  std::vector<SpanRecord> spans;
};

/// Bounded in-memory store of sampled finished traces.
class TraceSink {
 public:
  struct Options {
    /// Ring capacity; oldest traces are dropped first.
    size_t max_traces = 64;
    /// Probability a finished trace is retained, in [0, 1]. 0 disables
    /// retention entirely (ShouldSample never consults the RNG, so a given
    /// seed yields the same decisions regardless of interleaved 0-rate use).
    double sample_rate = 1.0;
    /// Seed for the sampling RNG — sampling decisions are deterministic for
    /// a fixed seed and call sequence.
    uint64_t seed = 42;
  };

  TraceSink();
  explicit TraceSink(Options opts);

  /// Deterministic sampling decision for the next finished trace.
  bool ShouldSample() EXCLUDES(mu_);

  /// Retains a finished trace (caller already decided to sample it).
  void Record(const Trace& trace) EXCLUDES(mu_);

  std::vector<FinishedTrace> Traces() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  /// Traces evicted by the ring bound (not ones skipped by sampling).
  uint64_t dropped() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  /// JSON array of retained traces; input format of tools/trace2json.py.
  std::string DumpJson() const EXCLUDES(mu_);

  const Options& options() const { return opts_; }

 private:
  const Options opts_;
  mutable common::Mutex mu_{common::lockrank::kTraceSink};
  common::Rng rng_ GUARDED_BY(mu_);
  std::deque<FinishedTrace> traces_ GUARDED_BY(mu_);
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// Renders a span tree as indented text — the body of EXPLAIN ANALYZE.
/// One line per span: name, wall/compute/sim-I/O/queue-wait micros, tags.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

}  // namespace blendhouse::trace
