#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"

namespace blendhouse::trace {

/// Per-query distributed tracing (DESIGN.md §10).
///
/// A query creates one Trace; every stage opens a Span parented to its
/// caller's span. Spans are shared_ptrs captured by async continuations, so
/// they survive Future::Then hops and delay-queue rescheduling; End() is
/// exactly-once (atomic exchange), and an un-ended span self-closes when the
/// last reference drops — a straggler continuation can therefore never leak
/// an open span or double-record one.
///
/// Span taxonomy: query → plan | execute | materialize; execute →
/// segment_scan (one per segment task, repeated per retry attempt) →
/// acquire_index | build_filter_bitmap. Tags carry cache outcomes.

/// Finished-span record. Times are micros; start is relative to trace start.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_micros = 0;
  double wall_micros = 0;
  // Breakdown fields are optional (zero when a stage has no async breakdown).
  double compute_micros = 0;
  double sim_io_micros = 0;
  double queue_wait_micros = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

class Trace;
using TracePtr = std::shared_ptr<Trace>;

class Span {
 public:
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void SetTag(std::string key, std::string value) EXCLUDES(mu_);
  /// Async time breakdown, set once by the completing continuation.
  void SetBreakdown(double compute_micros, double sim_io_micros,
                    double queue_wait_micros) EXCLUDES(mu_);
  /// Accumulates simulated I/O attributed to this span (plan-stage object
  /// store reads, materialize fetches).
  void AddSimIo(double micros) EXCLUDES(mu_);

  /// Closes the span and records it into the owning trace. Exactly-once: a
  /// second End() (or the destructor after an End()) is a no-op.
  void End();

  double ElapsedMicros() const;
  uint64_t span_id() const { return record_.span_id; }

 private:
  friend class Trace;
  Span(TracePtr trace, uint64_t span_id, uint64_t parent_id, std::string name,
       double start_micros);

  TracePtr trace_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> ended_{false};
  mutable common::Mutex mu_{common::lockrank::kSpan};
  SpanRecord record_ GUARDED_BY(mu_);
};

using SpanPtr = std::shared_ptr<Span>;

/// One query's span collection. Created per query (cheap: one allocation and
/// a steady_clock read); whether the finished trace is retained in the
/// TraceSink is a separate, sampled decision.
class Trace : public std::enable_shared_from_this<Trace> {
 public:
  static TracePtr Make(std::string name);

  /// Opens a span. `parent` may be null (root span).
  SpanPtr StartSpan(std::string name, const SpanPtr& parent = nullptr);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& name() const { return name_; }

  /// Spans started but not yet ended — 0 after a complete query.
  int64_t open_spans() const {
    return open_spans_.load(std::memory_order_acquire);
  }

  /// Snapshot of finished spans, in End() order.
  std::vector<SpanRecord> Collect() const EXCLUDES(mu_);

  double ElapsedMicros() const;

 private:
  friend class Span;
  explicit Trace(std::string name);

  void Finish(SpanRecord record) EXCLUDES(mu_);

  const uint64_t trace_id_;
  const std::string name_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<int64_t> open_spans_{0};
  mutable common::Mutex mu_{common::lockrank::kTrace};
  std::vector<SpanRecord> finished_ GUARDED_BY(mu_);
};

/// Why (or whether) a completed trace was retained (DESIGN.md §15). The
/// keep/drop decision is made at trace *completion*, when the root latency
/// and outcome are known — a head sampler is exactly as likely to drop a
/// p99.9 outlier as a median query; the tail-based classes below cannot.
enum class Retention : uint8_t {
  /// Not retained: lost the residual sampling coin flip.
  kDropped = 0,
  /// Retained by the residual head-style sampler (ordinary traces).
  kSampled = 1,
  /// Retained because the root latency exceeded the slow threshold
  /// (per-fingerprint rolling p99 or the SET slow_query_threshold_ms floor).
  kSlow = 2,
  /// Retained because the query failed — error traces are always kept.
  kError = 3,
};

const char* RetentionName(Retention r);

/// A finished trace as retained by the sink.
struct FinishedTrace {
  uint64_t trace_id = 0;
  std::string name;
  /// Why this trace survived retention (never kDropped for a stored trace).
  Retention retention = Retention::kSampled;
  /// Normalized query fingerprint (hex), stamped by the query layer; empty
  /// for traces recorded outside the SQL path.
  std::string fingerprint;
  /// Root wall latency at completion.
  double latency_micros = 0;
  std::vector<SpanRecord> spans;
};

/// Bounded in-memory store of retained finished traces.
///
/// Tail-based retention: Offer() is called once per completed trace with
/// its outcome; error traces are always kept, traces slower than the
/// caller-resolved threshold are kept and stamped `kSlow`, and only the
/// residual ordinary traces face the deterministic sampling coin. The
/// legacy ShouldSample()/Record() pair remains for callers that decide
/// up front (tests, ad-hoc recording); it feeds the same counters.
class TraceSink {
 public:
  struct Options {
    /// Ring capacity; oldest traces are dropped first.
    size_t max_traces = 64;
    /// Probability an *ordinary* finished trace is retained, in [0, 1]:
    /// the residual sampler behind the error/slow classes. 0 disables
    /// residual sampling entirely (ShouldSample never consults the RNG, so
    /// a given seed yields the same decisions regardless of interleaved
    /// 0-rate use).
    double sample_rate = 1.0;
    /// Seed for the sampling RNG — sampling decisions are deterministic for
    /// a fixed seed and call sequence.
    uint64_t seed = 42;
  };

  /// Completion-time facts the retention decision needs; resolved by the
  /// caller (the query layer knows the fingerprint profile and settings).
  struct Completion {
    bool error = false;
    double latency_micros = 0;
    /// Latencies at or above this are retained as kSlow; <= 0 disables the
    /// slow class (no floor set and no trusted per-fingerprint p99 yet).
    double slow_threshold_micros = 0;
    /// Normalized query fingerprint (hex) for the stored record.
    std::string fingerprint;
  };

  TraceSink();
  explicit TraceSink(Options opts);

  /// Tail-based keep/drop for a completed trace: records it under the
  /// class it earns (error > slow > sampled) or drops it. Returns the
  /// decision so the caller can tag its own records.
  Retention Offer(const Trace& trace, const Completion& info) EXCLUDES(mu_);

  /// Deterministic sampling decision for the next finished trace (the
  /// residual class only — Offer() consults this after error/slow).
  bool ShouldSample() EXCLUDES(mu_);

  /// Retains a finished trace (caller already decided to sample it).
  void Record(const Trace& trace) EXCLUDES(mu_);

  std::vector<FinishedTrace> Traces() const EXCLUDES(mu_);
  /// The retained trace with this id, if still in the ring.
  std::optional<FinishedTrace> FindTrace(uint64_t trace_id) const
      EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  /// Traces evicted by the ring bound (not ones skipped by sampling).
  uint64_t dropped() const EXCLUDES(mu_);

  // ---- Retention accounting (reconciliation: the four classes partition
  // every Offer() call, so retained_* + sample_dropped == offered) ----
  uint64_t offered() const EXCLUDES(mu_);
  uint64_t retained_error() const EXCLUDES(mu_);
  uint64_t retained_slow() const EXCLUDES(mu_);
  uint64_t retained_sampled() const EXCLUDES(mu_);
  uint64_t sample_dropped() const EXCLUDES(mu_);

  void Clear() EXCLUDES(mu_);

  /// JSON array of retained traces; input format of tools/trace2json.py.
  std::string DumpJson() const EXCLUDES(mu_);

  const Options& options() const { return opts_; }

 private:
  void RecordLocked(FinishedTrace finished) REQUIRES(mu_);

  const Options opts_;
  mutable common::Mutex mu_{common::lockrank::kTraceSink};
  common::Rng rng_ GUARDED_BY(mu_);
  std::deque<FinishedTrace> traces_ GUARDED_BY(mu_);
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  uint64_t offered_ GUARDED_BY(mu_) = 0;
  uint64_t retained_error_ GUARDED_BY(mu_) = 0;
  uint64_t retained_slow_ GUARDED_BY(mu_) = 0;
  uint64_t retained_sampled_ GUARDED_BY(mu_) = 0;
  uint64_t sample_dropped_ GUARDED_BY(mu_) = 0;
};

/// Renders a span tree as indented text — the body of EXPLAIN ANALYZE.
/// One line per span: name, wall/compute/sim-I/O/queue-wait micros, tags.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

}  // namespace blendhouse::trace
