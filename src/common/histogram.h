#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace blendhouse::common {

/// Latency/size histogram with percentile queries.
///
/// Samples are stored exactly; percentile queries sort lazily. Intended for
/// bench harnesses and equi-depth selectivity estimation, not hot paths.
class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Value at percentile p. p is clamped to [0, 100]; returns 0 when empty.
  double Percentile(double p) const;

  /// "count=N mean=X p50=... p95=... p99=..." summary line.
  std::string Summary() const;

  /// Appends all of `other`'s samples. Exact histograms have no bucket
  /// bounds, so merging cannot misbin and never fails.
  void Merge(const Histogram& other);

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram: explicit ascending upper bounds plus an implicit
/// overflow bucket. O(buckets) memory regardless of sample count, so it is
/// safe for hot paths and for long-running registries where the exact
/// `Histogram` above would grow without bound. Percentiles interpolate
/// linearly within the winning bucket.
class BucketedHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit BucketedHistogram(std::vector<double> upper_bounds);

  /// Rebuilds a histogram from exported state (metrics snapshots). `counts`
  /// must have upper_bounds.size() + 1 entries (last = overflow bucket).
  static BucketedHistogram FromParts(std::vector<double> upper_bounds,
                                     std::vector<uint64_t> counts, double sum);

  void Add(double v);

  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at percentile p. p is clamped to [0, 100]; returns 0 when empty.
  /// Samples in the overflow bucket report the last finite bound.
  double Percentile(double p) const;

  /// Adds `other`'s buckets into this histogram. The bucket bounds must be
  /// identical; merging mismatched layouts would silently misbin samples, so
  /// that case returns InvalidArgument and leaves *this untouched.
  Status Merge(const BucketedHistogram& other);

  void Clear();

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; index upper_bounds().size() is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// "count=N mean=X p50=... p95=... p99=..." summary line.
  std::string Summary() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;  // upper_bounds_.size() + 1 entries
  uint64_t count_ = 0;
  double sum_ = 0;
};

}  // namespace blendhouse::common
