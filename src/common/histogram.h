#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace blendhouse::common {

/// Latency/size histogram with percentile queries.
///
/// Samples are stored exactly; percentile queries sort lazily. Intended for
/// bench harnesses and equi-depth selectivity estimation, not hot paths.
class Histogram {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Value at percentile p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;

  /// "count=N mean=X p50=... p95=... p99=..." summary line.
  std::string Summary() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace blendhouse::common
