#pragma once

#include <cstddef>
#include <cstdint>

namespace blendhouse::common {

/// Per-query resource ledger (DESIGN.md §15).
///
/// One struct unifying what used to be scattered across ExecStats fields,
/// span tags, and process-global counters: the executor populates it while
/// a query runs (segment tasks fold their per-thread scan-counter deltas
/// in through SegmentTaskResult, worker streaming calls add theirs
/// directly), and the query-history layer drains it into the finished
/// query's `system.query_log` record at query end. It lives in common/ so
/// both the cluster layer (Worker::StreamSearch attribution) and the SQL
/// layer can fill it without a dependency cycle.
///
/// Latency fields are micros. The three breakdown fields are summed over
/// all segment tasks of the query, so overlapped tasks sum past the wall
/// time; with a single in-flight task they add up to ~exec time (the same
/// contract as ExecStats).
struct QueryLedger {
  // ---- Latency breakdown ----
  double queue_wait_micros = 0;
  double compute_micros = 0;
  double sim_io_micros = 0;

  // ---- Scan work ----
  /// Rows whose distance to the query was actually computed, across all
  /// tiers (brute-force survivors, index scan visits, graph hops, reranks).
  uint64_t rows_scanned = 0;
  /// Distance computations per storage-precision tier, indexed by
  /// vecindex::Precision (fp32, fp16, bf16, int8).
  uint64_t distance_comps[4] = {0, 0, 0, 0};
  /// Exact-tier rerank rows of the two-tier quantized scan (DESIGN.md §13).
  uint64_t fp32_rerank_rows = 0;

  // ---- Iterator work (post-filter resumable iterators, DESIGN.md §14) ----
  uint64_t iter_batches = 0;
  uint64_t iter_rows_visited = 0;
  uint64_t iter_recompute_rounds = 0;

  // ---- Cache traffic ----
  uint64_t filter_cache_hits = 0;
  uint64_t filter_cache_misses = 0;

  // ---- Fan-out / control flow ----
  uint64_t segments_scanned = 0;
  /// Distinct workers the winning attempt dispatched segment tasks to.
  uint64_t workers_fanout = 0;
  uint64_t retries = 0;

  uint64_t total_distance_comps() const {
    return distance_comps[0] + distance_comps[1] + distance_comps[2] +
           distance_comps[3];
  }

  /// Folds another ledger's tallies into this one (per-segment results,
  /// streaming sub-calls).
  void Merge(const QueryLedger& o) {
    queue_wait_micros += o.queue_wait_micros;
    compute_micros += o.compute_micros;
    sim_io_micros += o.sim_io_micros;
    rows_scanned += o.rows_scanned;
    for (size_t i = 0; i < 4; ++i) distance_comps[i] += o.distance_comps[i];
    fp32_rerank_rows += o.fp32_rerank_rows;
    iter_batches += o.iter_batches;
    iter_rows_visited += o.iter_rows_visited;
    iter_recompute_rounds += o.iter_recompute_rounds;
    filter_cache_hits += o.filter_cache_hits;
    filter_cache_misses += o.filter_cache_misses;
    segments_scanned += o.segments_scanned;
    workers_fanout += o.workers_fanout;
    retries += o.retries;
  }
};

}  // namespace blendhouse::common
