#include "common/assert.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace blendhouse::common {

namespace {
std::atomic<int> g_invariant_policy{static_cast<int>(InvariantPolicy::kAbort)};

std::string FailureMessage(const char* expr, std::string_view msg) {
  std::string out = "invariant violated: ";
  out += expr;
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}
}  // namespace

InvariantPolicy GetInvariantPolicy() {
  return static_cast<InvariantPolicy>(
      g_invariant_policy.load(std::memory_order_relaxed));
}

void SetInvariantPolicy(InvariantPolicy policy) {
  g_invariant_policy.store(static_cast<int>(policy),
                           std::memory_order_relaxed);
}

namespace internal {

void AssertFail(const char* file, int line, const char* expr,
                std::string_view msg) {
  internal::LogMessage(LogLevel::kError, file, line,
                       FailureMessage(expr, msg));
  std::fflush(nullptr);
  std::abort();
}

Status InvariantFailed(const char* file, int line, const char* expr,
                       std::string_view msg) {
  std::string text = FailureMessage(expr, msg);
  internal::LogMessage(LogLevel::kError, file, line, text);
  return Status::Internal(text);
}

}  // namespace internal
}  // namespace blendhouse::common
