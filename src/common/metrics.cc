#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace blendhouse::common::metrics {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// 0 = not yet frozen; first reader (or an explicit ConfigureCounterShards)
/// publishes the final value exactly once.
std::atomic<size_t> g_counter_shards{0};

std::string FormatDouble(double v) {
  char buf[64];
  // Trim to integer form when exact — keeps counter exports stable.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

size_t CounterShardCount() {
  size_t v = g_counter_shards.load(std::memory_order_acquire);
  if (v != 0) return v;
  size_t hw = std::thread::hardware_concurrency();
  size_t def = RoundUpPow2(std::max<size_t>(16, hw));
  size_t expected = 0;
  if (g_counter_shards.compare_exchange_strong(expected, def,
                                               std::memory_order_acq_rel))
    return def;
  return expected;  // lost the race to a concurrent freeze
}

bool ConfigureCounterShards(size_t shards) {
  if (shards == 0) return false;
  size_t want = RoundUpPow2(shards);
  size_t expected = 0;
  return g_counter_shards.compare_exchange_strong(expected, want,
                                                  std::memory_order_acq_rel);
}

std::string PrometheusSanitizeName(const std::string& name) {
  auto valid = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':')
      return true;
    return !first && c >= '0' && c <= '9';
  };
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out += '_';
  for (char c : name) out += valid(c, out.empty()) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

const std::vector<double>& DefaultLatencyBoundsMicros() {
  // Leaked like the registry: stays valid during static destruction.
  static const std::vector<double>* bounds =
      new std::vector<double>{  // lint:allow(naked-new)
      10,    20,    50,    100,   200,   500,    1000,   2000,   5000,
      10000, 20000, 50000, 1e5,   2e5,   5e5,    1e6,    2e6,    5e6,
      1e7};
  return *bounds;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked intentionally: metric pointers must stay valid during static
  // destruction of late-exiting threads.
  static MetricsRegistry* instance = new MetricsRegistry();  // lint:allow(naked-new)
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBoundsMicros());
}

HistogramMetric* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr)
    slot = std::make_unique<HistogramMetric>(std::move(upper_bounds));
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 5);
  for (const auto& [name, c] : counters_)
    out.push_back({name, static_cast<double>(c->Value())});
  for (const auto& [name, g] : gauges_)
    out.push_back({name, static_cast<double>(g->Value())});
  for (const auto& [name, h] : histograms_) {
    BucketedHistogram snap = h->Snapshot();
    out.push_back({name + "_count", static_cast<double>(snap.Count())});
    out.push_back({name + "_sum", snap.Sum()});
    out.push_back({name + "_p50", snap.Percentile(50)});
    out.push_back({name + "_p95", snap.Percentile(95)});
    out.push_back({name + "_p99", snap.Percentile(99)});
  }
  // Maps iterate sorted, but the three groups interleave; one sort keeps the
  // contract simple.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [raw_name, c] : counters_) {
    std::string name = PrometheusSanitizeName(raw_name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatDouble(static_cast<double>(c->Value())) + "\n";
  }
  for (const auto& [raw_name, g] : gauges_) {
    std::string name = PrometheusSanitizeName(raw_name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(static_cast<double>(g->Value())) + "\n";
  }
  for (const auto& [raw_name, h] : histograms_) {
    std::string name = PrometheusSanitizeName(raw_name);
    BucketedHistogram snap = h->Snapshot();
    out += "# TYPE " + name + " histogram\n";
    uint64_t cum = 0;
    const auto& bounds = snap.upper_bounds();
    const auto& counts = snap.bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      out += name + "_bucket{le=\"" +
             PrometheusEscapeLabel(FormatDouble(bounds[i])) + "\"} " +
             FormatDouble(static_cast<double>(cum)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           FormatDouble(static_cast<double>(snap.Count())) + "\n";
    out += name + "_sum " + FormatDouble(snap.Sum()) + "\n";
    out += name + "_count " + FormatDouble(static_cast<double>(snap.Count())) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + FormatDouble(static_cast<double>(c->Value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + FormatDouble(static_cast<double>(g->Value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    BucketedHistogram snap = h->Snapshot();
    out += "\"" + name + "\":{";
    out += "\"count\":" + FormatDouble(static_cast<double>(snap.Count()));
    out += ",\"sum\":" + FormatDouble(snap.Sum());
    out += ",\"p50\":" + FormatDouble(snap.Percentile(50));
    out += ",\"p95\":" + FormatDouble(snap.Percentile(95));
    out += ",\"p99\":" + FormatDouble(snap.Percentile(99));
    out += ",\"buckets\":[";
    const auto& bounds = snap.upper_bounds();
    const auto& counts = snap.bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ",";
      std::string le =
          i < bounds.size() ? FormatDouble(bounds[i]) : std::string("-1");
      out += "[" + le + "," + FormatDouble(static_cast<double>(counts[i])) +
             "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

}  // namespace blendhouse::common::metrics
