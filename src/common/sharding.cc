#include "common/sharding.h"

#include <atomic>

namespace blendhouse::common {

namespace {
std::atomic<bool> g_scheduler_sharding{true};
}  // namespace

bool SchedulerShardingEnabled() {
  return g_scheduler_sharding.load(std::memory_order_relaxed);
}

void SetSchedulerSharding(bool enabled) {
  g_scheduler_sharding.store(enabled, std::memory_order_relaxed);
}

}  // namespace blendhouse::common
