#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace blendhouse::common {

/// A value-or-Status holder, analogous to absl::StatusOr<T>.
///
/// `Result<T>` is implicitly constructible from both a `T` (success) and a
/// non-OK `Status` (failure), so functions can `return value;` or
/// `return Status::NotFound(...);` interchangeably.
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  /// Constructs a successful Result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the held value. Must only be called when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Evaluates a Result expression; on error returns its Status from the
/// enclosing function, otherwise assigns the value to `lhs`.
#define BH_ASSIGN_OR_RETURN(lhs, expr)              \
  auto BH_CONCAT_(_bh_result_, __LINE__) = (expr);  \
  if (!BH_CONCAT_(_bh_result_, __LINE__).ok())      \
    return BH_CONCAT_(_bh_result_, __LINE__).status(); \
  lhs = std::move(BH_CONCAT_(_bh_result_, __LINE__)).value();

#define BH_CONCAT_INNER_(a, b) a##b
#define BH_CONCAT_(a, b) BH_CONCAT_INNER_(a, b)

}  // namespace blendhouse::common
