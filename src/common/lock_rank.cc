#include "common/lock_rank.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace blendhouse::common::lockrank {

namespace {

struct NamedRank {
  int rank;
  const char* name;
};

// Keep in sync with the constants in lock_rank.h; tools/lockgraph.py parses
// the header, so the authoritative list lives there.
constexpr NamedRank kRankNames[] = {
    {kCatalog, "kCatalog(1000)"},
    {kLsmFlush, "kLsmFlush(950)"},
    {kLsmMemtable, "kLsmMemtable(940)"},
    {kLsmPending, "kLsmPending(930)"},
    {kBaselineStats, "kBaselineStats(900)"},
    {kLsmPartitioner, "kLsmPartitioner(880)"},
    {kVersionSet, "kVersionSet(860)"},
    {kTableStats, "kTableStats(840)"},
    {kVirtualWarehouse, "kVirtualWarehouse(800)"},
    {kPlanCache, "kPlanCache(700)"},
    {kQueryFanIn, "kQueryFanIn(600)"},
    {kSpan, "kSpan(500)"},
    {kTrace, "kTrace(480)"},
    {kTraceSink, "kTraceSink(460)"},
    {kQueryLog, "kQueryLog(440)"},
    {kFuture, "kFuture(400)"},
    {kObjectStore, "kObjectStore(300)"},
    {kLruCache, "kLruCache(250)"},
    {kThreadPool, "kThreadPool(200)"},
    {kThreadPoolShard, "kThreadPoolShard(195)"},
    {kTaskScheduler, "kTaskScheduler(180)"},
    {kSchedulerShard, "kSchedulerShard(175)"},
    {kMetricsRegistry, "kMetricsRegistry(150)"},
    {kSimWait, "kSimWait(100)"},
};

// The held-rank stack for this thread, innermost (most recent) last. Plain
// vector: depth is tiny (<= 4 in practice) and the checks only exist in
// rank-checked builds.
thread_local std::vector<int> g_held;

[[noreturn]] void RankFail(const char* check, int rank, const char* extra) {
  char msg[256];
  if (!g_held.empty()) {
    std::snprintf(msg, sizeof(msg),
                  "%s: acquiring %s while holding %s (innermost of %zu)%s",
                  check, RankName(rank), RankName(g_held.back()),
                  g_held.size(), extra);
  } else {
    std::snprintf(msg, sizeof(msg), "%s: %s%s", check, RankName(rank), extra);
  }
  internal::AssertFail("lock_rank", 0, "lock-rank discipline", msg);
}

}  // namespace

const char* RankName(int rank) {
  if (rank == kUnranked) return "unranked";
  for (const auto& nr : kRankNames) {
    if (nr.rank == rank) return nr.name;
  }
  // Unknown (test-local) ranks: render the number. Static buffer is fine —
  // this feeds abort messages and tests, not concurrent hot paths.
  thread_local char buf[32];
  std::snprintf(buf, sizeof(buf), "rank(%d)", rank);
  return buf;
}

void NoteAcquire(int rank) {
  if (rank == kUnranked) return;
  if (!g_held.empty() && rank >= g_held.back()) {
    RankFail("lock-rank violation", rank,
             "; acquisition order must be strictly decreasing");
  }
  g_held.push_back(rank);
}

void NoteRelease(int rank) {
  if (rank == kUnranked) return;
  // Locks are almost always released innermost-first (RAII), but scoped
  // unlock patterns may release out of order; erase the most recent match.
  auto it = std::find(g_held.rbegin(), g_held.rend(), rank);
  if (it == g_held.rend()) {
    RankFail("lock-rank violation", rank, "; released a rank not held");
  }
  g_held.erase(std::next(it).base());
}

void NoteWaitRelease(int rank) {
  if (rank == kUnranked) return;
  if (g_held.empty() || g_held.back() != rank) {
    RankFail("lock-rank violation", rank,
             "; CondVar wait must hold the waited mutex as the innermost "
             "ranked lock");
  }
  g_held.pop_back();
}

void NoteWaitReacquire(int rank) {
  if (rank == kUnranked) return;
  // Re-acquisition after the wait must still be monotone with respect to
  // whatever the thread was left holding (normally unchanged).
  if (!g_held.empty() && rank >= g_held.back()) {
    RankFail("lock-rank violation", rank, "; wait re-acquired out of order");
  }
  g_held.push_back(rank);
}

void AssertNoneHeld(const char* what) {
  if (g_held.empty()) return;
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "callback-under-lock: %s invoked while holding %s (%zu ranked "
                "lock(s)); release the lock before calling out",
                what, RankName(g_held.back()), g_held.size());
  internal::AssertFail("lock_rank", 0, "no ranked locks across callbacks",
                       msg);
}

int HeldDepthForTest() { return static_cast<int>(g_held.size()); }

int MinHeldRankForTest() {
  if (g_held.empty()) return std::numeric_limits<int>::max();
  return *std::min_element(g_held.begin(), g_held.end());
}

}  // namespace blendhouse::common::lockrank
