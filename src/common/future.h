#pragma once

#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/move_only_fn.h"
#include "common/mutex.h"
#include "common/task_scheduler.h"

namespace blendhouse::common {

/// Result type for continuations that return void.
struct Unit {};

template <typename T>
class Future;
template <typename T>
class Promise;

namespace internal {

/// Shared state behind a Promise/Future pair. Supports one value, one
/// blocking getter, and at most one continuation; the continuation runs on
/// the TaskScheduler passed to Then() (or inline when none is given).
template <typename T>
class FutureState {
 public:
  void Set(T value) EXCLUDES(mu_) {
    MoveOnlyFn cont;
    TaskScheduler* sched = nullptr;
    {
      MutexLock lock(mu_);
      value_.emplace(std::move(value));
      ready_ = true;
      cont = std::move(continuation_);
      sched = continuation_scheduler_;
    }
    cv_.NotifyAll();
    if (cont) {
      if (sched != nullptr) {
        sched->Schedule(std::move(cont));
      } else {
        // Inline continuation: runs on the Set() caller's stack, so any lock
        // that caller holds is held across arbitrary user code — the PR5
        // deadlock shape. Callers must release everything before SetValue.
        BH_LOCK_RANK_ONLY(
            lockrank::AssertNoneHeld("inline Future continuation (Set)"));
        cont();
      }
    }
  }

  T Get() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);
    return std::move(*value_);
  }

  bool Ready() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ready_;
  }

  /// Consumes the stored value. Only valid once Set() has run — used by a
  /// continuation, which by construction fires after the value exists.
  T TakeValue() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return std::move(*value_);
  }

  /// Registers `cont` to run once the value is set; fires immediately (via
  /// `sched`, or inline if null) when the value is already there.
  void SetContinuation(TaskScheduler* sched, MoveOnlyFn cont) EXCLUDES(mu_) {
    bool fire_now = false;
    {
      MutexLock lock(mu_);
      if (ready_) {
        fire_now = true;
      } else {
        continuation_ = std::move(cont);
        continuation_scheduler_ = sched;
      }
    }
    if (fire_now) {
      if (sched != nullptr) {
        sched->Schedule(std::move(cont));
      } else {
        BH_LOCK_RANK_ONLY(
            lockrank::AssertNoneHeld("inline Future continuation (Then)"));
        cont();
      }
    }
  }

 private:
  mutable Mutex mu_{lockrank::kFuture};
  CondVar cv_;
  std::optional<T> value_ GUARDED_BY(mu_);
  bool ready_ GUARDED_BY(mu_) = false;
  MoveOnlyFn continuation_ GUARDED_BY(mu_);
  TaskScheduler* continuation_scheduler_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace internal

/// Write side of a one-shot async value. Movable; SetValue may be called
/// exactly once.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Promise(Promise&&) = default;
  Promise& operator=(Promise&&) = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  Future<T> GetFuture() { return Future<T>(state_); }

  void SetValue(T value) { state_->Set(std::move(value)); }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Read side. Get() blocks (the sync bridge at API boundaries); Then()
/// chains a continuation that the given TaskScheduler runs when the value
/// arrives, returning a Future for the continuation's own result.
template <typename T>
class Future {
 public:
  Future() = default;

  Future(Future&&) = default;
  Future& operator=(Future&&) = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool valid() const { return state_ != nullptr; }
  bool Ready() const { return state_->Ready(); }

  /// Blocks until the value is set, then consumes it.
  T Get() { return state_->Get(); }

  /// Schedules `fn(value)` on `sched` once the value arrives (inline if
  /// `sched` is null). Returns a Future for fn's result; void-returning
  /// continuations yield Future<Unit>. May be called at most once.
  template <typename Fn>
  auto Then(TaskScheduler* sched, Fn fn)
      -> Future<std::conditional_t<std::is_void_v<std::invoke_result_t<Fn, T>>,
                                   Unit, std::invoke_result_t<Fn, T>>> {
    using R0 = std::invoke_result_t<Fn, T>;
    using R = std::conditional_t<std::is_void_v<R0>, Unit, R0>;
    Promise<R> promise;
    Future<R> out = promise.GetFuture();
    auto state = state_;
    state_->SetContinuation(
        sched, [state, fn = std::move(fn),
                promise = std::move(promise)]() mutable {
          if constexpr (std::is_void_v<R0>) {
            fn(state->TakeValue());
            promise.SetValue(Unit{});
          } else {
            promise.SetValue(fn(state->TakeValue()));
          }
        });
    return out;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace blendhouse::common
