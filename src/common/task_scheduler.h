#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/move_only_fn.h"
#include "common/mutex.h"

namespace blendhouse::common {

/// Continuation-based task scheduler with a deadline-ordered delay queue.
///
/// The scheduler is the substrate of the async execution core: query work is
/// decomposed into move-only tasks (MoveOnlyFn) that run on a small pool of
/// scheduler threads, and *simulated* latency (RPC fabric, object store,
/// cache disk tier, DiskANN beam reads) is charged by scheduling the next
/// continuation at `now + latency` on the delay queue instead of parking a
/// thread in sleep_for. A 2-thread worker can therefore have an unbounded
/// number of simulated I/Os in flight — the property Figs. 11/12/18 measure.
///
/// Lock hierarchy (DESIGN.md §7): TaskScheduler::mu_ is a leaf lock. Tasks
/// run with no scheduler lock held, so they may take any lock.
class TaskScheduler {
 public:
  explicit TaskScheduler(size_t num_threads = 2);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues `fn` to run as soon as a scheduler thread is free.
  void Schedule(MoveOnlyFn fn) EXCLUDES(mu_);

  /// Enqueues `fn` to run no earlier than `delay_micros` from now. This is
  /// how simulated latency is charged: the continuation fires at deadline
  /// while the scheduler threads stay free to run other tasks.
  void ScheduleAfter(uint64_t delay_micros, MoveOnlyFn fn) EXCLUDES(mu_);

  /// Blocks until both queues are empty and no task is running. Test helper;
  /// the query path never calls this.
  void Drain() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Cumulative count of tasks that have finished running.
  uint64_t tasks_executed() const EXCLUDES(mu_);

  /// Cumulative micros tasks spent queued (ready queue only) before running.
  uint64_t queue_wait_micros() const EXCLUDES(mu_);

 private:
  struct DelayedTask {
    std::chrono::steady_clock::time_point deadline;
    uint64_t seq = 0;  // FIFO tie-break for equal deadlines
    // shared_ptr (not unique) only because std::priority_queue::top() is
    // const and cannot be moved from portably.
    std::shared_ptr<MoveOnlyFn> fn;
    bool operator>(const DelayedTask& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  struct ReadyTask {
    std::chrono::steady_clock::time_point enqueue_time;
    MoveOnlyFn fn;
  };

  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_{lockrank::kTaskScheduler};
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<ReadyTask> ready_ GUARDED_BY(mu_);
  std::priority_queue<DelayedTask, std::vector<DelayedTask>,
                      std::greater<DelayedTask>>
      delayed_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  size_t running_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  uint64_t tasks_executed_ GUARDED_BY(mu_) = 0;
  uint64_t queue_wait_micros_ GUARDED_BY(mu_) = 0;
  // Registry metrics, shared by every scheduler instance in the process;
  // resolved once here so the hot path never touches the registry map.
  metrics::Counter* tasks_total_metric_;
  metrics::Gauge* queue_depth_metric_;
  metrics::HistogramMetric* queue_wait_metric_;
  std::vector<std::thread> threads_;  // written only in the constructor
};

/// ---------------------------------------------------------------------------
/// Deferred simulated-latency charging.
///
/// Cost-model sites (RpcFabric::Charge, ObjectStore reads, the index cache's
/// disk tier, DiskAnnIndex beam reads) sit deep inside synchronous call
/// stacks; turning each into a continuation would mean hand-written state
/// machines. Instead they call ChargeSimLatency(micros), which:
///
///   - inside a DeferredChargeScope (the async query path): *accumulates* the
///     micros into the scope — no blocking at all. When the enclosing task
///     finishes, the executor schedules its completion continuation at
///     `now + accumulated` on the delay queue, so wall-clock latency is
///     preserved at task granularity while the thread stays free.
///   - outside any scope (sync callers: ingestion, tests, baselines): blocks
///     the calling thread for the full duration via a timed CondVar wait —
///     same observable behaviour as the old sleep_for.
/// ---------------------------------------------------------------------------

/// RAII scope that redirects ChargeSimLatency() on this thread into an
/// accumulator. Scopes nest; charges go to the innermost.
class DeferredChargeScope {
 public:
  DeferredChargeScope();
  ~DeferredChargeScope();

  DeferredChargeScope(const DeferredChargeScope&) = delete;
  DeferredChargeScope& operator=(const DeferredChargeScope&) = delete;

  /// Total micros charged inside this scope so far.
  uint64_t accumulated_micros() const { return accumulated_; }

 private:
  friend void ChargeSimLatency(uint64_t);
  uint64_t accumulated_ = 0;
  DeferredChargeScope* prev_ = nullptr;
};

/// Charge `micros` of simulated latency. Deferred (accumulated) when a
/// DeferredChargeScope is active on this thread, otherwise blocks for the
/// full duration. Never burns CPU; never uses sleep_for.
void ChargeSimLatency(uint64_t micros);

/// True when a DeferredChargeScope is active on the calling thread. Cost
/// models use this only for stats, never for behaviour.
bool SimChargeDeferred();

}  // namespace blendhouse::common
