#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/move_only_fn.h"
#include "common/mutex.h"
#include "common/sharding.h"

namespace blendhouse::common {

/// Continuation-based task scheduler with sharded ready queues and a
/// sharded deadline-ordered delay queue (DESIGN.md §12).
///
/// The scheduler is the substrate of the async execution core: query work is
/// decomposed into move-only tasks (MoveOnlyFn) that run on a small pool of
/// scheduler threads, and *simulated* latency (RPC fabric, object store,
/// cache disk tier, DiskANN beam reads) is charged by scheduling the next
/// continuation at `now + latency` on the delay queue instead of parking a
/// thread in sleep_for. A 2-thread worker can therefore have an unbounded
/// number of simulated I/Os in flight — the property Figs. 11/12/18 measure.
///
/// Topology: in sharded mode (the default, see common/sharding.h) every
/// scheduler thread owns one shard holding a ready deque and a binary-heap
/// delay queue under one mutex (lockrank::kSchedulerShard). Schedule* place
/// work round-robin or by affinity hint. Each shard's *owner* thread alone
/// promotes its expired delayed tasks — so a deadline heap is never touched
/// by two threads' timed waits — while ready tasks may be stolen by any
/// sibling (one victim lock at a time, never nested; same no-nesting family
/// discipline as the ThreadPool shards). Ready pops are FIFO on both the own
/// and the steal path: promoted continuations drain in deadline order.
/// Single-queue mode (SET scheduler_sharding = 0) is one shard owned by
/// every thread — the PR2 behaviour.
///
/// Idle threads park on one eventcount (sleep_mu_, rank kTaskScheduler): an
/// owner with pending deadlines parks with WaitUntil(its earliest own
/// deadline); others park untimed. Producers bump `wake_epoch_` after
/// publishing, and a parker rechecks the epoch after registering in
/// `sleepers_` — the seq_cst pairing makes missed wakeups impossible.
///
/// Tasks run with no scheduler lock held, so they may take any lock.
class TaskScheduler {
 public:
  explicit TaskScheduler(size_t num_threads = 2);
  /// Explicit topology override (benches A/B the two modes in one process).
  TaskScheduler(size_t num_threads, bool sharded);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues `fn` to run as soon as a scheduler thread is free. `affinity`
  /// pins the task to shard `affinity % num_shards()` (stable hints keep
  /// related continuations on one shard); kNoAffinity rotates round-robin.
  /// Returns the shard index the task landed on.
  size_t Schedule(MoveOnlyFn fn, size_t affinity = kNoAffinity)
      EXCLUDES(sleep_mu_);

  /// Enqueues `fn` to run no earlier than `delay_micros` from now. This is
  /// how simulated latency is charged: the continuation fires at deadline
  /// while the scheduler threads stay free to run other tasks. Returns the
  /// shard index the task landed on.
  size_t ScheduleAfter(uint64_t delay_micros, MoveOnlyFn fn,
                       size_t affinity = kNoAffinity) EXCLUDES(sleep_mu_);

  /// Blocks until both queues are empty and no task is running. Test helper;
  /// the query path never calls this.
  void Drain() EXCLUDES(sleep_mu_);

  size_t num_threads() const { return threads_.size(); }
  size_t num_shards() const { return shards_.size(); }
  bool sharded() const { return sharded_; }

  /// Cumulative count of tasks that have finished running.
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Cumulative micros tasks spent queued (ready queue only) before running.
  uint64_t queue_wait_micros() const {
    return queue_wait_micros_.load(std::memory_order_relaxed);
  }

  /// Cumulative cross-shard ready-task steals (0 in single-queue mode).
  uint64_t steals_total() const;

 private:
  struct DelayedTask {
    std::chrono::steady_clock::time_point deadline;
    uint64_t seq = 0;  // FIFO tie-break for equal deadlines
    // Owned directly: the heap lives in a plain vector manipulated with
    // push_heap/pop_heap, so the expiring task is moved straight out of the
    // back slot — no shared_ptr indirection per delayed task (the old
    // std::priority_queue needed one because top() is const).
    MoveOnlyFn fn;
  };

  struct ReadyTask {
    std::chrono::steady_clock::time_point enqueue_time;
    MoveOnlyFn fn;
  };

  /// One per scheduler thread in sharded mode; line-aligned so two shards'
  /// mutexes never share a cache line.
  struct alignas(64) SchedulerShard {
    // mutable: steals_total() is a const observer.
    mutable Mutex mu{lockrank::kSchedulerShard};
    std::deque<ReadyTask> ready GUARDED_BY(mu);
    /// Min-heap on (deadline, seq) via push_heap/pop_heap with Later();
    /// front() is the earliest deadline.
    std::vector<DelayedTask> delayed GUARDED_BY(mu);
    uint64_t next_seq GUARDED_BY(mu) = 0;
    uint64_t steals GUARDED_BY(mu) = 0;
  };

  /// Heap comparator: a sorts after b (std::push_heap keeps the *earliest*
  /// deadline at front under this ordering).
  static bool Later(const DelayedTask& a, const DelayedTask& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  }

  size_t ShardFor(size_t affinity) {
    if (affinity != kNoAffinity) return affinity % shards_.size();
    return rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  /// Pops the FIFO head of `shard.ready` into *out and records queue-wait.
  /// Caller holds shard.mu.
  void PopReadyLocked(SchedulerShard& shard,
                      std::chrono::steady_clock::time_point now,
                      MoveOnlyFn* out) REQUIRES(shard.mu);
  /// Promotes own expired deadlines, pops own ready FIFO, then sweeps
  /// siblings in randomized order stealing ready tasks only. At most one
  /// shard lock held at any instant.
  bool TryAcquire(size_t self, uint64_t* rng_state, MoveOnlyFn* out)
      EXCLUDES(sleep_mu_);
  void WakeSleepers(bool all) EXCLUDES(sleep_mu_);
  /// One task completed: drop the Drain() barrier count, waking waiters on
  /// the last one out.
  void FinishOne() EXCLUDES(sleep_mu_);
  void WorkerLoop(size_t self) EXCLUDES(sleep_mu_);

  const bool sharded_;
  // deque, not vector: SchedulerShard is immovable (Mutex) and the shard
  // count is fixed in the constructor.
  std::deque<SchedulerShard> shards_;

  /// Eventcount (see class comment) plus the Drain() barrier.
  Mutex sleep_mu_{lockrank::kTaskScheduler};
  CondVar sleep_cv_;
  CondVar idle_cv_;
  std::atomic<size_t> sleepers_{0};
  /// Bumped by every Schedule/ScheduleAfter publish; parkers sample it
  /// before scanning and refuse to sleep if it moved.
  std::atomic<uint64_t> wake_epoch_{0};
  /// Ready tasks across all shards (for work-conserving chain wakeups).
  std::atomic<size_t> ready_total_{0};
  /// Ready + delayed + running: the Drain() barrier.
  std::atomic<size_t> outstanding_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> rr_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> queue_wait_micros_{0};

  // Registry metrics, shared by every scheduler instance in the process;
  // resolved once here so the hot path never touches the registry map.
  metrics::Counter* tasks_total_metric_;
  metrics::Counter* steals_total_metric_;
  metrics::Gauge* queue_depth_metric_;
  metrics::HistogramMetric* queue_wait_metric_;
  std::vector<std::thread> threads_;  // written only in the constructor
};

/// ---------------------------------------------------------------------------
/// Deferred simulated-latency charging.
///
/// Cost-model sites (RpcFabric::Charge, ObjectStore reads, the index cache's
/// disk tier, DiskAnnIndex beam reads) sit deep inside synchronous call
/// stacks; turning each into a continuation would mean hand-written state
/// machines. Instead they call ChargeSimLatency(micros), which:
///
///   - inside a DeferredChargeScope (the async query path): *accumulates* the
///     micros into the scope — no blocking at all. When the enclosing task
///     finishes, the executor schedules its completion continuation at
///     `now + accumulated` on the delay queue, so wall-clock latency is
///     preserved at task granularity while the thread stays free.
///   - outside any scope (sync callers: ingestion, tests, baselines): blocks
///     the calling thread for the full duration via a timed CondVar wait —
///     same observable behaviour as the old sleep_for.
/// ---------------------------------------------------------------------------

/// RAII scope that redirects ChargeSimLatency() on this thread into an
/// accumulator. Scopes nest; charges go to the innermost.
class DeferredChargeScope {
 public:
  DeferredChargeScope();
  ~DeferredChargeScope();

  DeferredChargeScope(const DeferredChargeScope&) = delete;
  DeferredChargeScope& operator=(const DeferredChargeScope&) = delete;

  /// Total micros charged inside this scope so far.
  uint64_t accumulated_micros() const { return accumulated_; }

 private:
  friend void ChargeSimLatency(uint64_t);
  uint64_t accumulated_ = 0;
  DeferredChargeScope* prev_ = nullptr;
};

/// Charge `micros` of simulated latency. Deferred (accumulated) when a
/// DeferredChargeScope is active on this thread, otherwise blocks for the
/// full duration. Never burns CPU; never uses sleep_for.
void ChargeSimLatency(uint64_t micros);

/// True when a DeferredChargeScope is active on the calling thread. Cost
/// models use this only for stats, never for behaviour.
bool SimChargeDeferred();

}  // namespace blendhouse::common
