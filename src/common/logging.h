#pragma once

#include <cstdio>
#include <string_view>

namespace blendhouse::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Benches raise
/// this to kWarn to keep stdout clean for table output.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                std::string_view msg);
}  // namespace internal

#define BH_LOG(level, msg)                                                \
  do {                                                                    \
    if (static_cast<int>(::blendhouse::common::LogLevel::level) >=        \
        static_cast<int>(::blendhouse::common::GetLogLevel()))            \
      ::blendhouse::common::internal::LogMessage(                         \
          ::blendhouse::common::LogLevel::level, __FILE__, __LINE__, msg); \
  } while (0)

}  // namespace blendhouse::common
