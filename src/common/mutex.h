#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>  // lint:allow(raw-mutex) -- the one sanctioned wrapper site

#include "common/thread_annotations.h"

namespace blendhouse::common {

/// The project's only mutual-exclusion primitive. A thin wrapper over
/// std::mutex that carries the Clang thread-safety `capability` attribute,
/// so members declared GUARDED_BY(mu_) are compile-time checked under
/// -Wthread-safety. tools/lint.py rejects raw std::mutex / std::lock_guard /
/// std::condition_variable members anywhere else in src/.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint:allow(raw-mutex)
};

/// RAII lock for Mutex, the analysis-aware std::lock_guard replacement.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Callers hold the mutex and spell the
/// predicate as an explicit loop so guarded reads stay inside the annotated
/// function (Clang cannot see through a predicate lambda):
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and re-acquires `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait(), but also returns (with `mu` re-acquired) once `deadline`
  /// passes. Returns false on timeout, true when notified. This is the one
  /// sanctioned way to wait on wall-clock time: the TaskScheduler delay queue
  /// uses it to fire deadline-scheduled continuations, and sim-latency charges
  /// without an async scope block here instead of in sleep_for (which lint
  /// bans because it burns a pool thread invisibly).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool notified = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex)
};

}  // namespace blendhouse::common
