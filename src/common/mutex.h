#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>  // lint:allow(raw-mutex) -- the one sanctioned wrapper site

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

// Rank checking is compiled in only when CMake defines
// BLENDHOUSE_LOCK_RANK_CHECKS (sanitizer presets, Debug builds, or
// -DBLENDHOUSE_LOCK_RANKS=ON). The define is global — set per-build, never
// per-target — because Mutex methods are inline: mixing checked and
// unchecked definitions across translation units would be an ODR violation.
#if defined(BLENDHOUSE_LOCK_RANK_CHECKS)
#define BH_LOCK_RANK_ONLY(expr) expr
#else
#define BH_LOCK_RANK_ONLY(expr) \
  do {                          \
  } while (false)
#endif

namespace blendhouse::common {

/// The project's only mutual-exclusion primitive. A thin wrapper over
/// std::mutex that carries the Clang thread-safety `capability` attribute,
/// so members declared GUARDED_BY(mu_) are compile-time checked under
/// -Wthread-safety. tools/lint.py rejects raw std::mutex / std::lock_guard /
/// std::condition_variable members anywhere else in src/.
///
/// Every mutex in src/ is constructed with a rank from common/lock_rank.h
/// (enforced by tools/lockgraph.py). In rank-checked builds, acquisition
/// must be strictly decreasing in rank per thread — see DESIGN.md §11.
/// The default (unranked) constructor is for code outside src/ only.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    BH_LOCK_RANK_ONLY(lockrank::NoteAcquire(rank_));
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    BH_LOCK_RANK_ONLY(lockrank::NoteRelease(rank_));
  }
  bool TryLock() TRY_ACQUIRE(true) {
    // TryLock never blocks, so it cannot deadlock — but a successful
    // out-of-order try-acquisition still enters the held stack, where it
    // would poison later monotonicity checks. Hold try-locks to the same
    // discipline.
    if (!mu_.try_lock()) return false;
    BH_LOCK_RANK_ONLY(lockrank::NoteAcquire(rank_));
    return true;
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint:allow(raw-mutex)
  const int rank_ = lockrank::kUnranked;
};

/// RAII lock for Mutex, the analysis-aware std::lock_guard replacement.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. Callers hold the mutex and spell the
/// predicate as an explicit loop so guarded reads stay inside the annotated
/// function (Clang cannot see through a predicate lambda):
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and re-acquires `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  ///
  /// Rank cooperation: the wait releases `mu`, so its rank leaves the
  /// per-thread held stack for the duration and re-enters afterwards. The
  /// waited mutex must be the thread's innermost ranked lock — waiting with
  /// a lower-ranked lock still held would re-acquire out of order.
  void Wait(Mutex& mu) REQUIRES(mu) {
    BH_LOCK_RANK_ONLY(lockrank::NoteWaitRelease(mu.rank_));
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
    BH_LOCK_RANK_ONLY(lockrank::NoteWaitReacquire(mu.rank_));
  }

  /// Like Wait(), but also returns (with `mu` re-acquired) once `deadline`
  /// passes. Returns false on timeout, true when notified. This is the one
  /// sanctioned way to wait on wall-clock time: the TaskScheduler delay queue
  /// uses it to fire deadline-scheduled continuations, and sim-latency charges
  /// without an async scope block here instead of in sleep_for (which lint
  /// bans because it burns a pool thread invisibly).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    BH_LOCK_RANK_ONLY(lockrank::NoteWaitRelease(mu.rank_));
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool notified = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    BH_LOCK_RANK_ONLY(lockrank::NoteWaitReacquire(mu.rank_));
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex)
};

}  // namespace blendhouse::common
