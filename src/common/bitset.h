#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace blendhouse::common {

/// Dynamically sized bitset used for pre-filter bitmaps and delete bitmaps.
///
/// Bits default to 0. Out-of-range Test() returns false, which lets callers
/// treat a shorter bitmap as "all remaining bits unset".
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits, bool initial = false)
      : num_bits_(num_bits),
        words_((num_bits + 63) / 64, initial ? ~uint64_t{0} : 0) {
    TrimTail();
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
    TrimTail();
  }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    if (i >= num_bits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Number of set bits in [begin, end). Clamped to size(); whole words are
  /// popcounted, partial edge words are masked.
  size_t Count(size_t begin, size_t end) const {
    if (end > num_bits_) end = num_bits_;
    if (begin >= end) return 0;
    size_t first = begin >> 6, last = (end - 1) >> 6;
    uint64_t head_mask = ~uint64_t{0} << (begin & 63);
    uint64_t tail_mask = (end & 63) == 0
                             ? ~uint64_t{0}
                             : (uint64_t{1} << (end & 63)) - 1;
    if (first == last)
      return static_cast<size_t>(
          __builtin_popcountll(words_[first] & head_mask & tail_mask));
    size_t n =
        static_cast<size_t>(__builtin_popcountll(words_[first] & head_mask));
    for (size_t i = first + 1; i < last; ++i)
      n += static_cast<size_t>(__builtin_popcountll(words_[i]));
    n += static_cast<size_t>(__builtin_popcountll(words_[last] & tail_mask));
    return n;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// In-place bitwise AND with `other`; sizes must match.
  void And(const Bitset& other) {
    BH_DCHECK_MSG(num_bits_ == other.num_bits_, "Bitset::And size mismatch");
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] &= other.words_[i];
  }
  /// In-place bitwise OR with `other`; sizes must match.
  void Or(const Bitset& other) {
    BH_DCHECK_MSG(num_bits_ == other.num_bits_, "Bitset::Or size mismatch");
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] |= other.words_[i];
  }
  /// In-place `this &= ~other` (e.g. folding a delete bitmap out of a filter
  /// bitmap in one word-level pass); sizes must match.
  void AndNot(const Bitset& other) {
    BH_DCHECK_MSG(num_bits_ == other.num_bits_,
                  "Bitset::AndNot size mismatch");
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] &= ~other.words_[i];
  }
  /// In-place bitwise complement over [0, size()).
  void Not() {
    for (auto& w : words_) w = ~w;
    TrimTail();
  }

  /// Calls `fn(size_t bit_index)` for every set bit in ascending order,
  /// one ctz per set bit (no per-row Test loop).
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
        fn((wi << 6) + bit);
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  void TrimTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (uint64_t{1} << tail) - 1;
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace blendhouse::common
