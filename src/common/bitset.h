#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blendhouse::common {

/// Dynamically sized bitset used for pre-filter bitmaps and delete bitmaps.
///
/// Bits default to 0. Out-of-range Test() returns false, which lets callers
/// treat a shorter bitmap as "all remaining bits unset".
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits, bool initial = false)
      : num_bits_(num_bits),
        words_((num_bits + 63) / 64, initial ? ~uint64_t{0} : 0) {
    TrimTail();
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
    TrimTail();
  }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    if (i >= num_bits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }
  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  /// In-place bitwise AND with `other`; sizes must match.
  void And(const Bitset& other) {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] &= other.words_[i];
  }
  /// In-place bitwise OR with `other`; sizes must match.
  void Or(const Bitset& other) {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i)
      words_[i] |= other.words_[i];
  }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  void TrimTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (uint64_t{1} << tail) - 1;
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace blendhouse::common
