#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace blendhouse::common {

/// Error/success result of an operation, in the style of RocksDB's Status.
///
/// BlendHouse does not throw exceptions across API boundaries; every fallible
/// public function returns a `Status` or a `Result<T>` (see result.h). A
/// default-constructed Status is OK and carries no message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kNotSupported,
    kIoError,
    kAborted,
    kResourceExhausted,
    kInternal,
  };

  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIoError() const { return code_ == Code::kIoError; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, e.g. "InvalidArgument: bad dim".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define BH_RETURN_IF_ERROR(expr)                         \
  do {                                                   \
    ::blendhouse::common::Status _bh_status = (expr);    \
    if (!_bh_status.ok()) return _bh_status;             \
  } while (0)

}  // namespace blendhouse::common
