#pragma once

#include <cstddef>

namespace blendhouse::common {

/// "No preference" affinity hint for ThreadPool::Submit /
/// TaskScheduler::Schedule*: the target shard is chosen round-robin.
/// Any other value is reduced modulo the shard count, so callers can pass a
/// stable hash (e.g. of a segment id) and repeatedly land on the same shard.
inline constexpr size_t kNoAffinity = ~static_cast<size_t>(0);

/// Process-wide default for the execution substrate's queue topology
/// (DESIGN.md §12). When true (the default), ThreadPool and TaskScheduler
/// construct one run-queue shard per worker thread with randomized work
/// stealing; when false they construct the PR2-era single shared FIFO queue.
///
/// The flag is read at *construction* time: flipping it affects pools and
/// schedulers created afterwards (a fresh BlendHouse instance, a scale-out
/// worker), never ones already running. `SET scheduler_sharding = 0|1`
/// (core::BlendHouse::ApplySetting) and bench A/B harnesses write it;
/// BlendHouseOptions::scheduler_sharding pins it per instance.
bool SchedulerShardingEnabled();
void SetSchedulerSharding(bool enabled);

/// RAII override for tests and A/B benches: sets the flag for the scope's
/// lifetime and restores the previous value on exit.
class ScopedSchedulerSharding {
 public:
  explicit ScopedSchedulerSharding(bool enabled)
      : previous_(SchedulerShardingEnabled()) {
    SetSchedulerSharding(enabled);
  }
  ~ScopedSchedulerSharding() { SetSchedulerSharding(previous_); }

  ScopedSchedulerSharding(const ScopedSchedulerSharding&) = delete;
  ScopedSchedulerSharding& operator=(const ScopedSchedulerSharding&) = delete;

 private:
  bool previous_;
};

}  // namespace blendhouse::common
