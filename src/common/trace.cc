#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>

#include "common/metrics.h"

namespace blendhouse::trace {

namespace {

std::atomic<uint64_t> g_next_trace_id{1};

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Span

Span::Span(TracePtr trace, uint64_t span_id, uint64_t parent_id,
           std::string name, double start_micros)
    : trace_(std::move(trace)), start_(std::chrono::steady_clock::now()) {
  record_.span_id = span_id;
  record_.parent_id = parent_id;
  record_.name = std::move(name);
  record_.start_micros = start_micros;
}

Span::~Span() { End(); }

void Span::SetTag(std::string key, std::string value) {
  common::MutexLock lock(mu_);
  record_.tags.emplace_back(std::move(key), std::move(value));
}

void Span::SetBreakdown(double compute_micros, double sim_io_micros,
                        double queue_wait_micros) {
  common::MutexLock lock(mu_);
  record_.compute_micros = compute_micros;
  record_.sim_io_micros = sim_io_micros;
  record_.queue_wait_micros = queue_wait_micros;
}

void Span::AddSimIo(double micros) {
  common::MutexLock lock(mu_);
  record_.sim_io_micros += micros;
}

double Span::ElapsedMicros() const { return MicrosSince(start_); }

void Span::End() {
  if (ended_.exchange(true, std::memory_order_acq_rel)) return;
  SpanRecord record;
  {
    common::MutexLock lock(mu_);
    record_.wall_micros = MicrosSince(start_);
    record = record_;
  }
  trace_->Finish(std::move(record));
}

// ---------------------------------------------------------------- Trace

Trace::Trace(std::string name)
    : trace_id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

TracePtr Trace::Make(std::string name) {
  return TracePtr(new Trace(std::move(name)));  // lint:allow(naked-new)
}

SpanPtr Trace::StartSpan(std::string name, const SpanPtr& parent) {
  open_spans_.fetch_add(1, std::memory_order_acq_rel);
  uint64_t id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  uint64_t parent_id = parent ? parent->span_id() : 0;
  return SpanPtr(new Span(shared_from_this(), id, parent_id,  // lint:allow(naked-new)
                          std::move(name), MicrosSince(start_)));
}

void Trace::Finish(SpanRecord record) {
  {
    common::MutexLock lock(mu_);
    finished_.push_back(std::move(record));
  }
  open_spans_.fetch_sub(1, std::memory_order_acq_rel);
}

std::vector<SpanRecord> Trace::Collect() const {
  common::MutexLock lock(mu_);
  return finished_;
}

double Trace::ElapsedMicros() const { return MicrosSince(start_); }

// ---------------------------------------------------------------- TraceSink

const char* RetentionName(Retention r) {
  switch (r) {
    case Retention::kDropped:
      return "dropped";
    case Retention::kSampled:
      return "sampled";
    case Retention::kSlow:
      return "slow";
    case Retention::kError:
      return "error";
  }
  return "?";
}

namespace {

/// Process-global retention counters, mirrored from every sink's instance
/// tallies (tests assert the per-instance ones; dashboards read these).
struct RetentionMetrics {
  common::metrics::Counter* retained_error;
  common::metrics::Counter* retained_slow;
  common::metrics::Counter* retained_sampled;
  common::metrics::Counter* dropped;
};

const RetentionMetrics& SinkMetrics() {
  auto& reg = common::metrics::MetricsRegistry::Instance();
  static const RetentionMetrics m{
      reg.GetCounter("bh_trace_retained_error_total"),
      reg.GetCounter("bh_trace_retained_slow_total"),
      reg.GetCounter("bh_trace_retained_sampled_total"),
      reg.GetCounter("bh_trace_dropped_total"),
  };
  return m;
}

}  // namespace

TraceSink::TraceSink() : TraceSink(Options()) {}

TraceSink::TraceSink(Options opts) : opts_(opts), rng_(opts.seed) {}

bool TraceSink::ShouldSample() {
  if (opts_.sample_rate <= 0.0) return false;
  if (opts_.sample_rate >= 1.0) return true;
  common::MutexLock lock(mu_);
  return rng_.Uniform() < opts_.sample_rate;
}

Retention TraceSink::Offer(const Trace& trace, const Completion& info) {
  Retention verdict;
  if (info.error) {
    verdict = Retention::kError;
  } else if (info.slow_threshold_micros > 0 &&
             info.latency_micros >= info.slow_threshold_micros) {
    verdict = Retention::kSlow;
  } else {
    verdict = ShouldSample() ? Retention::kSampled : Retention::kDropped;
  }

  // Resolve the registry counters and collect the trace's spans (rank
  // kTrace > kTraceSink) before taking mu_: acquisition order must be
  // strictly decreasing in rank.
  const RetentionMetrics& m = SinkMetrics();
  FinishedTrace finished;
  if (verdict != Retention::kDropped) {
    finished.trace_id = trace.trace_id();
    finished.name = trace.name();
    finished.retention = verdict;
    finished.fingerprint = info.fingerprint;
    finished.latency_micros = info.latency_micros;
    finished.spans = trace.Collect();
  }

  common::MutexLock lock(mu_);
  ++offered_;
  switch (verdict) {
    case Retention::kDropped:
      ++sample_dropped_;
      m.dropped->Add(1);
      return verdict;
    case Retention::kSampled:
      ++retained_sampled_;
      m.retained_sampled->Add(1);
      break;
    case Retention::kSlow:
      ++retained_slow_;
      m.retained_slow->Add(1);
      break;
    case Retention::kError:
      ++retained_error_;
      m.retained_error->Add(1);
      break;
  }
  RecordLocked(std::move(finished));
  return verdict;
}

void TraceSink::Record(const Trace& trace) {
  FinishedTrace finished;
  finished.trace_id = trace.trace_id();
  finished.name = trace.name();
  finished.spans = trace.Collect();
  common::MutexLock lock(mu_);
  ++offered_;
  ++retained_sampled_;
  SinkMetrics().retained_sampled->Add(1);
  RecordLocked(std::move(finished));
}

void TraceSink::RecordLocked(FinishedTrace finished) {
  traces_.push_back(std::move(finished));
  while (traces_.size() > opts_.max_traces) {
    traces_.pop_front();
    ++dropped_;
  }
}

std::vector<FinishedTrace> TraceSink::Traces() const {
  common::MutexLock lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::optional<FinishedTrace> TraceSink::FindTrace(uint64_t trace_id) const {
  common::MutexLock lock(mu_);
  for (const FinishedTrace& ft : traces_)
    if (ft.trace_id == trace_id) return ft;
  return std::nullopt;
}

size_t TraceSink::size() const {
  common::MutexLock lock(mu_);
  return traces_.size();
}

uint64_t TraceSink::dropped() const {
  common::MutexLock lock(mu_);
  return dropped_;
}

uint64_t TraceSink::offered() const {
  common::MutexLock lock(mu_);
  return offered_;
}

uint64_t TraceSink::retained_error() const {
  common::MutexLock lock(mu_);
  return retained_error_;
}

uint64_t TraceSink::retained_slow() const {
  common::MutexLock lock(mu_);
  return retained_slow_;
}

uint64_t TraceSink::retained_sampled() const {
  common::MutexLock lock(mu_);
  return retained_sampled_;
}

uint64_t TraceSink::sample_dropped() const {
  common::MutexLock lock(mu_);
  return sample_dropped_;
}

void TraceSink::Clear() {
  common::MutexLock lock(mu_);
  traces_.clear();
  dropped_ = 0;
  offered_ = 0;
  retained_error_ = 0;
  retained_slow_ = 0;
  retained_sampled_ = 0;
  sample_dropped_ = 0;
}

std::string TraceSink::DumpJson() const {
  std::vector<FinishedTrace> traces = Traces();
  std::string out = "[";
  for (size_t t = 0; t < traces.size(); ++t) {
    const FinishedTrace& ft = traces[t];
    if (t != 0) out += ",";
    out += "{\"trace_id\":" + std::to_string(ft.trace_id);
    out += ",\"name\":\"" + JsonEscape(ft.name) + "\"";
    out += ",\"retention_reason\":\"";
    out += RetentionName(ft.retention);
    out += "\"";
    if (!ft.fingerprint.empty())
      out += ",\"fingerprint\":\"" + JsonEscape(ft.fingerprint) + "\"";
    {
      char lbuf[64];
      std::snprintf(lbuf, sizeof(lbuf), ",\"latency_micros\":%.3f",
                    ft.latency_micros);
      out += lbuf;
    }
    out += ",\"spans\":[";
    for (size_t i = 0; i < ft.spans.size(); ++i) {
      const SpanRecord& s = ft.spans[i];
      if (i != 0) out += ",";
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"span_id\":%llu,\"parent_id\":%llu,\"start_micros\":%."
                    "3f,\"wall_micros\":%.3f,\"compute_micros\":%.3f,\"sim_io_"
                    "micros\":%.3f,\"queue_wait_micros\":%.3f",
                    static_cast<unsigned long long>(s.span_id),
                    static_cast<unsigned long long>(s.parent_id),
                    s.start_micros, s.wall_micros, s.compute_micros,
                    s.sim_io_micros, s.queue_wait_micros);
      out += buf;
      out += ",\"name\":\"" + JsonEscape(s.name) + "\",\"tags\":{";
      for (size_t k = 0; k < s.tags.size(); ++k) {
        if (k != 0) out += ",";
        out += "\"" + JsonEscape(s.tags[k].first) + "\":\"" +
               JsonEscape(s.tags[k].second) + "\"";
      }
      out += "}}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------- Render

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  // Group children under parents, keeping start order within siblings.
  std::map<uint64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& s : spans) children[s.parent_id].push_back(&s);
  for (auto& [pid, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->start_micros != b->start_micros)
                  return a->start_micros < b->start_micros;
                return a->span_id < b->span_id;
              });
  }

  std::string out;
  std::function<void(uint64_t, int)> render = [&](uint64_t parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) return;
    for (const SpanRecord* s : it->second) {
      out.append(static_cast<size_t>(depth) * 2, ' ');
      char buf[192];
      std::snprintf(buf, sizeof(buf), "%s: wall=%.0fus", s->name.c_str(),
                    s->wall_micros);
      out += buf;
      if (s->compute_micros > 0 || s->sim_io_micros > 0 ||
          s->queue_wait_micros > 0) {
        std::snprintf(buf, sizeof(buf),
                      " compute=%.0fus sim_io=%.0fus queue_wait=%.0fus",
                      s->compute_micros, s->sim_io_micros,
                      s->queue_wait_micros);
        out += buf;
      }
      for (const auto& [k, v] : s->tags) out += " " + k + "=" + v;
      out += "\n";
      render(s->span_id, depth + 1);
    }
  };
  render(0, 0);
  return out;
}

}  // namespace blendhouse::trace
