#pragma once

#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/move_only_fn.h"
#include "common/mutex.h"

namespace blendhouse::common {

/// Fixed-size worker pool.
///
/// Used by cluster workers (query execution), the LSM engine (background
/// compaction and pipelined index build), and bench harnesses (concurrent
/// clients). Tasks are move-only callables (common::MoveOnlyFn), so the
/// packaged_task lives inside the closure itself — one allocation per task
/// instead of the shared_ptr<packaged_task> + std::function pair.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn`; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    std::packaged_task<R()> task(std::forward<Fn>(fn));
    std::future<R> fut = task.get_future();
    {
      MutexLock lock(mu_);
      queue_.push_back(QueueEntry{
          std::chrono::steady_clock::now(),
          MoveOnlyFn([task = std::move(task)]() mutable { task(); })});
    }
    queue_depth_metric_->Add(1);
    cv_.NotifyOne();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait() EXCLUDES(mu_);

 private:
  struct QueueEntry {
    std::chrono::steady_clock::time_point enqueue_time;
    MoveOnlyFn fn;
  };

  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{lockrank::kThreadPool};
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<QueueEntry> queue_ GUARDED_BY(mu_);
  // Registry metrics (process-wide, summed over all pools); resolved once in
  // the constructor so Submit never touches the registry map.
  metrics::Counter* tasks_total_metric_;
  metrics::Gauge* queue_depth_metric_;
  metrics::HistogramMetric* queue_wait_metric_;
  std::vector<std::thread> threads_;  // written only in the constructor
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace blendhouse::common
