#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/metrics.h"
#include "common/move_only_fn.h"
#include "common/mutex.h"
#include "common/sharding.h"

namespace blendhouse::common {

/// Fixed-size worker pool with shard-per-core run queues (DESIGN.md §12).
///
/// Used by cluster workers (query execution), the LSM engine (background
/// compaction and pipelined index build), and bench harnesses (concurrent
/// clients). Tasks are move-only callables (common::MoveOnlyFn), so the
/// packaged_task lives inside the closure itself — one allocation per task
/// instead of the shared_ptr<packaged_task> + std::function pair.
///
/// Topology: in sharded mode (the default, see common/sharding.h) every
/// worker thread owns one run-queue shard with its own mutex
/// (lockrank::kThreadPoolShard). Submit enqueues round-robin, or onto
/// `affinity % num_shards()` when the caller passes a stable hint, so
/// repeated work for the same key lands on the same shard and its data stays
/// hot. Workers pop their own shard LIFO (the most recently pushed task's
/// cache lines are the warmest) and steal FIFO from a random sibling when
/// their queue is dry; a thief holds exactly one shard lock at a time, so
/// sibling shard mutexes — which share one rank — never nest. In
/// single-queue mode (SET scheduler_sharding = 0) there is one shard popped
/// FIFO by every thread and no stealing: the PR2 behaviour, kept for A/B.
///
/// Idle workers park on a single eventcount (sleep_mu_/sleep_cv_, rank
/// kThreadPool): Submit bumps `queued_` and wakes a sleeper only when one is
/// registered, so the uncontended fast path is shard-lock + two atomics.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  /// Explicit topology override (benches A/B the two modes in one process).
  ThreadPool(size_t num_threads, bool sharded);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }
  size_t num_shards() const { return shards_.size(); }
  bool sharded() const { return sharded_; }

  /// Enqueues `fn`; returns a future for its result. `affinity` pins the
  /// task to shard `affinity % num_shards()` (pass a stable hash to keep
  /// related tasks on one shard); kNoAffinity rotates round-robin.
  template <typename Fn>
  auto Submit(Fn&& fn, size_t affinity = kNoAffinity)
      -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    std::packaged_task<R()> task(std::forward<Fn>(fn));
    std::future<R> fut = task.get_future();
    PoolShard& shard = shards_[ShardFor(affinity)];
    pending_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexLock lock(shard.mu);
      shard.queue.push_back(QueueEntry{
          std::chrono::steady_clock::now(),
          MoveOnlyFn([task = std::move(task)]() mutable { task(); })});
      // Under the lock, not after: a fast worker could otherwise run the
      // task and Sub(1) before this Add(1) lands, leaving the gauge
      // transiently negative.
      queue_depth_metric_->Add(1);
    }
    WakeOneSleeper();
    return fut;
  }

  /// Blocks until every queue is empty and all in-flight tasks finished.
  void Wait() EXCLUDES(sleep_mu_);

  /// Cumulative cross-shard steals (0 in single-queue mode).
  uint64_t steals_total() const;
  /// Instantaneous per-shard queue depths, for bench/test introspection.
  std::vector<size_t> shard_queue_depths() const;

 private:
  struct QueueEntry {
    std::chrono::steady_clock::time_point enqueue_time;
    MoveOnlyFn fn;
  };

  /// One per worker thread in sharded mode; cache-line aligned so two
  /// shards' mutexes never share a line (the contention this refactor
  /// removes).
  struct alignas(64) PoolShard {
    // mutable: steals_total()/shard_queue_depths() are const observers.
    mutable Mutex mu{lockrank::kThreadPoolShard};
    std::deque<QueueEntry> queue GUARDED_BY(mu);
    uint64_t steals GUARDED_BY(mu) = 0;
  };

  size_t ShardFor(size_t affinity) {
    if (affinity != kNoAffinity) return affinity % shards_.size();
    return rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }

  void WakeOneSleeper() EXCLUDES(sleep_mu_);
  /// One task completed: drop the Wait() barrier count, waking waiters on
  /// the last one out.
  void FinishOne() EXCLUDES(sleep_mu_);
  /// Pops from the caller's own shard (LIFO when sharded), then sweeps the
  /// siblings in `rng_state`-randomized order stealing FIFO. Holds at most
  /// one shard lock at any instant.
  bool TryPop(size_t self, uint64_t* rng_state, MoveOnlyFn* out)
      EXCLUDES(sleep_mu_);
  void WorkerLoop(size_t self) EXCLUDES(sleep_mu_);

  const bool sharded_;
  // deque, not vector: PoolShard is immovable (Mutex) and the shard count is
  // fixed in the constructor.
  std::deque<PoolShard> shards_;

  /// Eventcount for idle workers and the Wait() barrier. Parking is
  /// two-phase: a worker registers in `sleepers_` under sleep_mu_, rechecks
  /// `queued_`, and only then waits; a submitter bumps `queued_` first and
  /// takes sleep_mu_ to notify only when `sleepers_` is nonzero — the
  /// seq_cst store/load pair makes one side always see the other.
  Mutex sleep_mu_{lockrank::kThreadPool};
  CondVar sleep_cv_;
  CondVar idle_cv_;
  std::atomic<size_t> sleepers_{0};
  /// Tasks sitting in some shard queue (not yet popped).
  std::atomic<size_t> queued_{0};
  /// Tasks submitted and not yet finished (queued + running): Wait() barrier.
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<size_t> rr_{0};

  // Registry metrics (process-wide, summed over all pools and shards);
  // resolved once in the constructor so Submit never touches the registry
  // map.
  metrics::Counter* tasks_total_metric_;
  metrics::Counter* steals_total_metric_;
  metrics::Gauge* queue_depth_metric_;
  metrics::HistogramMetric* queue_wait_metric_;
  std::vector<std::thread> threads_;  // written only in the constructor
};

}  // namespace blendhouse::common
