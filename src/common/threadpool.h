#ifndef BLENDHOUSE_COMMON_THREADPOOL_H_
#define BLENDHOUSE_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace blendhouse::common {

/// Fixed-size worker pool.
///
/// Used by cluster workers (query execution), the LSM engine (background
/// compaction and pipelined index build), and bench harnesses (concurrent
/// clients). Tasks are plain std::function<void()>; Submit() returns a future
/// for the completion of a callable with a result.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn`; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace blendhouse::common

#endif  // BLENDHOUSE_COMMON_THREADPOOL_H_
