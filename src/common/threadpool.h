#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace blendhouse::common {

/// Fixed-size worker pool.
///
/// Used by cluster workers (query execution), the LSM engine (background
/// compaction and pipelined index build), and bench harnesses (concurrent
/// clients). Tasks are plain std::function<void()>; Submit() returns a future
/// for the completion of a callable with a result.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn`; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void Wait() EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written only in the constructor
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace blendhouse::common
