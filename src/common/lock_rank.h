#pragma once

// Whole-program lock-rank hierarchy (DESIGN.md §11).
//
// Every common::Mutex in src/ is constructed with one of the ranks below.
// The discipline: a thread may only acquire a mutex whose rank is STRICTLY
// LOWER than the lowest rank it already holds. Outer (coarse, long-lived)
// locks have high ranks; leaf locks have low ranks. Acquisition order is
// therefore globally acyclic by construction — the RemoveWorker-class
// deadlock (PR5) cannot be reintroduced without tripping a check.
//
// The hierarchy is verified twice:
//   - statically, by tools/lockgraph.py (runs as the `lockgraph` ctest and
//     in CI): it parses these constants plus the CAPABILITY/REQUIRES/
//     GUARDED_BY annotations and call edges, builds the global acquisition
//     graph, and rejects cycles, non-monotone edges, unranked mutexes, and
//     callback-under-lock sites;
//   - dynamically, in rank-checked builds (BLENDHOUSE_LOCK_RANK_CHECKS:
//     sanitizer/Debug presets, or -DBLENDHOUSE_LOCK_RANKS=ON): Mutex keeps a
//     per-thread held-rank stack and aborts on any non-monotone acquisition
//     actually executed. Release builds compile all of it out.
//
// Picking a rank for a new mutex: find every lock that can be held when
// yours is acquired (callers' locks) and every lock your critical sections
// acquire (including through calls — ThreadPool::Submit takes the pool lock,
// ObjectStore::Get takes the store lock and may block in the sim-latency
// wait). Your rank must sit strictly between them. Prefer reusing an
// existing band (e.g. a new LRU-style cache takes kLruCache); add a new
// constant only for a new layer, leaving numeric gaps. tools/lockgraph.py
// re-derives the full table, so a wrong guess fails the lint leg, not
// production.

namespace blendhouse::common::lockrank {

/// Mutexes constructed without a rank opt out of checking entirely. Allowed
/// only outside src/ (tests, benches); tools/lockgraph.py rejects unranked
/// mutexes in the tree.
inline constexpr int kUnranked = -1;

// ---- Rank table (outermost first; larger = acquired earlier) --------------

/// core::BlendHouse::catalog_mu_ — table-map lookups and DDL.
inline constexpr int kCatalog = 1000;

/// storage::LsmEngine::flush_mu_ — serializes flush/compaction commits.
/// Held across segment writes, index builds, and version commits, so it is
/// the outermost storage lock.
inline constexpr int kLsmFlush = 950;

/// storage::LsmEngine::memtable_mu_ — memtable swap. Never held while
/// flushing (Insert/Flush move the batch out first), but documented above
/// the flush internals it feeds.
inline constexpr int kLsmMemtable = 940;

/// storage::LsmEngine::pending_mu_ — queued background-flush futures; held
/// while submitting to the flush pool.
inline constexpr int kLsmPending = 930;

/// baselines::BlendHouseSystem::stats_mu_ — per-epoch ExecStats fold; folds
/// run in query completion continuations with no other lock held.
inline constexpr int kBaselineStats = 900;

/// storage::LsmEngine::partitioner_mu_ — copy-on-train partitioner publish;
/// taken under flush_mu_ on the training flush.
inline constexpr int kLsmPartitioner = 880;

/// storage::VersionSet::mu_ — multi-version commit state; taken under
/// flush_mu_ by flush/compaction commits.
inline constexpr int kVersionSet = 860;

/// core::BlendHouse::TableState::stats_mu — statistics refresh; held across
/// ObjectStore segment fetches (kObjectStore, kSimWait).
inline constexpr int kTableStats = 840;

/// cluster::VirtualWarehouse::mu_ — worker map, rings, query leases. Above
/// every worker-internal lock: scale events construct/clear workers (cache,
/// pool, registry locks) under it. Workers never call back into the VW with
/// their own locks held (the peer resolver asserts none are).
inline constexpr int kVirtualWarehouse = 800;

/// sql::PlanCache::mu_ — plan-signature LRU.
inline constexpr int kPlanCache = 700;

/// Per-query fan-in state (sql::Executor::AttemptState::mu,
/// cluster::PreloadFanIn::mu): streaming top-k folds and preload joins.
/// Completion promises are fired after this lock is released.
inline constexpr int kQueryFanIn = 600;

/// trace::Span::mu_ — span record mutation. End() copies under the lock and
/// records into the trace after releasing it.
inline constexpr int kSpan = 500;

/// trace::Trace::mu_ — finished-span collection.
inline constexpr int kTrace = 480;

/// trace::TraceSink::mu_ — sampled-trace ring.
inline constexpr int kTraceSink = 460;

/// core::QueryLog::mu_ — finished-query ring + fingerprint profiles. Taken
/// with no other lock held (RunSelect appends after the trace is closed and
/// the sink decision is made); its critical sections touch nothing but the
/// ring and the profile map's lock-free histograms.
inline constexpr int kQueryLog = 440;

/// common::internal::FutureState::mu_ — promise/future shared state.
/// Continuations run (or are handed to the scheduler) outside this lock.
inline constexpr int kFuture = 400;

/// storage::ObjectStore::mu_ — simulated remote store map + cost model.
/// Latency is charged outside it (with a copy of the model).
inline constexpr int kObjectStore = 300;

/// common::LruCache::mu_ — every LRU space (index memory/metadata/disk
/// tiers, segment cache, filter-bitmap cache). Cache operations never nest
/// two LRU locks: tier walks in HierarchicalIndexCache are sequential.
inline constexpr int kLruCache = 250;

/// common::ThreadPool::sleep_mu_ — the pool's eventcount (idle-worker
/// parking and the Wait() barrier). Taken with no shard lock held, by
/// submitters (wake), finishing tasks (idle notify), and parking workers.
inline constexpr int kThreadPool = 200;

/// common::ThreadPool::PoolShard::mu — per-worker run-queue shards
/// (DESIGN.md §12). All shards of all pools share this one rank: the steal
/// protocol never holds two shard locks at once (a thief releases nothing —
/// it owns nothing — and takes exactly one victim lock), so the equal-rank
/// check dynamically enforces the no-nesting discipline, and
/// tools/lockgraph.py rejects any same-rank shard edge statically
/// (rule `shard-nesting`). Submit is callable under any higher lock.
inline constexpr int kThreadPoolShard = 195;

/// common::TaskScheduler::sleep_mu_ — the scheduler's eventcount (idle
/// parking with per-owner deadline waits, and the Drain() barrier). Tasks
/// and expired continuations run with no scheduler lock held.
inline constexpr int kTaskScheduler = 180;

/// common::TaskScheduler::SchedulerShard::mu — per-thread ready deque +
/// deadline heap shards. Same no-nesting family discipline as
/// kThreadPoolShard: thieves steal ready work under exactly one shard lock.
inline constexpr int kSchedulerShard = 175;

/// common::metrics::MetricsRegistry::mu_ — metric name map. Get* is called
/// from constructors that may run under a warehouse or engine lock; the
/// hot-path metric objects themselves are lock-free.
inline constexpr int kMetricsRegistry = 150;

/// The private deadline mutex inside common::ChargeSimLatency's blocking
/// path — the innermost wait in the system, reachable with storage locks
/// held (sync cost-model charges).
inline constexpr int kSimWait = 100;

/// Human-readable name for a rank value ("kVirtualWarehouse(800)");
/// "unranked" for kUnranked, the bare number for unknown values.
const char* RankName(int rank);

// ---- Per-thread held-rank checking ----------------------------------------
//
// Compiled in only under BLENDHOUSE_LOCK_RANK_CHECKS (see mutex.h); the
// functions are always defined so linking is configuration-independent.

/// Called by Mutex before blocking on acquisition. Aborts (via the BH_ASSERT
/// failure path) unless `rank` is strictly below every currently held rank.
/// kUnranked participates in no checking.
void NoteAcquire(int rank);

/// Called by Mutex after release; removes the most recent matching entry.
void NoteRelease(int rank);

/// CondVar cooperation: waiting atomically releases the mutex, so its rank
/// leaves the held stack for the duration of the wait. Asserts the rank is
/// the innermost held (waiting while holding a lower-ranked lock would be a
/// hierarchy inversion on re-acquisition).
void NoteWaitRelease(int rank);

/// Re-entry after the wait re-acquired the mutex.
void NoteWaitReacquire(int rank);

/// Aborts if the calling thread holds any ranked lock. Placed at the points
/// where externally supplied callbacks/continuations are invoked (inline
/// future continuations, the peer resolver) — the dynamic twin of
/// tools/lockgraph.py's callback-under-lock check. `what` names the callback
/// site for the failure message.
void AssertNoneHeld(const char* what);

/// Introspection for tests: number of ranked locks this thread holds, and
/// the minimum held rank (or a value > any table rank when none is held).
int HeldDepthForTest();
int MinHeldRankForTest();

}  // namespace blendhouse::common::lockrank
