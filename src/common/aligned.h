#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>  // lint:allow(naked-new)
#include <vector>

namespace blendhouse::common {

/// Cache-line alignment used for vector storage. 64 bytes covers a full
/// x86/ARM cache line and the widest SIMD register (AVX-512 zmm).
inline constexpr size_t kVectorAlignment = 64;

/// Minimal aligned allocator so packed vector storage starts on a cache-line
/// boundary. The SIMD kernels use unaligned loads and therefore accept any
/// pointer; alignment is a throughput optimization (no cache-line-split
/// loads on the hot scan path), not a correctness contract.
template <typename T, size_t Alignment = kVectorAlignment>
class AlignedAllocator {
 public:
  using value_type = T;

  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be pow2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n > std::numeric_limits<size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    // Round the byte count up to a multiple of the alignment, as required by
    // std::aligned_alloc.
    size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose buffer is 64-byte aligned. Drop-in replacement for the
/// packed float storage inside indexes and segment columns.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace blendhouse::common
