#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <string>

namespace blendhouse::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                std::string_view msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %.*s\n", LevelName(level), base, line,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace internal
}  // namespace blendhouse::common
