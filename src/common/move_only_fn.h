#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace blendhouse::common {

/// Move-only type-erased callable with signature void().
///
/// std::function requires the wrapped callable to be copyable, which forces
/// ThreadPool::Submit to put its std::packaged_task behind a shared_ptr — two
/// heap allocations per task. MoveOnlyFn erases move-only callables directly
/// (one allocation), so a promise or packaged_task can live inside the
/// closure itself.
class MoveOnlyFn {
 public:
  MoveOnlyFn() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, MoveOnlyFn> &&
                std::is_invocable_r_v<void, std::decay_t<Fn>&>>>
  MoveOnlyFn(Fn&& fn)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<Fn>>>(std::forward<Fn>(fn))) {
  }

  MoveOnlyFn(MoveOnlyFn&&) = default;
  MoveOnlyFn& operator=(MoveOnlyFn&&) = default;
  MoveOnlyFn(const MoveOnlyFn&) = delete;
  MoveOnlyFn& operator=(const MoveOnlyFn&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  void operator()() { impl_->Call(); }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void Call() = 0;
  };

  template <typename Fn>
  struct Impl final : Base {
    explicit Impl(Fn&& fn) : fn(std::move(fn)) {}
    explicit Impl(const Fn& fn) : fn(fn) {}
    void Call() override { fn(); }
    Fn fn;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace blendhouse::common
