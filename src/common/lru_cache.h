#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/assert.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace blendhouse::common {

/// Thread-safe byte-budgeted LRU cache. Values are stored by value (use
/// shared_ptr for heavy objects). The caller supplies each entry's charged
/// size, so one template serves the index cache, the segment (column data)
/// cache, and the disk tier.
///
/// Locking: every access takes mu_; the hit/miss/eviction counters are
/// atomics so stats reads never contend with the hot path.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Mirrors this cache's traffic into registry metrics (any pointer may be
  /// null). Call once at wiring time, before concurrent use; the per-cache
  /// atomic counters keep working either way.
  void InstrumentMetrics(metrics::Counter* hits, metrics::Counter* misses,
                         metrics::Counter* evictions, metrics::Gauge* bytes) {
    metric_hits_ = hits;
    metric_misses_ = misses;
    metric_evictions_ = evictions;
    metric_bytes_ = bytes;
  }

  std::optional<V> Get(const std::string& key) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (metric_misses_ != nullptr) metric_misses_->Add(1);
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) metric_hits_->Add(1);
    return it->second->value;
  }

  /// Peek without touching LRU order or hit/miss counters.
  std::optional<V> Peek(const std::string& key) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second->value;
  }

  void Put(const std::string& key, V value, size_t bytes) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      BH_DCHECK_MSG(used_ >= it->second->bytes, "cache accounting underflow");
      used_ -= it->second->bytes;
      order_.erase(it->second);
      map_.erase(it);
    }
    // An entry larger than the whole budget is not cacheable.
    if (bytes > capacity_) {
      if (metric_bytes_ != nullptr)
        metric_bytes_->Set(static_cast<int64_t>(used_));
      return;
    }
    order_.push_front(Entry{key, std::move(value), bytes});
    map_[key] = order_.begin();
    used_ += bytes;
    while (used_ > capacity_ && !order_.empty()) {
      const Entry& victim = order_.back();
      BH_DCHECK_MSG(used_ >= victim.bytes, "eviction accounting underflow");
      used_ -= victim.bytes;
      map_.erase(victim.key);
      order_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (metric_evictions_ != nullptr) metric_evictions_->Add(1);
    }
    if (metric_bytes_ != nullptr)
      metric_bytes_->Set(static_cast<int64_t>(used_));
    BH_DCHECK_MSG(map_.size() == order_.size(),
                  "LRU map and recency list diverged");
    BH_DCHECK_MSG(used_ <= capacity_ || order_.empty(),
                  "eviction left the cache over budget");
  }

  void Erase(const std::string& key) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    BH_DCHECK_MSG(used_ >= it->second->bytes, "cache accounting underflow");
    used_ -= it->second->bytes;
    order_.erase(it->second);
    map_.erase(it);
    if (metric_bytes_ != nullptr)
      metric_bytes_->Set(static_cast<int64_t>(used_));
  }

  void Clear() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    map_.clear();
    order_.clear();
    used_ = 0;
    if (metric_bytes_ != nullptr) metric_bytes_->Set(0);
  }

  bool Contains(const std::string& key) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.count(key) > 0;
  }

  size_t used_bytes() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return used_;
  }
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.size();
  }
  size_t capacity_bytes() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string key;
    V value;
    size_t bytes;
  };

  const size_t capacity_;
  mutable Mutex mu_{lockrank::kLruCache};
  std::list<Entry> order_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> map_
      GUARDED_BY(mu_);
  size_t used_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  // Optional registry mirrors; written before concurrent use, never after.
  metrics::Counter* metric_hits_ = nullptr;
  metrics::Counter* metric_misses_ = nullptr;
  metrics::Counter* metric_evictions_ = nullptr;
  metrics::Gauge* metric_bytes_ = nullptr;
};

}  // namespace blendhouse::common
