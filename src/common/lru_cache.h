#ifndef BLENDHOUSE_COMMON_LRU_CACHE_H_
#define BLENDHOUSE_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace blendhouse::common {

/// Thread-safe byte-budgeted LRU cache. Values are stored by value (use
/// shared_ptr for heavy objects). The caller supplies each entry's charged
/// size, so one template serves the index cache, the segment (column data)
/// cache, and the disk tier.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  std::optional<V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Peek without touching LRU order or hit/miss counters.
  std::optional<V> Peek(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second->value;
  }

  void Put(const std::string& key, V value, size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      used_ -= it->second->bytes;
      order_.erase(it->second);
      map_.erase(it);
    }
    // An entry larger than the whole budget is not cacheable.
    if (bytes > capacity_) return;
    order_.push_front(Entry{key, std::move(value), bytes});
    map_[key] = order_.begin();
    used_ += bytes;
    while (used_ > capacity_ && !order_.empty()) {
      const Entry& victim = order_.back();
      used_ -= victim.bytes;
      map_.erase(victim.key);
      order_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    used_ -= it->second->bytes;
    order_.erase(it->second);
    map_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
    used_ = 0;
  }

  bool Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) > 0;
  }

  size_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  size_t capacity_bytes() const { return capacity_; }
  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  uint64_t evictions() const { return evictions_.load(); }

 private:
  struct Entry {
    std::string key;
    V value;
    size_t bytes;
  };

  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> map_;
  size_t used_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace blendhouse::common

#endif  // BLENDHOUSE_COMMON_LRU_CACHE_H_
