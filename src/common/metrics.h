#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"

namespace blendhouse::common::metrics {

/// Process-wide telemetry registry (DESIGN.md §10).
///
/// Naming convention: `bh_<subsystem>_<name>_<unit>` — e.g.
/// `bh_object_store_sim_latency_micros_total`. Counters end in `_total`,
/// gauges name the instantaneous quantity (`bh_scheduler_queue_depth`), and
/// histograms name the recorded unit (`bh_sql_exec_micros`).
///
/// Hot-path contract: Counter::Add and Gauge::Add are single relaxed atomic
/// RMWs (counters additionally shard by thread so concurrent writers do not
/// bounce one cache line); HistogramMetric::Record is a branchless-ish bucket
/// search over an immutable bounds array plus three relaxed RMWs. Call sites
/// resolve metric pointers once (constructor or static local), never per op.

/// Process-wide counter shard count, frozen at the first Counter
/// construction. Defaults to max(16, hardware_concurrency) rounded up to a
/// power of two, so a many-core host gets one shard per core instead of the
/// historical fixed 16 (ROADMAP item 5 leftover).
size_t CounterShardCount();

/// Configures the shard count at process init, before any counter exists
/// (rounded up to a power of two). Returns false — and changes nothing —
/// once the count is frozen by a prior call or the first Counter.
bool ConfigureCounterShards(size_t shards);

/// Monotonic counter with a thread-sharded lock-free fast path.
class Counter {
 public:
  Counter()
      : mask_(CounterShardCount() - 1),
        shards_(std::make_unique<Shard[]>(mask_ + 1)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ThisThreadSlot() & mask_].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (size_t i = 0; i <= mask_; ++i)
      total += shards_[i].v.load(std::memory_order_relaxed);
    return total;
  }

  size_t shard_count() const { return mask_ + 1; }

  /// Test-only: counters are monotonic in production.
  void ResetForTest() {
    for (size_t i = 0; i <= mask_; ++i)
      shards_[i].v.store(0, std::memory_order_relaxed);
  }

 private:
  // Fewer shards than threads just means some sharing, never incorrectness.
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  static size_t ThisThreadSlot() {
    static std::atomic<size_t> next{0};
    thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  const size_t mask_;
  std::unique_ptr<Shard[]> shards_;
};

/// Instantaneous value (queue depth, in-flight calls, resident bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket concurrent histogram. Bounds are immutable after
/// construction; Record touches only relaxed atomics. Snapshot() materialises
/// a common::BucketedHistogram for percentile queries and exporters.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds)
      : upper_bounds_(std::move(upper_bounds)),
        counts_(upper_bounds_.size() + 1) {}
  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void Record(double v) {
    size_t idx = 0;
    while (idx < upper_bounds_.size() && v > upper_bounds_[idx]) ++idx;
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // C++20 atomic<double>::fetch_add.
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  BucketedHistogram Snapshot() const {
    std::vector<uint64_t> counts(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
      counts[i] = counts_[i].load(std::memory_order_relaxed);
    return BucketedHistogram::FromParts(upper_bounds_, std::move(counts),
                                        Sum());
  }

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  void ResetForTest() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  const std::vector<double> upper_bounds_;
  // unique_ptr-free: vector of atomics is sized once in the ctor and never
  // resized, so the deleted move ctor of std::atomic is irrelevant.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default micros-latency bucket bounds: 10us .. 10s, ~1-2-5 ladder.
const std::vector<double>& DefaultLatencyBoundsMicros();

/// Maps a metric name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — every invalid byte becomes '_', and a
/// leading digit gets a '_' prefix. Registry names already follow the
/// `bh_*` convention (lint rule `metric-name`); this guards the exporter
/// against ad-hoc names from tests or future dynamic registration.
std::string PrometheusSanitizeName(const std::string& name);

/// Escapes a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline are escaped per the spec.
std::string PrometheusEscapeLabel(const std::string& value);

/// One flattened (name, value) pair; histograms expand into _count/_sum/_p50/
/// _p95/_p99 rows. This is what `SELECT * FROM system.metrics` and the bench
/// registry dumps consume.
struct MetricSample {
  std::string name;
  double value = 0;
};

/// Process-wide named-metric registry. Metric objects are never destroyed:
/// Get* returns a stable pointer callers may cache for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  /// Bounds are fixed at first registration; later callers get the existing
  /// histogram regardless of the bounds they pass.
  HistogramMetric* GetHistogram(const std::string& name) EXCLUDES(mu_);
  HistogramMetric* GetHistogram(const std::string& name,
                                std::vector<double> upper_bounds) EXCLUDES(mu_);

  /// Flattened snapshot of every metric, sorted by name.
  std::vector<MetricSample> Snapshot() const EXCLUDES(mu_);

  /// Prometheus text exposition format.
  std::string ExportPrometheus() const EXCLUDES(mu_);
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// p50, p95, p99, buckets: [[le, n], ...]}}}
  std::string ExportJson() const EXCLUDES(mu_);

  /// Zeroes every value but keeps (and never invalidates) metric pointers.
  void ResetForTest() EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_{lockrank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      GUARDED_BY(mu_);
};

/// Records elapsed wall micros into a histogram on destruction. The metrics
/// layer's replacement for ad-hoc common::Timer stat fields (lint rule
/// `adhoc-timer`).
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric* hist) : hist_(hist) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(ElapsedMicros());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  HistogramMetric* hist_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace blendhouse::common::metrics
