#pragma once

#include <string_view>

#include "common/status.h"

// Invariant-checking macro family.
//
//   BH_ASSERT(cond)            checked in every build; failure logs
//                              file:line + expression and aborts.
//   BH_ASSERT_MSG(cond, msg)   same, with an extra message.
//   BH_DCHECK(cond)            debug/sanitizer builds only (enabled when
//   BH_DCHECK_MSG(cond, msg)   NDEBUG is unset or BLENDHOUSE_DCHECKS is
//                              defined; the sanitizer presets define it).
//   BH_INVARIANT(cond, msg)    checked in every build; behavior is
//                              configurable at runtime: under
//                              InvariantPolicy::kAbort (default) it aborts,
//                              under kStatus it returns
//                              Status::Internal(msg) from the enclosing
//                              function — so it is only usable where a
//                              Status/Result is the return type. Servers
//                              flip to kStatus to fail one request instead
//                              of the process.

namespace blendhouse::common {

enum class InvariantPolicy {
  kAbort = 0,  // log + abort() — crash early, keep the core dump
  kStatus,     // log + surface Status::Internal to the caller
};

InvariantPolicy GetInvariantPolicy();
void SetInvariantPolicy(InvariantPolicy policy);

namespace internal {
[[noreturn]] void AssertFail(const char* file, int line, const char* expr,
                             std::string_view msg);
Status InvariantFailed(const char* file, int line, const char* expr,
                       std::string_view msg);
}  // namespace internal

}  // namespace blendhouse::common

#define BH_ASSERT_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond))                                                       \
      ::blendhouse::common::internal::AssertFail(__FILE__, __LINE__,   \
                                                 #cond, msg);          \
  } while (0)

#define BH_ASSERT(cond) BH_ASSERT_MSG(cond, "")

#if !defined(NDEBUG) || defined(BLENDHOUSE_DCHECKS)
#define BH_DCHECK(cond) BH_ASSERT(cond)
#define BH_DCHECK_MSG(cond, msg) BH_ASSERT_MSG(cond, msg)
#else
#define BH_DCHECK(cond) \
  do {                  \
  } while (false && (cond))
#define BH_DCHECK_MSG(cond, msg) BH_DCHECK(cond)
#endif

#define BH_INVARIANT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      if (::blendhouse::common::GetInvariantPolicy() ==                     \
          ::blendhouse::common::InvariantPolicy::kAbort)                    \
        ::blendhouse::common::internal::AssertFail(__FILE__, __LINE__,      \
                                                   #cond, msg);             \
      return ::blendhouse::common::internal::InvariantFailed(               \
          __FILE__, __LINE__, #cond, msg);                                  \
    }                                                                       \
  } while (0)
