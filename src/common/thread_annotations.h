#pragma once

// Clang thread-safety-analysis attribute macros (-Wthread-safety). Under
// Clang these make the locking discipline machine-checked at compile time;
// under other compilers they expand to nothing. Use them through
// common/mutex.h: the wrapper types there are the only lock primitives the
// lint pass (tools/lint.py) allows outside this directory.
//
// Conventions (see DESIGN.md "Concurrency invariants & verification"):
//   GUARDED_BY(mu)  on every member written under a lock
//   REQUIRES(mu)    on private *Locked() helpers called with the lock held
//   EXCLUDES(mu)    on public entry points that take the lock themselves

#if defined(__clang__) && !defined(SWIG)
#define BH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define BH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define CAPABILITY(x) BH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY BH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) BH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) BH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  BH_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) BH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) BH_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RETURN_CAPABILITY(x) BH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  BH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
