#pragma once

#include <chrono>
#include <cstdint>

namespace blendhouse::common {

/// Wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blendhouse::common
