#pragma once

#include <cstdint>
#include <random>

namespace blendhouse::common {

/// Deterministic PRNG wrapper. All workload generation in tests and benches
/// goes through Rng with an explicit seed so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal sample scaled by `stddev` around `mean`.
  float Gaussian(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace blendhouse::common
