#include "common/histogram.h"

#include <algorithm>

#include "common/assert.h"
#include <cmath>
#include <cstdio>
#include <numeric>

namespace blendhouse::common {

double Histogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  // Clamp: p > 100 used to compute hi == size() and read past the end, and
  // p < 0 wrapped the rank through the size_t cast.
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f",
                Count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

BucketedHistogram::BucketedHistogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  BH_DCHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i)
    BH_DCHECK(upper_bounds_[i - 1] < upper_bounds_[i]);
}

BucketedHistogram BucketedHistogram::FromParts(
    std::vector<double> upper_bounds, std::vector<uint64_t> counts,
    double sum) {
  BucketedHistogram h(std::move(upper_bounds));
  BH_DCHECK(counts.size() == h.counts_.size());
  h.counts_ = std::move(counts);
  h.count_ = std::accumulate(h.counts_.begin(), h.counts_.end(), uint64_t{0});
  h.sum_ = sum;
  return h;
}

void BucketedHistogram::Add(double v) {
  size_t idx = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v) -
      upper_bounds_.begin());
  ++counts_[idx];
  ++count_;
  sum_ += v;
}

double BucketedHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based); walk buckets until the cumulative
  // count covers it, then interpolate linearly within that bucket.
  double target = p / 100.0 * static_cast<double>(count_);
  if (target < 1.0) target = 1.0;
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    double lo_rank = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    // Overflow bucket has no finite upper edge; report the last bound.
    if (i >= upper_bounds_.size()) return upper_bounds_.back();
    double lo_edge = i == 0 ? 0.0 : upper_bounds_[i - 1];
    double hi_edge = upper_bounds_[i];
    double frac = (target - lo_rank) / static_cast<double>(counts_[i]);
    return lo_edge + (hi_edge - lo_edge) * frac;
  }
  return upper_bounds_.back();
}

Status BucketedHistogram::Merge(const BucketedHistogram& other) {
  if (upper_bounds_ != other.upper_bounds_) {
    return Status::InvalidArgument(
        "BucketedHistogram::Merge: mismatched bucket bounds");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  return Status::Ok();
}

void BucketedHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
}

std::string BucketedHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.4f p50=%.4f p95=%.4f p99=%.4f",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(95), Percentile(99));
  return buf;
}

}  // namespace blendhouse::common
