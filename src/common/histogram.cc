#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace blendhouse::common {

double Histogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f",
                Count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

}  // namespace blendhouse::common
