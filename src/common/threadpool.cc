#include "common/threadpool.h"

namespace blendhouse::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    MoveOnlyFn task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

}  // namespace blendhouse::common
