#include "common/threadpool.h"

namespace blendhouse::common {

ThreadPool::ThreadPool(size_t num_threads)
    : tasks_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_threadpool_tasks_total")),
      queue_depth_metric_(metrics::MetricsRegistry::Instance().GetGauge(
          "bh_threadpool_queue_depth")),
      queue_wait_metric_(metrics::MetricsRegistry::Instance().GetHistogram(
          "bh_threadpool_queue_wait_micros")) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
  // A Submit racing shutdown can enqueue after every worker thread observed
  // stop-and-empty and exited. Run the leftovers inline: completion
  // continuations (SearchSegmentAsync's `done`) must fire for every accepted
  // task or the dispatching query waits forever.
  for (;;) {
    MoveOnlyFn task;
    {
      MutexLock lock(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front().fn);
      queue_.pop_front();
      queue_depth_metric_->Sub(1);
    }
    BH_LOCK_RANK_ONLY(
        lockrank::AssertNoneHeld("ThreadPool shutdown inline drain"));
    task();
    tasks_total_metric_->Add(1);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    MoveOnlyFn task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      queue_wait_metric_->Record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - queue_.front().enqueue_time)
              .count());
      task = std::move(queue_.front().fn);
      queue_.pop_front();
      queue_depth_metric_->Sub(1);
      ++active_;
    }
    BH_LOCK_RANK_ONLY(lockrank::AssertNoneHeld("ThreadPool task"));
    task();
    tasks_total_metric_->Add(1);
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

}  // namespace blendhouse::common
