#include "common/threadpool.h"

#include "common/sharding.h"

namespace blendhouse::common {

namespace {

// Cheap per-worker PRNG for victim selection (xorshift64). Quality barely
// matters — any de-synchronization of the sweep order between thieves avoids
// the convoy where every starving worker hammers shard 0's lock in lockstep.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(num_threads, SchedulerShardingEnabled()) {}

ThreadPool::ThreadPool(size_t num_threads, bool sharded)
    // A 1-thread sharded pool would differ from single-queue mode only in
    // pop order (LIFO vs FIFO) with nobody to steal; keep the FIFO topology
    // there so ordering matches PR2 semantics exactly.
    : sharded_(sharded && num_threads > 1),
      tasks_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_threadpool_tasks_total")),
      steals_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_threadpool_steals_total")),
      queue_depth_metric_(metrics::MetricsRegistry::Instance().GetGauge(
          "bh_threadpool_queue_depth")),
      queue_wait_metric_(metrics::MetricsRegistry::Instance().GetHistogram(
          "bh_threadpool_queue_wait_micros")) {
  if (num_threads == 0) num_threads = 1;
  const size_t num_shards = sharded_ ? num_threads : 1;
  for (size_t i = 0; i < num_shards; ++i) shards_.emplace_back();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    MutexLock lock(sleep_mu_);
    sleep_cv_.NotifyAll();
  }
  for (auto& t : threads_) t.join();
  // A Submit racing shutdown can enqueue after every worker thread observed
  // stop-and-empty and exited. Run the leftovers inline: completion
  // continuations (SearchSegmentAsync's `done`) must fire for every accepted
  // task or the dispatching query waits forever.
  for (size_t i = 0; i < shards_.size(); ++i) {
    PoolShard& shard = shards_[i];
    for (;;) {
      MoveOnlyFn task;
      {
        MutexLock lock(shard.mu);
        if (shard.queue.empty()) break;
        task = std::move(shard.queue.front().fn);
        shard.queue.pop_front();
        queue_depth_metric_->Sub(1);
      }
      queued_.fetch_sub(1, std::memory_order_relaxed);
      BH_LOCK_RANK_ONLY(
          lockrank::AssertNoneHeld("ThreadPool shutdown inline drain"));
      task();
      tasks_total_metric_->Add(1);
      FinishOne();
    }
  }
}

void ThreadPool::WakeOneSleeper() {
  // seq_cst pairs with the parking worker's sleepers_++ / queued_ recheck:
  // either this load sees the sleeper (we take sleep_mu_ and notify) or the
  // sleeper's recheck sees our queued_ increment and refuses to sleep.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  MutexLock lock(sleep_mu_);
  sleep_cv_.NotifyOne();
}

void ThreadPool::FinishOne() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(sleep_mu_);
    idle_cv_.NotifyAll();
  }
}

bool ThreadPool::TryPop(size_t self, uint64_t* rng_state, MoveOnlyFn* out) {
  const auto now = std::chrono::steady_clock::now();
  {
    PoolShard& shard = shards_[self % shards_.size()];
    MutexLock lock(shard.mu);
    if (!shard.queue.empty()) {
      // LIFO from the own shard when sharded (the freshest task's state is
      // the warmest); plain FIFO in single-queue mode, matching PR2.
      auto& slot = sharded_ ? shard.queue.back() : shard.queue.front();
      queue_wait_metric_->Record(
          std::chrono::duration<double, std::micro>(now - slot.enqueue_time)
              .count());
      *out = std::move(slot.fn);
      if (sharded_) {
        shard.queue.pop_back();
      } else {
        shard.queue.pop_front();
      }
      queue_depth_metric_->Sub(1);
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (!sharded_) return false;
  // Steal sweep: randomized start, then sequential. Exactly one shard lock
  // is held at a time (we hold nothing of our own here), so sibling shard
  // mutexes — one shared rank — never nest; see lockrank::kThreadPoolShard.
  const size_t n = shards_.size();
  const size_t start = static_cast<size_t>(NextRand(rng_state) % n);
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (start + k) % n;
    if (v == self) continue;
    PoolShard& victim = shards_[v];
    MutexLock lock(victim.mu);
    if (victim.queue.empty()) continue;
    // FIFO steal: take the victim's oldest task, leaving its warm tail.
    auto& slot = victim.queue.front();
    queue_wait_metric_->Record(
        std::chrono::duration<double, std::micro>(now - slot.enqueue_time)
            .count());
    *out = std::move(slot.fn);
    victim.queue.pop_front();
    ++victim.steals;
    queue_depth_metric_->Sub(1);
    queued_.fetch_sub(1, std::memory_order_relaxed);
    steals_total_metric_->Add(1);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  uint64_t rng_state = 0x9E3779B97F4A7C15ull * (self + 1) | 1;
  for (;;) {
    MoveOnlyFn task;
    if (TryPop(self, &rng_state, &task)) {
      BH_LOCK_RANK_ONLY(lockrank::AssertNoneHeld("ThreadPool task"));
      task();
      tasks_total_metric_->Add(1);
      FinishOne();
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) return;
    // Park on the eventcount. Register as a sleeper first, then recheck
    // queued_ under sleep_mu_: a submitter either sees sleepers_ > 0 (and
    // notifies under the same mutex) or its queued_ bump is visible to this
    // recheck — a missed wakeup would need both seq_cst orders to invert.
    MutexLock lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (queued_.load(std::memory_order_seq_cst) == 0 &&
        !stop_.load(std::memory_order_seq_cst)) {
      sleep_cv_.Wait(sleep_mu_);
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Wait() {
  MutexLock lock(sleep_mu_);
  while (pending_.load(std::memory_order_acquire) != 0)
    idle_cv_.Wait(sleep_mu_);
}

uint64_t ThreadPool::steals_total() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const PoolShard& shard = shards_[i];
    MutexLock lock(shard.mu);
    total += shard.steals;
  }
  return total;
}

std::vector<size_t> ThreadPool::shard_queue_depths() const {
  std::vector<size_t> depths;
  depths.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const PoolShard& shard = shards_[i];
    MutexLock lock(shard.mu);
    depths.push_back(shard.queue.size());
  }
  return depths;
}

}  // namespace blendhouse::common
