#include "common/task_scheduler.h"

namespace blendhouse::common {

namespace {
using Clock = std::chrono::steady_clock;

thread_local DeferredChargeScope* g_charge_scope = nullptr;
}  // namespace

TaskScheduler::TaskScheduler(size_t num_threads)
    : tasks_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_scheduler_tasks_total")),
      queue_depth_metric_(metrics::MetricsRegistry::Instance().GetGauge(
          "bh_scheduler_queue_depth")),
      queue_wait_metric_(metrics::MetricsRegistry::Instance().GetHistogram(
          "bh_scheduler_queue_wait_micros")) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

TaskScheduler::~TaskScheduler() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void TaskScheduler::Schedule(MoveOnlyFn fn) {
  {
    MutexLock lock(mu_);
    ready_.push_back(ReadyTask{Clock::now(), std::move(fn)});
  }
  queue_depth_metric_->Add(1);
  cv_.NotifyOne();
}

void TaskScheduler::ScheduleAfter(uint64_t delay_micros, MoveOnlyFn fn) {
  if (delay_micros == 0) {
    Schedule(std::move(fn));
    return;
  }
  auto deadline = Clock::now() + std::chrono::microseconds(delay_micros);
  {
    MutexLock lock(mu_);
    delayed_.push(DelayedTask{deadline, next_seq_++,
                              std::make_shared<MoveOnlyFn>(std::move(fn))});
  }
  // All threads may be parked on a later deadline; wake one to re-arm.
  cv_.NotifyOne();
}

void TaskScheduler::WorkerLoop() {
  for (;;) {
    MoveOnlyFn task;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (stop_) return;
        auto now = Clock::now();
        // Promote every expired delayed task to the ready queue. Its queue
        // wait is measured from deadline, not submission: the delay itself is
        // simulated I/O, not scheduler contention.
        while (!delayed_.empty() && delayed_.top().deadline <= now) {
          ready_.push_back(
              ReadyTask{delayed_.top().deadline,
                        std::move(*delayed_.top().fn)});
          delayed_.pop();
          queue_depth_metric_->Add(1);
        }
        if (!ready_.empty()) break;
        if (delayed_.empty()) {
          cv_.Wait(mu_);
        } else {
          cv_.WaitUntil(mu_, delayed_.top().deadline);
        }
      }
      auto now = Clock::now();
      uint64_t wait =
          static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                    now - ready_.front().enqueue_time)
                                    .count());
      queue_wait_micros_ += wait;
      queue_wait_metric_->Record(static_cast<double>(wait));
      task = std::move(ready_.front().fn);
      ready_.pop_front();
      queue_depth_metric_->Sub(1);
      ++running_;
      // More ready work may remain (e.g. several delayed tasks expired at
      // once); pass the baton before dropping the lock.
      if (!ready_.empty()) cv_.NotifyOne();
    }
    BH_LOCK_RANK_ONLY(lockrank::AssertNoneHeld("TaskScheduler task"));
    task();
    tasks_total_metric_->Add(1);
    {
      MutexLock lock(mu_);
      --running_;
      ++tasks_executed_;
      if (ready_.empty() && delayed_.empty() && running_ == 0)
        idle_cv_.NotifyAll();
    }
  }
}

void TaskScheduler::Drain() {
  MutexLock lock(mu_);
  while (!ready_.empty() || !delayed_.empty() || running_ != 0) {
    if (!delayed_.empty()) {
      idle_cv_.WaitUntil(mu_, delayed_.top().deadline);
      cv_.NotifyOne();  // a worker must promote the expired task
    } else {
      idle_cv_.Wait(mu_);
    }
  }
}

uint64_t TaskScheduler::tasks_executed() const {
  MutexLock lock(mu_);
  return tasks_executed_;
}

uint64_t TaskScheduler::queue_wait_micros() const {
  MutexLock lock(mu_);
  return queue_wait_micros_;
}

DeferredChargeScope::DeferredChargeScope() : prev_(g_charge_scope) {
  g_charge_scope = this;
}

DeferredChargeScope::~DeferredChargeScope() { g_charge_scope = prev_; }

void ChargeSimLatency(uint64_t micros) {
  if (micros == 0) return;
  if (g_charge_scope != nullptr) {
    g_charge_scope->accumulated_ += micros;
    return;
  }
  // Sync caller: block for the full duration. A private Mutex/CondVar pair
  // waited on with a deadline is the sanctioned stand-in for sleep_for (no
  // one ever notifies, so WaitUntil returns exactly at deadline).
  Mutex mu{lockrank::kSimWait};
  CondVar cv;
  auto deadline = Clock::now() + std::chrono::microseconds(micros);
  MutexLock lock(mu);
  while (Clock::now() < deadline) cv.WaitUntil(mu, deadline);
}

bool SimChargeDeferred() { return g_charge_scope != nullptr; }

}  // namespace blendhouse::common
