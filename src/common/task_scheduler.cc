#include "common/task_scheduler.h"

#include <algorithm>

namespace blendhouse::common {

namespace {
using Clock = std::chrono::steady_clock;

thread_local DeferredChargeScope* g_charge_scope = nullptr;

// xorshift64 for randomized victim selection (see threadpool.cc).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

TaskScheduler::TaskScheduler(size_t num_threads)
    : TaskScheduler(num_threads, SchedulerShardingEnabled()) {}

TaskScheduler::TaskScheduler(size_t num_threads, bool sharded)
    // A 1-thread sharded scheduler would be a single shard with no one to
    // steal from it; keep the single-queue topology there.
    : sharded_(sharded && num_threads > 1),
      tasks_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_scheduler_tasks_total")),
      steals_total_metric_(metrics::MetricsRegistry::Instance().GetCounter(
          "bh_scheduler_steals_total")),
      queue_depth_metric_(metrics::MetricsRegistry::Instance().GetGauge(
          "bh_scheduler_queue_depth")),
      queue_wait_metric_(metrics::MetricsRegistry::Instance().GetHistogram(
          "bh_scheduler_queue_wait_micros")) {
  if (num_threads == 0) num_threads = 1;
  const size_t num_shards = sharded_ ? num_threads : 1;
  for (size_t i = 0; i < num_shards; ++i) shards_.emplace_back();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

TaskScheduler::~TaskScheduler() {
  // Threads exit immediately on stop, dropping still-queued tasks — safe
  // because every scheduler owner (VirtualWarehouse) drains in-flight
  // queries before destruction; see virtual_warehouse.h.
  stop_.store(true, std::memory_order_seq_cst);
  {
    MutexLock lock(sleep_mu_);
    sleep_cv_.NotifyAll();
  }
  for (auto& t : threads_) t.join();
}

size_t TaskScheduler::Schedule(MoveOnlyFn fn, size_t affinity) {
  const size_t idx = ShardFor(affinity);
  SchedulerShard& shard = shards_[idx];
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  ready_total_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(shard.mu);
    shard.ready.push_back(ReadyTask{Clock::now(), std::move(fn)});
    // Under the lock (not after): a worker could otherwise pop and Sub(1)
    // before this Add(1), leaving the gauge transiently negative.
    queue_depth_metric_->Add(1);
  }
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Any thread can run ready work: waking one sleeper suffices.
  WakeSleepers(/*all=*/false);
  return idx;
}

size_t TaskScheduler::ScheduleAfter(uint64_t delay_micros, MoveOnlyFn fn,
                                    size_t affinity) {
  if (delay_micros == 0) return Schedule(std::move(fn), affinity);
  const auto deadline = Clock::now() + std::chrono::microseconds(delay_micros);
  const size_t idx = ShardFor(affinity);
  SchedulerShard& shard = shards_[idx];
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(shard.mu);
    shard.delayed.push_back(
        DelayedTask{deadline, shard.next_seq++, std::move(fn)});
    std::push_heap(shard.delayed.begin(), shard.delayed.end(), Later);
  }
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Only shard `idx`'s owner can promote this deadline, and NotifyOne could
  // deliver the wakeup to a thief that finds nothing ready and re-parks
  // untimed — wake everyone so the owner re-arms its timed wait.
  WakeSleepers(/*all=*/true);
  return idx;
}

void TaskScheduler::WakeSleepers(bool all) {
  // seq_cst pairs with the parker's sleepers_++ / epoch recheck: either this
  // load sees the sleeper, or the sleeper's recheck sees our epoch bump.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  MutexLock lock(sleep_mu_);
  if (all) {
    sleep_cv_.NotifyAll();
  } else {
    sleep_cv_.NotifyOne();
  }
}

void TaskScheduler::FinishOne() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(sleep_mu_);
    idle_cv_.NotifyAll();
  }
}

void TaskScheduler::PopReadyLocked(SchedulerShard& shard,
                                   Clock::time_point now, MoveOnlyFn* out) {
  const uint64_t wait = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          now - shard.ready.front().enqueue_time)
          .count());
  queue_wait_micros_.fetch_add(wait, std::memory_order_relaxed);
  queue_wait_metric_->Record(static_cast<double>(wait));
  *out = std::move(shard.ready.front().fn);
  shard.ready.pop_front();
  queue_depth_metric_->Sub(1);
  ready_total_.fetch_sub(1, std::memory_order_relaxed);
}

bool TaskScheduler::TryAcquire(size_t self, uint64_t* rng_state,
                               MoveOnlyFn* out) {
  const auto now = Clock::now();
  {
    SchedulerShard& shard = shards_[self % shards_.size()];
    MutexLock lock(shard.mu);
    // Owner-side deadline service: promote every expired delayed task onto
    // the ready deque. Its queue wait is measured from deadline, not
    // submission: the delay itself is simulated I/O, not scheduler
    // contention. pop_heap moves the earliest entry to the back, where its
    // fn is moved out directly.
    while (!shard.delayed.empty() && shard.delayed.front().deadline <= now) {
      std::pop_heap(shard.delayed.begin(), shard.delayed.end(), Later);
      shard.ready.push_back(ReadyTask{shard.delayed.back().deadline,
                                      std::move(shard.delayed.back().fn)});
      shard.delayed.pop_back();
      queue_depth_metric_->Add(1);
      ready_total_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!shard.ready.empty()) {
      PopReadyLocked(shard, now, out);
      return true;
    }
  }
  if (!sharded_) return false;
  // Ready-only steal sweep: randomized start, one victim lock at a time (we
  // hold nothing of our own here), so sibling shard mutexes — one shared
  // rank — never nest; see lockrank::kSchedulerShard. Delayed tasks are
  // never stolen: the owner's timed park covers them.
  const size_t n = shards_.size();
  const size_t start = static_cast<size_t>(NextRand(rng_state) % n);
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (start + k) % n;
    if (v == self) continue;
    SchedulerShard& victim = shards_[v];
    MutexLock lock(victim.mu);
    if (victim.ready.empty()) continue;
    PopReadyLocked(victim, now, out);
    ++victim.steals;
    steals_total_metric_->Add(1);
    return true;
  }
  return false;
}

void TaskScheduler::WorkerLoop(size_t self) {
  uint64_t rng_state = 0xD1B54A32D192ED03ull * (self + 1) | 1;
  for (;;) {
    // Sample before scanning: any publish between this and the park's
    // recheck aborts the sleep and forces a rescan.
    const uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_seq_cst)) return;
    MoveOnlyFn task;
    if (TryAcquire(self, &rng_state, &task)) {
      // More ready work may remain (several deadlines expired at once, or a
      // burst landed on one shard); pass the baton before running.
      if (ready_total_.load(std::memory_order_relaxed) > 0)
        WakeSleepers(/*all=*/false);
      BH_LOCK_RANK_ONLY(lockrank::AssertNoneHeld("TaskScheduler task"));
      task();
      tasks_total_metric_->Add(1);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      FinishOne();
      continue;
    }
    // Park. An owner with pending deadlines arms a timed wait on its own
    // earliest deadline; everyone else waits untimed for an epoch bump.
    bool has_deadline = false;
    Clock::time_point next_deadline{};
    {
      SchedulerShard& own = shards_[self % shards_.size()];
      MutexLock lock(own.mu);
      if (!own.delayed.empty()) {
        has_deadline = true;
        next_deadline = own.delayed.front().deadline;
      }
    }
    MutexLock lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (wake_epoch_.load(std::memory_order_seq_cst) == epoch &&
        !stop_.load(std::memory_order_seq_cst)) {
      if (has_deadline) {
        sleep_cv_.WaitUntil(sleep_mu_, next_deadline);
      } else {
        sleep_cv_.Wait(sleep_mu_);
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TaskScheduler::Drain() {
  // Workers are self-sufficient: every shard's delayed tasks are covered by
  // its owner's timed park, so waiting on the idle eventcount suffices.
  MutexLock lock(sleep_mu_);
  while (outstanding_.load(std::memory_order_acquire) != 0)
    idle_cv_.Wait(sleep_mu_);
}

uint64_t TaskScheduler::steals_total() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const SchedulerShard& shard = shards_[i];
    MutexLock lock(shard.mu);
    total += shard.steals;
  }
  return total;
}

DeferredChargeScope::DeferredChargeScope() : prev_(g_charge_scope) {
  g_charge_scope = this;
}

DeferredChargeScope::~DeferredChargeScope() { g_charge_scope = prev_; }

void ChargeSimLatency(uint64_t micros) {
  if (micros == 0) return;
  if (g_charge_scope != nullptr) {
    g_charge_scope->accumulated_ += micros;
    return;
  }
  // Sync caller: block for the full duration. A private Mutex/CondVar pair
  // waited on with a deadline is the sanctioned stand-in for sleep_for (no
  // one ever notifies, so WaitUntil returns exactly at deadline).
  Mutex mu{lockrank::kSimWait};
  CondVar cv;
  auto deadline = Clock::now() + std::chrono::microseconds(micros);
  MutexLock lock(mu);
  while (Clock::now() < deadline) cv.WaitUntil(mu, deadline);
}

bool SimChargeDeferred() { return g_charge_scope != nullptr; }

}  // namespace blendhouse::common
