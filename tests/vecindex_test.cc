#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <unordered_set>

#include "tests/test_util.h"
#include "vecindex/auto_index.h"
#include "vecindex/generic_iterator.h"
#include "vecindex/diskann_index.h"
#include "vecindex/distance.h"
#include "vecindex/flat_index.h"
#include "vecindex/hnsw_index.h"
#include "vecindex/index_factory.h"
#include "vecindex/ivf_index.h"
#include "vecindex/kmeans.h"
#include "vecindex/pq.h"
#include "vecindex/quantizer.h"

namespace blendhouse::vecindex {
namespace {

using test::BruteForceTopK;
using test::MakeClusteredVectors;
using test::Recall;
using test::SequentialIds;

constexpr size_t kDim = 32;
constexpr size_t kN = 2000;

// ---------------------------------------------------------------------------
// Distance kernels
// ---------------------------------------------------------------------------

TEST(DistanceTest, L2SqrMatchesManual) {
  float a[4] = {1, 2, 3, 4};
  float b[4] = {2, 2, 1, 0};
  EXPECT_FLOAT_EQ(L2Sqr(a, b, 4), 1 + 0 + 4 + 16);
}

TEST(DistanceTest, InnerProduct) {
  float a[3] = {1, 2, 3};
  float b[3] = {4, 5, 6};
  EXPECT_FLOAT_EQ(InnerProduct(a, b, 3), 32.0f);
  // Metric dispatch negates IP so smaller = closer.
  EXPECT_FLOAT_EQ(Distance(Metric::kInnerProduct, a, b, 3), -32.0f);
}

TEST(DistanceTest, CosineOfParallelVectorsIsZero) {
  float a[3] = {1, 2, 3};
  float b[3] = {2, 4, 6};
  EXPECT_NEAR(CosineDistance(a, b, 3), 0.0f, 1e-6f);
}

TEST(DistanceTest, CosineOfOrthogonalIsOne) {
  float a[2] = {1, 0};
  float b[2] = {0, 1};
  EXPECT_NEAR(CosineDistance(a, b, 2), 1.0f, 1e-6f);
}

TEST(DistanceTest, ZeroVectorCosineIsSafe) {
  float a[2] = {0, 0};
  float b[2] = {1, 1};
  EXPECT_FLOAT_EQ(CosineDistance(a, b, 2), 1.0f);
}

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  // Three far-apart blobs; k-means must place one centroid near each.
  common::Rng rng(7);
  std::vector<float> data;
  std::vector<float> centers = {0, 0, 10, 10, -10, 10};
  for (size_t i = 0; i < 300; ++i) {
    size_t c = i % 3;
    data.push_back(centers[c * 2] + rng.Gaussian(0, 0.2f));
    data.push_back(centers[c * 2 + 1] + rng.Gaussian(0, 0.2f));
  }
  KMeansOptions opts;
  opts.k = 3;
  auto result = RunKMeans(data.data(), 300, 2, opts);
  ASSERT_TRUE(result.ok());
  // Every true center must be within 1.0 of some learned centroid.
  for (size_t c = 0; c < 3; ++c) {
    float best = 1e30f;
    for (size_t j = 0; j < 3; ++j)
      best = std::min(best, L2Sqr(&centers[c * 2],
                                  result->centroids.data() + j * 2, 2));
    EXPECT_LT(best, 1.0f);
  }
}

TEST(KMeansTest, AssignmentsConsistentWithCentroids) {
  auto data = MakeClusteredVectors(500, 8, 4, 11);
  KMeansOptions opts;
  opts.k = 4;
  auto result = RunKMeans(data.data(), 500, 8, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 500; ++i) {
    size_t nearest =
        NearestCentroid(data.data() + i * 8, result->centroids.data(), 4, 8);
    EXPECT_EQ(nearest, result->assignments[i]);
  }
}

TEST(KMeansTest, KLargerThanNIsClamped) {
  std::vector<float> data = {0, 0, 1, 1};
  KMeansOptions opts;
  opts.k = 10;
  auto result = RunKMeans(data.data(), 2, 2, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 2u * 2u);
}

TEST(KMeansTest, EmptyInputRejected) {
  KMeansOptions opts;
  auto result = RunKMeans(nullptr, 0, 8, opts);
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Quantizers
// ---------------------------------------------------------------------------

TEST(ScalarQuantizerTest, RoundTripErrorBounded) {
  auto data = MakeClusteredVectors(200, kDim, 4, 3);
  ScalarQuantizer sq;
  ASSERT_TRUE(sq.Train(data.data(), 200, kDim).ok());
  std::vector<uint8_t> code(kDim);
  std::vector<float> decoded(kDim);
  for (size_t i = 0; i < 200; ++i) {
    sq.Encode(data.data() + i * kDim, code.data());
    sq.Decode(code.data(), decoded.data());
    // Max error per dim is half a quantization step of the dim's range.
    float err = L2Sqr(data.data() + i * kDim, decoded.data(), kDim);
    EXPECT_LT(err, 0.01f * kDim);
  }
}

TEST(ScalarQuantizerTest, AsymmetricDistanceMatchesDecode) {
  auto data = MakeClusteredVectors(50, kDim, 2, 5);
  ScalarQuantizer sq;
  ASSERT_TRUE(sq.Train(data.data(), 50, kDim).ok());
  std::vector<uint8_t> code(kDim);
  std::vector<float> decoded(kDim);
  const float* query = data.data();
  sq.Encode(data.data() + 10 * kDim, code.data());
  sq.Decode(code.data(), decoded.data());
  EXPECT_NEAR(sq.L2SqrToCode(query, code.data()),
              L2Sqr(query, decoded.data(), kDim), 1e-3f);
}

TEST(ScalarQuantizerTest, SerializationRoundTrip) {
  auto data = MakeClusteredVectors(100, 16, 4, 9);
  ScalarQuantizer sq;
  ASSERT_TRUE(sq.Train(data.data(), 100, 16).ok());
  std::string buf;
  common::BinaryWriter w(&buf);
  sq.Serialize(&w);
  ScalarQuantizer sq2;
  common::BinaryReader r(buf);
  ASSERT_TRUE(sq2.Deserialize(&r).ok());
  std::vector<uint8_t> c1(16), c2(16);
  sq.Encode(data.data(), c1.data());
  sq2.Encode(data.data(), c2.data());
  EXPECT_EQ(c1, c2);
}

TEST(ScalarQuantizerTest, EncodeClampsAtRangeBoundaries) {
  // Regression: rounding (v - min) / step could land on 256 for values at or
  // past the trained max, wrapping the uint8 code to 0 — the far end of the
  // range. Out-of-range values must saturate at 0 / 255 instead.
  std::vector<float> data(2 * 4);
  for (size_t d = 0; d < 4; ++d) {
    data[d] = 0.0f;      // trained min
    data[4 + d] = 1.0f;  // trained max
  }
  ScalarQuantizer sq;
  ASSERT_TRUE(sq.Train(data.data(), 2, 4).ok());
  std::vector<uint8_t> code(4);
  float above[4] = {2.0f, 1.5f, 1.001f, 100.0f};
  sq.Encode(above, code.data());
  for (size_t d = 0; d < 4; ++d) EXPECT_EQ(code[d], 255) << "dim " << d;
  float below[4] = {-2.0f, -0.5f, -0.001f, -100.0f};
  sq.Encode(below, code.data());
  for (size_t d = 0; d < 4; ++d) EXPECT_EQ(code[d], 0) << "dim " << d;
  // Exactly at the trained max must be the end code, not a wrap.
  sq.Encode(data.data() + 4, code.data());
  for (size_t d = 0; d < 4; ++d) EXPECT_EQ(code[d], 255) << "dim " << d;
}

// ---------------------------------------------------------------------------
// PrecisionStore (reduced-precision first-pass tier, DESIGN.md §13)
// ---------------------------------------------------------------------------

class PrecisionStoreTest : public ::testing::TestWithParam<Precision> {
 protected:
  /// fp16/bf16 codes decode to exact fp32 values, so store distances match
  /// the decoded reference up to accumulation order. int8 batch kernels
  /// quantize the query onto the shared grid (step s = maxabs/127) while
  /// the decoded reference keeps it fp32, so the allowance is the
  /// first-order grid error of each metric's accumulation.
  static float Tol(Precision p, Metric m, float ref, float maxabs,
                   size_t dim) {
    if (p != Precision::kInt8) return 1e-3f * std::max(1.0f, std::fabs(ref));
    float s = maxabs / 127.0f;
    float fdim = static_cast<float>(dim);
    switch (m) {
      case Metric::kL2:  // sum of 2*(q-b)*delta terms, |delta| <= s
        return 2.0f * s * std::sqrt(fdim * std::max(ref, 1.0f)) +
               fdim * s * s;
      case Metric::kInnerProduct:  // sum of |b| * qstep terms
        return s * maxabs * fdim;
      default:  // cosine: normalized, the grid error shrinks with the norms
        return 0.01f;
    }
  }
};

TEST_P(PrecisionStoreTest, DistancesMatchDecodedReference) {
  constexpr size_t kRows = 300;  // straddles the kMaxBatch boundary
  auto data = MakeClusteredVectors(kRows, kDim, 6, 29);
  float maxabs = 0.0f;
  for (float x : data) maxabs = std::max(maxabs, std::fabs(x));
  for (Metric metric : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    PrecisionStore store;
    store.Configure(GetParam(), kDim, metric);
    store.Train(data.data(), kRows);
    store.Append(data.data(), kRows);
    ASSERT_EQ(store.size(), kRows);
    const float* query = data.data() + 7 * kDim;
    PrecisionStore::QueryCtx ctx;
    store.PrepareQuery(query, &ctx);
    std::vector<float> dist(kRows);
    store.BatchDistance(ctx, 0, PrecisionStore::kMaxBatch, dist.data());
    store.BatchDistance(ctx, PrecisionStore::kMaxBatch,
                        kRows - PrecisionStore::kMaxBatch,
                        dist.data() + PrecisionStore::kMaxBatch);
    std::vector<float> decoded(kDim);
    for (size_t i = 0; i < kRows; ++i) {
      store.Decode(i, decoded.data());
      float ref = Distance(metric, query, decoded.data(), kDim);
      float tol = Tol(GetParam(), metric, ref, maxabs, kDim);
      EXPECT_NEAR(dist[i], ref, tol)
          << PrecisionName(GetParam()) << " metric=" << static_cast<int>(metric)
          << " row=" << i;
      EXPECT_NEAR(store.Distance1(ctx, i), dist[i], tol) << "row " << i;
      EXPECT_NEAR(store.DistanceToRow(query, i), dist[i], tol) << "row " << i;
    }
  }
}

TEST_P(PrecisionStoreTest, GatheredTileMatchesInPlaceScan) {
  constexpr size_t kRows = 120;
  auto data = MakeClusteredVectors(kRows, kDim, 4, 31);
  for (Metric metric : {Metric::kL2, Metric::kCosine}) {
    PrecisionStore store;
    store.Configure(GetParam(), kDim, metric);
    store.Train(data.data(), kRows);
    store.Append(data.data(), kRows);
    PrecisionStore::QueryCtx ctx;
    store.PrepareQuery(data.data(), &ctx);
    // Gather every third row into a dense tile, the filtered-scan shape.
    std::vector<size_t> rows;
    for (size_t i = 0; i < kRows; i += 3) rows.push_back(i);
    const size_t rb = store.row_bytes();
    std::vector<uint8_t> tile(rows.size() * rb);
    std::vector<float> norms(rows.size(), 0.0f);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::memcpy(tile.data() + i * rb, store.RowPtr(rows[i]), rb);
      if (metric == Metric::kCosine) norms[i] = store.norms()[rows[i]];
    }
    std::vector<float> got(rows.size());
    store.BatchDistanceCodes(ctx, tile.data(), norms.data(), rows.size(),
                             got.data());
    std::vector<float> all(kRows);
    store.BatchDistance(ctx, 0, kRows, all.data());
    for (size_t i = 0; i < rows.size(); ++i)
      EXPECT_FLOAT_EQ(got[i], all[rows[i]]) << "tile slot " << i;
  }
}

TEST_P(PrecisionStoreTest, SerializationPreservesDistances) {
  auto data = MakeClusteredVectors(100, kDim, 4, 33);
  PrecisionStore store;
  store.Configure(GetParam(), kDim, Metric::kCosine);
  store.Train(data.data(), 100);
  store.Append(data.data(), 100);
  std::string buf;
  common::BinaryWriter w(&buf);
  store.Serialize(&w);
  PrecisionStore loaded;
  common::BinaryReader r(buf);
  ASSERT_TRUE(loaded.Deserialize(&r).ok());
  EXPECT_EQ(loaded.precision(), store.precision());
  EXPECT_EQ(loaded.dim(), store.dim());
  EXPECT_EQ(loaded.size(), store.size());
  PrecisionStore::QueryCtx c1, c2;
  store.PrepareQuery(data.data(), &c1);
  loaded.PrepareQuery(data.data(), &c2);
  std::vector<float> d1(100), d2(100);
  store.BatchDistance(c1, 0, 100, d1.data());
  loaded.BatchDistance(c2, 0, 100, d2.data());
  // Identical codes + scale + norms: distances must be bitwise equal.
  EXPECT_EQ(0, std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)));
}

TEST_P(PrecisionStoreTest, MemoryStaysBelowFp32Footprint) {
  constexpr size_t kRows = 512;
  auto data = MakeClusteredVectors(kRows, kDim, 4, 35);
  PrecisionStore store;
  store.Configure(GetParam(), kDim, Metric::kL2);
  store.Train(data.data(), kRows);
  store.Append(data.data(), kRows);
  size_t fp32_bytes = kRows * kDim * sizeof(float);
  double limit = GetParam() == Precision::kInt8 ? 0.3 : 0.55;
  EXPECT_LE(store.MemoryBytes(), static_cast<size_t>(limit * fp32_bytes));
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, PrecisionStoreTest,
                         ::testing::Values(Precision::kFp16, Precision::kBf16,
                                           Precision::kInt8),
                         [](const auto& info) {
                           return PrecisionName(info.param);
                         });

TEST(ProductQuantizerTest, AdcApproximatesTrueDistance) {
  auto data = MakeClusteredVectors(1000, kDim, 8, 13);
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data.data(), 1000, kDim, 8, 8).ok());
  std::vector<uint8_t> code(pq.code_size());
  std::vector<float> table(pq.m() * pq.ks());
  const float* query = data.data();
  pq.BuildAdcTable(query, table.data());

  // ADC distance should correlate strongly with true distance: check that
  // the ADC-nearest of two far-apart points is the truly nearer one.
  double rank_agree = 0, trials = 0;
  for (size_t i = 100; i < 200; ++i) {
    for (size_t j = 500; j < 520; ++j) {
      float true_i = L2Sqr(query, data.data() + i * kDim, kDim);
      float true_j = L2Sqr(query, data.data() + j * kDim, kDim);
      if (std::abs(true_i - true_j) < 1.0f) continue;  // too close to call
      pq.Encode(data.data() + i * kDim, code.data());
      float adc_i = pq.AdcDistance(table.data(), code.data());
      pq.Encode(data.data() + j * kDim, code.data());
      float adc_j = pq.AdcDistance(table.data(), code.data());
      rank_agree += ((adc_i < adc_j) == (true_i < true_j)) ? 1 : 0;
      trials += 1;
    }
  }
  ASSERT_GT(trials, 100);
  EXPECT_GT(rank_agree / trials, 0.9);
}

TEST(ProductQuantizerTest, DimNotDivisibleRejected) {
  ProductQuantizer pq;
  std::vector<float> data(10 * 30);
  EXPECT_FALSE(pq.Train(data.data(), 10, 30, 8, 8).ok());
}

TEST(ProductQuantizerTest, FourBitCodebookSize) {
  auto data = MakeClusteredVectors(500, kDim, 4, 17);
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data.data(), 500, kDim, 8, 4).ok());
  EXPECT_EQ(pq.ks(), 16u);
}

// ---------------------------------------------------------------------------
// Index correctness, shared across all index types (TEST_P sweep)
// ---------------------------------------------------------------------------

VectorIndexPtr MakeIndex(const std::string& type, size_t dim) {
  IndexSpec spec;
  // "TYPE:precision" selects reduced-precision storage (DESIGN.md §13),
  // e.g. "FLAT:int8" — exercises the same factory path as the PRECISION
  // index param in SQL.
  std::string name = type;
  if (auto colon = name.find(':'); colon != std::string::npos) {
    spec.params["PRECISION"] = name.substr(colon + 1);
    name.resize(colon);
  }
  spec.type = name;
  spec.dim = dim;
  spec.params["NLIST"] = "16";
  spec.params["PQ_M"] = "8";
  spec.params["SIMULATE_DISK"] = "0";  // unit tests skip SSD sleeps
  auto created = IndexFactory::Global().Create(spec);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(*created);
}

class IndexParamTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    data_ = MakeClusteredVectors(kN, kDim, 10, 21);
    ids_ = SequentialIds(kN);
    index_ = MakeIndex(GetParam(), kDim);
    ASSERT_NE(index_, nullptr);
    if (index_->NeedsTraining()) {
      ASSERT_TRUE(index_->Train(data_.data(), kN).ok());
    }
    ASSERT_TRUE(index_->AddWithIds(data_.data(), ids_.data(), kN).ok());
  }

  SearchParams DefaultParams() const {
    SearchParams p;
    p.k = 10;
    p.ef_search = 128;
    p.nprobe = 8;
    return p;
  }

  std::vector<float> data_;
  std::vector<IdType> ids_;
  VectorIndexPtr index_;
};

TEST_P(IndexParamTest, SizeAndDim) {
  EXPECT_EQ(index_->Size(), kN);
  EXPECT_EQ(index_->Dim(), kDim);
  EXPECT_GT(index_->MemoryUsage(), 0u);
}

TEST_P(IndexParamTest, TopKRecallAboveThreshold) {
  double total_recall = 0;
  const int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    const float* query = data_.data() + (q * 97 % kN) * kDim;
    auto truth = BruteForceTopK(data_, kDim, query, 10);
    auto found = index_->SearchWithFilter(query, DefaultParams());
    ASSERT_TRUE(found.ok());
    total_recall += Recall(*found, truth);
  }
  // Quantized indexes trade recall; all should stay well above chance.
  double threshold = GetParam() == "IVFPQFS" ? 0.6 : 0.8;
  EXPECT_GT(total_recall / kQueries, threshold) << GetParam();
}

TEST_P(IndexParamTest, ResultsSortedByDistance) {
  auto found = index_->SearchWithFilter(data_.data(), DefaultParams());
  ASSERT_TRUE(found.ok());
  for (size_t i = 1; i < found->size(); ++i)
    EXPECT_LE((*found)[i - 1].distance, (*found)[i].distance);
}

TEST_P(IndexParamTest, SelfQueryFindsSelf) {
  if (GetParam() == "IVFPQFS" || GetParam() == "IVFPQ") return;  // approx codes
  // DISKANN re-ranks expanded nodes exactly, so self-query works too.
  const float* query = data_.data() + 123 * kDim;
  auto found = index_->SearchWithFilter(query, DefaultParams());
  ASSERT_TRUE(found.ok());
  ASSERT_FALSE(found->empty());
  EXPECT_EQ(found->front().id, 123);
}

TEST_P(IndexParamTest, FilterIsRespected) {
  common::Bitset allowed(kN);
  for (size_t i = 0; i < kN; i += 7) allowed.Set(i);  // ~14% selectivity
  SearchParams p = DefaultParams();
  p.filter = &allowed;
  auto found = index_->SearchWithFilter(data_.data(), p);
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(found->empty());
  for (const auto& n : *found)
    EXPECT_TRUE(allowed.Test(static_cast<size_t>(n.id))) << n.id;
}

TEST_P(IndexParamTest, EmptyFilterYieldsNothing) {
  common::Bitset none(kN);
  SearchParams p = DefaultParams();
  p.filter = &none;
  auto found = index_->SearchWithFilter(data_.data(), p);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
}

TEST_P(IndexParamTest, InvalidKRejected) {
  SearchParams p = DefaultParams();
  p.k = 0;
  auto found = index_->SearchWithFilter(data_.data(), p);
  EXPECT_FALSE(found.ok());
}

TEST_P(IndexParamTest, SaveLoadPreservesResults) {
  std::string bytes;
  ASSERT_TRUE(index_->Save(&bytes).ok());
  IndexSpec spec;
  spec.dim = kDim;
  auto loaded = IndexFactory::Global().CreateFromSaved(spec, bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Size(), index_->Size());
  EXPECT_EQ((*loaded)->Type(), index_->Type());

  const float* query = data_.data() + 55 * kDim;
  auto before = index_->SearchWithFilter(query, DefaultParams());
  auto after = (*loaded)->SearchWithFilter(query, DefaultParams());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i)
    EXPECT_EQ((*before)[i].id, (*after)[i].id);
}

TEST_P(IndexParamTest, CorruptLoadFailsCleanly) {
  std::string bytes;
  ASSERT_TRUE(index_->Save(&bytes).ok());
  bytes.resize(bytes.size() / 2);
  auto fresh = MakeIndex(GetParam(), kDim);
  EXPECT_FALSE(fresh->Load(bytes).ok());
}

TEST_P(IndexParamTest, IteratorYieldsIncreasingDistancesNoDuplicates) {
  auto iter_result = index_->MakeIterator(data_.data(), DefaultParams());
  ASSERT_TRUE(iter_result.ok());
  auto iter = std::move(*iter_result);
  std::unordered_set<IdType> seen;
  size_t total = 0;
  for (int round = 0; round < 5; ++round) {
    auto batch = iter->Next(20);
    if (batch.empty()) break;
    for (const auto& n : batch) {
      EXPECT_TRUE(seen.insert(n.id).second) << "duplicate id " << n.id;
    }
    total += batch.size();
  }
  EXPECT_GT(total, 0u);
}

TEST_P(IndexParamTest, IteratorEarlyBatchesAreNear) {
  // The first iterator batch should contain most of the true top-10.
  const float* query = data_.data() + 321 * kDim;
  auto truth = BruteForceTopK(data_, kDim, query, 10);
  auto iter_result = index_->MakeIterator(query, DefaultParams());
  ASSERT_TRUE(iter_result.ok());
  auto batch = (*iter_result)->Next(30);
  double r = Recall(batch, truth);
  EXPECT_GT(r, GetParam() == "IVFPQFS" ? 0.4 : 0.6);
}

TEST_P(IndexParamTest, RangeSearchHonorsRadius) {
  const float* query = data_.data() + 11 * kDim;
  auto top = index_->SearchWithFilter(query, DefaultParams());
  ASSERT_TRUE(top.ok());
  ASSERT_GE(top->size(), 5u);
  float radius = (*top)[4].distance;  // radius covering ~5 results
  auto in_range = index_->SearchWithRange(query, radius, DefaultParams());
  ASSERT_TRUE(in_range.ok());
  for (const auto& n : *in_range) EXPECT_LE(n.distance, radius);
  EXPECT_GE(in_range->size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllIndexTypes, IndexParamTest,
                         ::testing::Values("FLAT", "HNSW", "HNSWSQ", "IVFFLAT",
                                           "IVFPQ", "IVFPQFS", "DISKANN",
                                           "FLAT:fp16", "FLAT:bf16",
                                           "FLAT:int8", "HNSW:fp16",
                                           "HNSW:int8", "IVFFLAT:fp16",
                                           "IVFFLAT:int8"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == ':') c = '_';
                           return name;
                         });

// ---------------------------------------------------------------------------
// Index-specific behaviours
// ---------------------------------------------------------------------------

TEST(FlatIndexTest, ExactlyMatchesBruteForce) {
  auto data = MakeClusteredVectors(500, 16, 4, 31);
  FlatIndex index(16, Metric::kL2);
  auto ids = SequentialIds(500);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 500).ok());
  SearchParams p;
  p.k = 20;
  for (int q = 0; q < 5; ++q) {
    const float* query = data.data() + q * 31 * 16;
    auto truth = BruteForceTopK(data, 16, query, 20);
    auto found = index.SearchWithFilter(query, p);
    ASSERT_TRUE(found.ok());
    EXPECT_DOUBLE_EQ(Recall(*found, truth), 1.0);
  }
}

// Reference for the filter-aware scan paths: exact top-k over only the
// allowed rows.
std::vector<IdType> BruteForceTopKFiltered(const std::vector<float>& data,
                                           size_t dim, const float* query,
                                           size_t k,
                                           const common::Bitset& allowed,
                                           Metric metric = Metric::kL2) {
  std::vector<Neighbor> all;
  for (size_t i = 0; i < data.size() / dim; ++i) {
    if (!allowed.Test(i)) continue;
    all.push_back({static_cast<IdType>(i),
                   Distance(metric, query, data.data() + i * dim, dim)});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  std::vector<IdType> ids(k);
  for (size_t i = 0; i < k; ++i) ids[i] = all[i].id;
  return ids;
}

// Mixes a long contiguous run with scattered survivors so the compacted
// scan exercises both the in-place and the gather tile paths.
common::Bitset MixedFilter(size_t n) {
  common::Bitset allowed(n);
  for (size_t i = 300; i < 812 && i < n; ++i) allowed.Set(i);
  for (size_t i = 0; i < n; i += 7) allowed.Set(i);
  return allowed;
}

TEST(FlatIndexTest, FilteredScanExactOverSubset) {
  const size_t n = 1200, dim = 16;
  auto data = MakeClusteredVectors(n, dim, 6, 33);
  for (Metric metric : {Metric::kL2, Metric::kCosine}) {
    FlatIndex index(dim, metric);
    auto ids = SequentialIds(n);
    ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
    common::Bitset allowed = MixedFilter(n);
    SearchParams p;
    p.k = 25;
    p.filter = &allowed;
    for (int q = 0; q < 5; ++q) {
      const float* query = data.data() + (q * 211 % n) * dim;
      auto truth =
          BruteForceTopKFiltered(data, dim, query, 25, allowed, metric);
      auto found = index.SearchWithFilter(query, p);
      ASSERT_TRUE(found.ok());
      EXPECT_DOUBLE_EQ(Recall(*found, truth), 1.0)
          << "metric=" << static_cast<int>(metric) << " q=" << q;
    }
  }
}

TEST(FlatIndexTest, FilteredScanWithRemappedIds) {
  // Non-identity ids: filter bits address ids, so the compacted offset scan
  // must not engage and results must still honor the filter.
  const size_t n = 400, dim = 8;
  auto data = MakeClusteredVectors(n, dim, 4, 17);
  FlatIndex index(dim, Metric::kL2);
  std::vector<IdType> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<IdType>(1000 + i);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
  common::Bitset allowed(1000 + n);
  for (size_t i = 0; i < n; i += 3) allowed.Set(1000 + i);
  SearchParams p;
  p.k = 15;
  p.filter = &allowed;
  auto found = index.SearchWithFilter(data.data(), p);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 15u);
  for (const auto& nb : *found)
    EXPECT_TRUE(allowed.Test(static_cast<size_t>(nb.id))) << nb.id;
}

TEST(FlatIndexTest, FilteredRangeSearch) {
  const size_t n = 600, dim = 8;
  auto data = MakeClusteredVectors(n, dim, 4, 29);
  FlatIndex index(dim, Metric::kL2);
  auto ids = SequentialIds(n);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
  common::Bitset allowed = MixedFilter(n);
  const float* query = data.data() + 123 * dim;
  const float radius = 1.5f;
  SearchParams p;
  p.filter = &allowed;
  auto found = index.SearchWithRange(query, radius, p);
  ASSERT_TRUE(found.ok());
  std::vector<IdType> expect;
  for (size_t i = 0; i < n; ++i) {
    if (!allowed.Test(i)) continue;
    if (Distance(Metric::kL2, query, data.data() + i * dim, dim) <= radius)
      expect.push_back(static_cast<IdType>(i));
  }
  ASSERT_EQ(found->size(), expect.size());
  for (const auto& nb : *found) {
    EXPECT_LE(nb.distance, radius);
    EXPECT_TRUE(allowed.Test(static_cast<size_t>(nb.id)));
  }
}

TEST(IvfIndexTest, FilteredFullProbeExactOverSubset) {
  // With nprobe == nlist, IVF-FLAT degenerates to an exact scan, so the
  // filtered posting-list compaction must reproduce brute force exactly.
  const size_t n = 1000, dim = 16;
  auto data = MakeClusteredVectors(n, dim, 8, 57);
  IvfOptions opts;
  opts.nlist = 8;
  IvfFlatIndex index(dim, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), n).ok());
  auto ids = SequentialIds(n);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
  common::Bitset allowed = MixedFilter(n);
  SearchParams p;
  p.k = 20;
  p.nprobe = 8;
  p.filter = &allowed;
  for (int q = 0; q < 5; ++q) {
    const float* query = data.data() + (q * 171 % n) * dim;
    auto truth = BruteForceTopKFiltered(data, dim, query, 20, allowed);
    auto found = index.SearchWithFilter(query, p);
    ASSERT_TRUE(found.ok());
    EXPECT_DOUBLE_EQ(Recall(*found, truth), 1.0) << q;
  }
}

TEST(HnswIndexTest, SparseFilterWidensSearch) {
  // ~1% selectivity: the density-aware ef widening must still surface
  // allowed neighbors instead of exhausting ef on filtered-out nodes.
  const size_t n = 3000;
  auto data = MakeClusteredVectors(n, kDim, 16, 71, 0.3f);
  HnswIndex index(kDim, Metric::kL2);
  auto ids = SequentialIds(n);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
  common::Bitset allowed(n);
  for (size_t i = 0; i < n; i += 100) allowed.Set(i);  // 30 rows
  SearchParams p;
  p.k = 10;
  p.ef_search = 50;
  p.filter = &allowed;
  size_t total_found = 0;
  for (int q = 0; q < 10; ++q) {
    const float* query = data.data() + (q * 313 % n) * kDim;
    auto found = index.SearchWithFilter(query, p);
    ASSERT_TRUE(found.ok());
    for (const auto& nb : *found)
      ASSERT_TRUE(allowed.Test(static_cast<size_t>(nb.id))) << nb.id;
    total_found += found->size();
  }
  // Unwidened ef=50 over a 1%-dense filter would strand most queries with
  // nearly nothing; widened search should average several hits per query.
  EXPECT_GE(total_found, 30u);
}

TEST(HnswIndexTest, NativeIteratorFlagged) {
  HnswIndex index(8, Metric::kL2);
  EXPECT_TRUE(index.HasNativeIterator());
  // Every index family now carries a native resumable iterator; FLAT's
  // caches the full score array on first Next().
  FlatIndex flat(8, Metric::kL2);
  EXPECT_TRUE(flat.HasNativeIterator());
}

TEST(HnswIndexTest, HighEfImprovesRecall) {
  auto data = MakeClusteredVectors(3000, kDim, 16, 41, 0.3f);
  HnswOptions opts;
  opts.M = 8;
  opts.ef_construction = 60;
  HnswIndex index(kDim, Metric::kL2, opts);
  auto ids = SequentialIds(3000);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 3000).ok());

  double recall_low = 0, recall_high = 0;
  for (int q = 0; q < 20; ++q) {
    const float* query = data.data() + (q * 131 % 3000) * kDim;
    auto truth = BruteForceTopK(data, kDim, query, 10);
    SearchParams lo;
    lo.k = 10;
    lo.ef_search = 10;
    SearchParams hi;
    hi.k = 10;
    hi.ef_search = 400;
    auto rl = index.SearchWithFilter(query, lo);
    auto rh = index.SearchWithFilter(query, hi);
    ASSERT_TRUE(rl.ok() && rh.ok());
    recall_low += Recall(*rl, truth);
    recall_high += Recall(*rh, truth);
  }
  EXPECT_GE(recall_high, recall_low);
  EXPECT_GT(recall_high / 20, 0.95);
}

TEST(HnswIndexTest, IteratorReachesDeepResults) {
  // Iterate far past k and confirm coverage keeps growing (the property the
  // post-filter strategy depends on).
  auto data = MakeClusteredVectors(1000, 16, 8, 51);
  HnswIndex index(16, Metric::kL2);
  auto ids = SequentialIds(1000);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 1000).ok());
  SearchParams p;
  p.k = 10;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  size_t total = 0;
  while (true) {
    auto batch = iter->Next(100);
    if (batch.empty()) break;
    total += batch.size();
    if (total >= 900) break;
  }
  EXPECT_GE(total, 900u);  // HNSW graphs are connected: nearly all reachable
}

TEST(IvfIndexTest, MoreProbesImproveRecall) {
  auto data = MakeClusteredVectors(2000, kDim, 16, 61);
  IvfOptions opts;
  opts.nlist = 32;
  IvfFlatIndex index(kDim, Metric::kL2, opts);
  auto ids = SequentialIds(2000);
  ASSERT_TRUE(index.Train(data.data(), 2000).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 2000).ok());

  double recall1 = 0, recall_all = 0;
  for (int q = 0; q < 20; ++q) {
    const float* query = data.data() + (q * 101 % 2000) * kDim;
    auto truth = BruteForceTopK(data, kDim, query, 10);
    SearchParams p1;
    p1.k = 10;
    p1.nprobe = 1;
    SearchParams pall;
    pall.k = 10;
    pall.nprobe = 32;
    recall1 += Recall(*index.SearchWithFilter(query, p1), truth);
    recall_all += Recall(*index.SearchWithFilter(query, pall), truth);
  }
  EXPECT_GE(recall_all, recall1);
  EXPECT_NEAR(recall_all / 20, 1.0, 1e-9);  // probing all lists is exact
}

TEST(IvfIndexTest, UntrainedSearchFails) {
  IvfFlatIndex index(8, Metric::kL2);
  SearchParams p;
  float q[8] = {};
  EXPECT_FALSE(index.SearchWithFilter(q, p).ok());
}

TEST(IvfIndexTest, AddAutoTrains) {
  auto data = MakeClusteredVectors(500, 8, 4, 71);
  IvfFlatIndex index(8, Metric::kL2);
  auto ids = SequentialIds(500);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 500).ok());
  EXPECT_TRUE(index.trained());
  EXPECT_EQ(index.Size(), 500u);
}

TEST(IvfPqTest, RefineImprovesOverPureAdc) {
  auto data = MakeClusteredVectors(2000, kDim, 8, 81);
  auto ids = SequentialIds(2000);
  IvfOptions ivf;
  ivf.nlist = 16;

  IvfPqOptions with_refine;
  with_refine.keep_raw_for_refine = true;
  IvfPqIndex refined(kDim, Metric::kL2, ivf, with_refine);
  ASSERT_TRUE(refined.Train(data.data(), 2000).ok());
  ASSERT_TRUE(refined.AddWithIds(data.data(), ids.data(), 2000).ok());

  IvfPqOptions no_refine;
  no_refine.keep_raw_for_refine = false;
  IvfPqIndex unrefined(kDim, Metric::kL2, ivf, no_refine);
  ASSERT_TRUE(unrefined.Train(data.data(), 2000).ok());
  ASSERT_TRUE(unrefined.AddWithIds(data.data(), ids.data(), 2000).ok());

  double r_refined = 0, r_unrefined = 0;
  SearchParams p;
  p.k = 10;
  p.nprobe = 8;
  p.refine_factor = 4;
  for (int q = 0; q < 20; ++q) {
    const float* query = data.data() + (q * 91 % 2000) * kDim;
    auto truth = BruteForceTopK(data, kDim, query, 10);
    r_refined += Recall(*refined.SearchWithFilter(query, p), truth);
    r_unrefined += Recall(*unrefined.SearchWithFilter(query, p), truth);
  }
  EXPECT_GE(r_refined, r_unrefined);
}

// ---------------------------------------------------------------------------
// Factory & auto-index
// ---------------------------------------------------------------------------

TEST(IndexFactoryTest, AllBuiltinsRegistered) {
  auto& factory = IndexFactory::Global();
  for (const char* type : {"FLAT", "HNSW", "HNSWSQ", "IVFFLAT", "IVFPQ",
                           "IVFPQFS", "DISKANN"})
    EXPECT_TRUE(factory.Has(type)) << type;
}

TEST(IndexFactoryTest, UnknownTypeIsNotFound) {
  IndexSpec spec;
  spec.type = "DISKANN_V9";
  spec.dim = 8;
  auto r = IndexFactory::Global().Create(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(IndexFactoryTest, PluggableRegistration) {
  // The extensibility contribution: a new library plugs in via Register.
  auto& factory = IndexFactory::Global();
  factory.Register("MYLIB_FLAT", [](const IndexSpec& spec) {
    return common::Result<VectorIndexPtr>(
        VectorIndexPtr(new FlatIndex(spec.dim, spec.metric)));
  });
  IndexSpec spec;
  spec.type = "MYLIB_FLAT";
  spec.dim = 8;
  auto r = factory.Create(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Dim(), 8u);
}

TEST(IndexFactoryTest, ZeroDimRejected) {
  IndexSpec spec;
  spec.type = "FLAT";
  auto r = IndexFactory::Global().Create(spec);
  EXPECT_FALSE(r.ok());
}

TEST(IndexSpecTest, GetIntParsesAndDefaults) {
  IndexSpec spec;
  spec.params["M"] = "32";
  spec.params["BAD"] = "xyz";
  EXPECT_EQ(spec.GetInt("M", 16), 32);
  EXPECT_EQ(spec.GetInt("MISSING", 16), 16);
  EXPECT_EQ(spec.GetInt("BAD", 5), 5);
}

TEST(AutoIndexTest, NlistGrowsWithN) {
  EXPECT_EQ(AutoSelectIvfNlist(0), 1u);
  size_t small = AutoSelectIvfNlist(1000);
  size_t large = AutoSelectIvfNlist(100000);
  EXPECT_LT(small, large);
  // Each list keeps at least ~39 points.
  EXPECT_LE(AutoSelectIvfNlist(1000), 1000 / 39 + 1);
}

TEST(AutoIndexTest, AutoTuneSpecFillsNlist) {
  IndexSpec spec;
  spec.type = "IVFFLAT";
  spec.dim = 16;
  IndexSpec tuned = AutoTuneSpec(spec, 10000);
  EXPECT_NE(tuned.params.find("NLIST"), tuned.params.end());
  // Explicit user NLIST wins.
  spec.params["NLIST"] = "7";
  tuned = AutoTuneSpec(spec, 10000);
  EXPECT_EQ(tuned.params.at("NLIST"), "7");
}

TEST(AutoIndexTest, MeasuredAutoTuneReturnsCandidate) {
  auto data = MakeClusteredVectors(2000, 16, 8, 91);
  auto report = MeasuredAutoTuneIvf(data.data(), 2000, 16, 4, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->chosen_nlist, 0u);
  EXPECT_GE(report->candidates.size(), 2u);
}

// ---------------------------------------------------------------------------
// DiskANN specifics
// ---------------------------------------------------------------------------

TEST(DiskAnnTest, DiskReadsCountedAndCached) {
  auto data = MakeClusteredVectors(1000, 16, 8, 77);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  DiskAnnIndex index(16, Metric::kL2, opts);
  auto ids = SequentialIds(1000);
  ASSERT_TRUE(index.Train(data.data(), 1000).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 1000).ok());

  SearchParams p;
  p.k = 10;
  p.ef_search = 32;
  uint64_t before = index.disk_reads();
  ASSERT_TRUE(index.SearchWithFilter(data.data(), p).ok());
  uint64_t first_query = index.disk_reads() - before;
  EXPECT_GT(first_query, 0u);  // beam expansion hits "disk"
  // Repeating the same query is served mostly from the block cache.
  before = index.disk_reads();
  ASSERT_TRUE(index.SearchWithFilter(data.data(), p).ok());
  EXPECT_LT(index.disk_reads() - before, first_query / 2 + 1);
}

TEST(DiskAnnTest, MemoryFootprintFarBelowHnsw) {
  // The point of the disk-based index: resident memory is PQ codes + cache,
  // not vectors + graph.
  auto data = MakeClusteredVectors(2000, kDim, 8, 78);
  auto ids = SequentialIds(2000);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  opts.cached_nodes = 16;  // tiny cache to expose the raw footprint
  DiskAnnIndex diskann(kDim, Metric::kL2, opts);
  ASSERT_TRUE(diskann.Train(data.data(), 2000).ok());
  ASSERT_TRUE(diskann.AddWithIds(data.data(), ids.data(), 2000).ok());
  HnswIndex hnsw(kDim, Metric::kL2);
  ASSERT_TRUE(hnsw.AddWithIds(data.data(), ids.data(), 2000).ok());
  EXPECT_LT(diskann.MemoryUsage() * 4, hnsw.MemoryUsage());
}

TEST(DiskAnnTest, SealedIndexRejectsFurtherAdds) {
  auto data = MakeClusteredVectors(200, 16, 4, 79);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  DiskAnnIndex index(16, Metric::kL2, opts);
  auto ids = SequentialIds(200);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 200).ok());
  common::Status again = index.AddWithIds(data.data(), ids.data(), 200);
  EXPECT_TRUE(again.IsNotSupported());
}

TEST(GenericIteratorTest, ExhaustsSmallIndex) {
  auto data = MakeClusteredVectors(100, 8, 2, 101);
  FlatIndex index(8, Metric::kL2);
  auto ids = SequentialIds(100);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 100).ok());
  SearchParams p;
  p.k = 10;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  std::set<IdType> seen;
  for (;;) {
    auto batch = iter->Next(16);
    if (batch.empty()) break;
    for (const auto& n : batch) seen.insert(n.id);
  }
  EXPECT_EQ(seen.size(), 100u);  // generic iterator reaches everything
}

// ---------------------------------------------------------------------------
// Native resumable iterators: parity, sorted-batch contract, honest stats
// ---------------------------------------------------------------------------

/// Drains an iterator with `batch_size` refills, checking the sorted-batch
/// contract on every batch, until exhaustion or `max_rows` collected.
std::vector<Neighbor> DrainIterator(SearchIterator* iter, size_t batch_size,
                                    size_t max_rows) {
  std::vector<Neighbor> all;
  for (;;) {
    std::vector<Neighbor> batch = iter->Next(batch_size);
    if (batch.empty()) break;
    EXPECT_TRUE(IsSortedBatch(batch));
    all.insert(all.end(), batch.begin(), batch.end());
    if (all.size() >= max_rows) break;
  }
  return all;
}

void ExpectExactlyEqual(const std::vector<Neighbor>& got,
                        const std::vector<Neighbor>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << label << " rank " << i;
  }
}

TEST(NativeIteratorParityTest, FlatMatchesOneShotAcrossTiers) {
  // Concatenated Next() batches must be bit-identical to the one-shot
  // sorted top-n, per metric and per precision tier: the iterator's first
  // Next() runs the exact same scan, later batches only reorder service.
  constexpr size_t n = 400;
  auto data = MakeClusteredVectors(n, kDim, 6, 201);
  auto ids = SequentialIds(n);
  for (Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    for (Precision prec :
         {Precision::kFp32, Precision::kFp16, Precision::kInt8}) {
      FlatIndex index(kDim, metric, prec);
      ASSERT_TRUE(index.Train(data.data(), n).ok());
      ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
      ASSERT_TRUE(index.HasNativeIterator());
      SearchParams p;
      p.k = static_cast<int>(n);
      auto one_shot = index.SearchWithFilter(data.data() + 5 * kDim, p);
      ASSERT_TRUE(one_shot.ok());
      auto iter = std::move(*index.MakeIterator(data.data() + 5 * kDim, p));
      std::vector<Neighbor> streamed = DrainIterator(iter.get(), 37, n);
      ExpectExactlyEqual(streamed, *one_shot,
                         std::string("flat ") + PrecisionName(prec) +
                             " metric=" +
                             std::to_string(static_cast<int>(metric)));
    }
  }
}

TEST(NativeIteratorParityTest, FlatFilteredMatchesOneShot) {
  constexpr size_t n = 500;
  auto data = MakeClusteredVectors(n, kDim, 4, 203);
  auto ids = SequentialIds(n);
  common::Bitset allowed(n);
  size_t qualifying = 0;
  for (size_t i = 0; i < n; i += 7) {
    allowed.Set(i);
    ++qualifying;
  }
  for (Precision prec : {Precision::kFp32, Precision::kInt8}) {
    FlatIndex index(kDim, Metric::kL2, prec);
    ASSERT_TRUE(index.Train(data.data(), n).ok());
    ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
    SearchParams p;
    p.k = static_cast<int>(qualifying);
    p.filter = &allowed;
    auto one_shot = index.SearchWithFilter(data.data(), p);
    ASSERT_TRUE(one_shot.ok());
    auto iter = std::move(*index.MakeIterator(data.data(), p));
    std::vector<Neighbor> streamed = DrainIterator(iter.get(), 11, n);
    ExpectExactlyEqual(streamed, *one_shot,
                       std::string("filtered flat ") + PrecisionName(prec));
  }
}

TEST(NativeIteratorParityTest, IvfFlatFullProbeMatchesOneShot) {
  // nprobe = nlist drains every list, so the concatenated stream must equal
  // the one-shot full sort exactly — including the quantized tier.
  constexpr size_t n = 600;
  auto data = MakeClusteredVectors(n, kDim, 8, 205);
  auto ids = SequentialIds(n);
  IvfOptions opts;
  opts.nlist = 8;
  for (Precision prec : {Precision::kFp32, Precision::kInt8}) {
    IvfFlatIndex index(kDim, Metric::kL2, opts, prec);
    ASSERT_TRUE(index.Train(data.data(), n).ok());
    ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
    ASSERT_TRUE(index.HasNativeIterator());
    SearchParams p;
    p.k = static_cast<int>(n);
    p.nprobe = static_cast<int>(opts.nlist);
    auto one_shot = index.SearchWithFilter(data.data() + kDim, p);
    ASSERT_TRUE(one_shot.ok());
    auto iter = std::move(*index.MakeIterator(data.data() + kDim, p));
    std::vector<Neighbor> streamed = DrainIterator(iter.get(), 53, n);
    ExpectExactlyEqual(streamed, *one_shot,
                       std::string("ivfflat ") + PrecisionName(prec));
  }
}

TEST(NativeIteratorParityTest, IvfFirstBatchMatchesOneShotNprobe) {
  // At matching nprobe the iterator's first window scans exactly the lists
  // the one-shot search scans, so the first batch is the one-shot top-k.
  auto data = MakeClusteredVectors(kN, kDim, 16, 207);
  auto ids = SequentialIds(kN);
  IvfOptions opts;
  opts.nlist = 16;
  IvfFlatIndex index(kDim, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), kN).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), kN).ok());
  SearchParams p;
  p.k = 20;
  p.nprobe = 4;
  auto one_shot = index.SearchWithFilter(data.data() + 3 * kDim, p);
  ASSERT_TRUE(one_shot.ok());
  auto iter = std::move(*index.MakeIterator(data.data() + 3 * kDim, p));
  std::vector<Neighbor> first = iter->Next(20);
  ExpectExactlyEqual(first, *one_shot, "ivf first batch");
}

TEST(NativeIteratorParityTest, IvfPqFallsBackToGeneric) {
  // PQ refine re-ranks a k-dependent shortlist, which cannot be reproduced
  // incrementally; MakeIterator must hand back the restart wrapper.
  auto data = MakeClusteredVectors(800, kDim, 8, 209);
  auto ids = SequentialIds(800);
  IvfPqIndex index(kDim, Metric::kL2);
  ASSERT_TRUE(index.Train(data.data(), 800).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 800).ok());
  EXPECT_FALSE(index.HasNativeIterator());
  SearchParams p;
  p.k = 10;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  auto batch = iter->Next(10);
  EXPECT_FALSE(batch.empty());
  // The restart wrapper reports recompute rounds; a native iterator never
  // would.
  EXPECT_GE(iter->GetStats().recompute_rounds, 1u);
}

TEST(NativeIteratorParityTest, DiskAnnFirstBatchMatchesOneShot) {
  // Phase one of the resumable iterator replicates the one-shot bounded
  // beam exactly, so the first k served rows are bit-identical.
  auto data = MakeClusteredVectors(800, 16, 8, 211);
  auto ids = SequentialIds(800);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  DiskAnnIndex index(16, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), 800).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 800).ok());
  ASSERT_TRUE(index.HasNativeIterator());
  for (int k : {5, 17}) {
    SearchParams p;
    p.k = k;
    p.ef_search = 32;
    auto one_shot = index.SearchWithFilter(data.data() + 9 * 16, p);
    ASSERT_TRUE(one_shot.ok());
    auto iter = std::move(*index.MakeIterator(data.data() + 9 * 16, p));
    std::vector<Neighbor> first = iter->Next(static_cast<size_t>(k));
    ExpectExactlyEqual(first, *one_shot,
                       "diskann k=" + std::to_string(k));
  }
}

TEST(NativeIteratorParityTest, DiskAnnFilteredFirstBatchMatchesOneShot) {
  auto data = MakeClusteredVectors(600, 16, 6, 213);
  auto ids = SequentialIds(600);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  DiskAnnIndex index(16, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), 600).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 600).ok());
  common::Bitset allowed(600);
  for (size_t i = 0; i < 600; i += 3) allowed.Set(i);
  SearchParams p;
  p.k = 10;
  p.ef_search = 32;
  p.filter = &allowed;
  auto one_shot = index.SearchWithFilter(data.data(), p);
  ASSERT_TRUE(one_shot.ok());
  ASSERT_FALSE(one_shot->empty());
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  std::vector<Neighbor> first = iter->Next(one_shot->size());
  ExpectExactlyEqual(first, *one_shot, "diskann filtered");
  for (const Neighbor& nb : first)
    EXPECT_TRUE(allowed.Test(static_cast<size_t>(nb.id)));
}

TEST(NativeIteratorParityTest, DiskAnnResumeGoesDeepWithoutRestart) {
  // Resuming past the first beam must keep producing fresh ids (the spill
  // frontier widens the beam) and must not re-pay SSD reads for blocks the
  // first phase already expanded.
  auto data = MakeClusteredVectors(1000, 16, 8, 215);
  auto ids = SequentialIds(1000);
  DiskAnnOptions opts;
  opts.simulate_disk_latency = false;
  opts.cached_nodes = 4;  // tiny cache: a re-walk would show up as re-reads
  DiskAnnIndex index(16, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), 1000).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 1000).ok());
  SearchParams p;
  p.k = 10;
  p.ef_search = 16;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  std::set<IdType> seen;
  size_t total = 0;
  for (;;) {
    auto batch = iter->Next(50);
    if (batch.empty()) break;
    for (const Neighbor& nb : batch) EXPECT_TRUE(seen.insert(nb.id).second);
    total += batch.size();
    if (total >= 600) break;
  }
  EXPECT_GE(total, 600u);  // far past the initial ef=16 beam
  // Every expanded node costs exactly one ReadBlock; with resume the reads
  // can't exceed expansions by more than the graph's revisits (none).
  EXPECT_LE(index.disk_reads(), 1000u + iter->GetStats().rows_visited);
}

TEST(SortedBatchContractTest, ShuffledBatchWouldBreakRangeEarlyExit) {
  // The executor's range early-exit reads batch.back() as the worst hit in
  // the batch; a shuffled batch silently truncates results. IsSortedBatch
  // is the guard every iterator DCHECKs.
  auto data = MakeClusteredVectors(200, 8, 4, 217);
  FlatIndex index(8, Metric::kL2);
  auto ids = SequentialIds(200);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 200).ok());
  SearchParams p;
  p.k = 50;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  std::vector<Neighbor> batch = iter->Next(50);
  ASSERT_EQ(batch.size(), 50u);
  ASSERT_TRUE(IsSortedBatch(batch));
  float worst = batch.back().distance;
  for (const Neighbor& nb : batch) EXPECT_LE(nb.distance, worst);
  // A shuffled batch violates the contract: back() is no longer the worst,
  // so "whole batch past the radius" inferences would be unsound.
  std::reverse(batch.begin(), batch.end());
  ASSERT_FALSE(IsSortedBatch(batch));
  EXPECT_LT(batch.back().distance, worst);
}

TEST(IteratorStatsTest, GenericIteratorReportsHonestCosts) {
  // The old accounting charged ef_search per Next() regardless of work; the
  // honest version counts rows actually materialized per restart round.
  auto data = MakeClusteredVectors(300, 8, 4, 219);
  FlatIndex index(8, Metric::kL2);
  auto ids = SequentialIds(300);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), 300).ok());
  SearchParams p;
  p.k = 10;
  GenericSearchIterator iter(&index, data.data(), p);
  size_t drained = 0;
  size_t batches = 0;
  for (;;) {
    auto batch = iter.Next(40);
    if (batch.empty()) break;
    drained += batch.size();
    ++batches;
    if (drained >= 200) break;
  }
  SearchIterator::Stats stats = iter.GetStats();
  EXPECT_EQ(stats.batches, batches);
  // Restarts re-materialize earlier rows: cumulative rows visited must
  // exceed the rows actually served.
  EXPECT_GE(stats.recompute_rounds, 2u);
  EXPECT_GT(stats.rows_visited, drained);
  EXPECT_EQ(iter.VisitedCount(), stats.rows_visited);
}

TEST(IteratorStatsTest, FlatIteratorScansOnceRegardlessOfBatches) {
  constexpr size_t n = 250;
  auto data = MakeClusteredVectors(n, 8, 4, 221);
  FlatIndex index(8, Metric::kL2);
  auto ids = SequentialIds(n);
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), n).ok());
  SearchParams p;
  p.k = 10;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  size_t batches = 0;
  while (!iter->Next(17).empty()) ++batches;
  SearchIterator::Stats stats = iter->GetStats();
  // One full scan total — resumable batches never recompute distances.
  EXPECT_EQ(stats.rows_visited, n);
  EXPECT_EQ(stats.recompute_rounds, 0u);
  EXPECT_EQ(stats.batches, batches);
}

TEST(IteratorStatsTest, IvfIteratorVisitsOnlyProbedLists) {
  auto data = MakeClusteredVectors(kN, kDim, 16, 223);
  auto ids = SequentialIds(kN);
  IvfOptions opts;
  opts.nlist = 16;
  IvfFlatIndex index(kDim, Metric::kL2, opts);
  ASSERT_TRUE(index.Train(data.data(), kN).ok());
  ASSERT_TRUE(index.AddWithIds(data.data(), ids.data(), kN).ok());
  SearchParams p;
  p.k = 10;
  p.nprobe = 2;
  auto iter = std::move(*index.MakeIterator(data.data(), p));
  auto first = iter->Next(10);
  ASSERT_FALSE(first.empty());
  size_t after_one_window = iter->GetStats().rows_visited;
  // ~2 of 16 lists scanned: far less than the whole index.
  EXPECT_LT(after_one_window, kN / 2);
  // Draining deeper extends the probe schedule instead of rescanning.
  DrainIterator(iter.get(), 200, kN);
  SearchIterator::Stats stats = iter->GetStats();
  EXPECT_EQ(stats.rows_visited, kN);  // every row's distance computed once
  EXPECT_EQ(stats.recompute_rounds, 0u);
}

}  // namespace
}  // namespace blendhouse::vecindex
