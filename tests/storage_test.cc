#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "common/timer.h"
#include "storage/column.h"
#include "storage/lsm_engine.h"
#include "storage/object_store.h"
#include "storage/partitioner.h"
#include "storage/segment.h"
#include "storage/version.h"
#include "tests/test_util.h"

namespace blendhouse::storage {
namespace {

using test::MakeClusteredVectors;

// ---------------------------------------------------------------------------
// ObjectStore
// ---------------------------------------------------------------------------

TEST(ObjectStoreTest, PutGetDelete) {
  ObjectStore store(StorageCostModel::Instant());
  ASSERT_TRUE(store.Put("a/b", "hello").ok());
  auto got = store.Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
  EXPECT_TRUE(store.Exists("a/b"));
  ASSERT_TRUE(store.Delete("a/b").ok());
  EXPECT_FALSE(store.Exists("a/b"));
  EXPECT_TRUE(store.Get("a/b").status().IsNotFound());
}

TEST(ObjectStoreTest, ListPrefix) {
  ObjectStore store(StorageCostModel::Instant());
  ASSERT_TRUE(store.Put("t/seg1/data", "x").ok());
  ASSERT_TRUE(store.Put("t/seg2/data", "y").ok());
  ASSERT_TRUE(store.Put("u/seg1/data", "z").ok());
  EXPECT_EQ(store.ListPrefix("t/").size(), 2u);
  EXPECT_EQ(store.ListPrefix("u/").size(), 1u);
  EXPECT_EQ(store.ListPrefix("v/").size(), 0u);
}

TEST(ObjectStoreTest, StatsCountBytes) {
  ObjectStore store(StorageCostModel::Instant());
  ASSERT_TRUE(store.Put("k", std::string(100, 'a')).ok());
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.stats().puts.load(), 1u);
  EXPECT_EQ(store.stats().gets.load(), 1u);
  EXPECT_EQ(store.stats().bytes_written.load(), 100u);
  EXPECT_EQ(store.stats().bytes_read.load(), 100u);
}

TEST(ObjectStoreTest, LatencyModelCharges) {
  StorageCostModel cost;
  cost.base_latency_micros = 3000;
  cost.bytes_per_micro = 1e9;
  cost.simulate_latency = true;
  ObjectStore store(cost);
  ASSERT_TRUE(store.Put("k", "v").ok());
  common::Timer timer;
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_GE(timer.ElapsedMicros(), 2500);
}

// ---------------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------------

TEST(ColumnTest, TypedAppendAndGet) {
  Column ints("a", ColumnType::kInt64);
  ASSERT_TRUE(ints.Append(Value(int64_t{7})).ok());
  EXPECT_EQ(ints.GetInt64(0), 7);
  EXPECT_FALSE(ints.Append(Value(std::string("x"))).ok());

  Column strs("b", ColumnType::kString);
  ASSERT_TRUE(strs.Append(Value(std::string("hello"))).ok());
  ASSERT_TRUE(strs.Append(Value(std::string("world"))).ok());
  EXPECT_EQ(strs.GetString(0), "hello");
  EXPECT_EQ(strs.GetString(1), "world");

  Column vecs("c", ColumnType::kFloatVector, 2);
  ASSERT_TRUE(vecs.Append(Value(std::vector<float>{1, 2})).ok());
  EXPECT_FLOAT_EQ(vecs.GetVector(0)[1], 2.0f);
  EXPECT_FALSE(vecs.Append(Value(std::vector<float>{1, 2, 3})).ok());
}

TEST(ColumnTest, FloatColumnAcceptsIntLiterals) {
  Column col("f", ColumnType::kFloat64);
  ASSERT_TRUE(col.Append(Value(int64_t{3})).ok());
  EXPECT_DOUBLE_EQ(col.GetFloat64(0), 3.0);
}

TEST(ColumnTest, GranuleMarks) {
  Column col("g", ColumnType::kInt64);
  for (int64_t i = 0; i < 300; ++i)
    ASSERT_TRUE(col.Append(Value(i)).ok());
  col.BuildGranuleMarks(128);
  const GranuleMarks* marks = col.granule_marks();
  ASSERT_NE(marks, nullptr);
  EXPECT_EQ(marks->NumGranules(), 3u);
  EXPECT_DOUBLE_EQ(marks->min_vals[0], 0);
  EXPECT_DOUBLE_EQ(marks->max_vals[0], 127);
  EXPECT_TRUE(marks->MayContainRange(0, 100, 200));
  EXPECT_FALSE(marks->MayContainRange(0, 200, 300));
}

TEST(ColumnTest, SerializationRoundTrip) {
  Column col("s", ColumnType::kString);
  ASSERT_TRUE(col.Append(Value(std::string("abc"))).ok());
  ASSERT_TRUE(col.Append(Value(std::string(""))).ok());
  ASSERT_TRUE(col.Append(Value(std::string("xyz"))).ok());
  std::string buf;
  common::BinaryWriter w(&buf);
  col.Serialize(&w);
  Column restored;
  common::BinaryReader r(buf);
  ASSERT_TRUE(restored.Deserialize(&r).ok());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.GetString(0), "abc");
  EXPECT_EQ(restored.GetString(1), "");
  EXPECT_EQ(restored.GetString(2), "xyz");
}

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

TableSchema TestSchema(size_t dim = 4, size_t buckets = 0) {
  TableSchema schema;
  schema.table_name = "t";
  schema.columns = {{"id", ColumnType::kInt64},
                    {"label", ColumnType::kString},
                    {"emb", ColumnType::kFloatVector}};
  vecindex::IndexSpec spec;
  spec.type = "FLAT";
  spec.dim = dim;
  schema.index_spec = spec;
  schema.vector_column = 2;
  schema.semantic_buckets = buckets;
  return schema;
}

Row MakeRow(int64_t id, const std::string& label, std::vector<float> vec) {
  Row row;
  row.values = {id, label, std::move(vec)};
  return row;
}

TEST(SegmentTest, BuildAndRoundTrip) {
  TableSchema schema = TestSchema();
  SegmentBuilder builder(schema, "seg_0");
  builder.SetPartitionKey("animal");
  ASSERT_TRUE(builder.AppendRow(MakeRow(1, "cat", {1, 0, 0, 0})).ok());
  ASSERT_TRUE(builder.AppendRow(MakeRow(2, "dog", {0, 1, 0, 0})).ok());
  auto segment = builder.Finish();
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ((*segment)->num_rows(), 2u);
  EXPECT_EQ((*segment)->meta().partition_key, "animal");
  // Centroid is the mean vector.
  ASSERT_EQ((*segment)->meta().centroid.size(), 4u);
  EXPECT_FLOAT_EQ((*segment)->meta().centroid[0], 0.5f);
  // Numeric ranges recorded for pruning.
  auto range = (*segment)->meta().numeric_ranges.at("id");
  EXPECT_DOUBLE_EQ(range.first, 1);
  EXPECT_DOUBLE_EQ(range.second, 2);

  std::string bytes = (*segment)->SerializeToString();
  auto restored = Segment::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->num_rows(), 2u);
  EXPECT_EQ((*restored)->FindColumn("label")->GetString(1), "dog");
}

TEST(SegmentTest, EmptySegmentRejected) {
  TableSchema schema = TestSchema();
  SegmentBuilder builder(schema, "seg_0");
  EXPECT_FALSE(builder.Finish().ok());
}

TEST(SegmentTest, ArityMismatchRejected) {
  TableSchema schema = TestSchema();
  SegmentBuilder builder(schema, "seg_0");
  Row bad;
  bad.values = {int64_t{1}};
  EXPECT_FALSE(builder.AppendRow(bad).ok());
}

// ---------------------------------------------------------------------------
// VersionSet & delete bitmaps
// ---------------------------------------------------------------------------

SegmentMeta Meta(const std::string& id, uint64_t rows) {
  SegmentMeta m;
  m.segment_id = id;
  m.num_rows = rows;
  return m;
}

TEST(VersionSetTest, AddAndSnapshot) {
  VersionSet vs;
  vs.AddSegments({Meta("a", 10), Meta("b", 20)});
  TableSnapshot snap = vs.Snapshot();
  EXPECT_EQ(snap.segments.size(), 2u);
  EXPECT_EQ(snap.TotalRows(), 30u);
  EXPECT_EQ(snap.version, 1u);
}

TEST(VersionSetTest, MarkDeletedIsCopyOnWrite) {
  VersionSet vs;
  vs.AddSegments({Meta("a", 10)});
  TableSnapshot before = vs.Snapshot();
  ASSERT_TRUE(vs.MarkDeleted("a", {1, 3}).ok());
  TableSnapshot after = vs.Snapshot();
  // Old snapshot unaffected; new one sees the deletions.
  EXPECT_EQ(before.DeletesFor("a"), nullptr);
  ASSERT_NE(after.DeletesFor("a"), nullptr);
  EXPECT_TRUE(after.DeletesFor("a")->Test(1));
  EXPECT_TRUE(after.DeletesFor("a")->Test(3));
  EXPECT_FALSE(after.DeletesFor("a")->Test(2));
  EXPECT_EQ(after.TotalDeletedRows(), 2u);
}

TEST(VersionSetTest, DeleteOutOfRangeRejected) {
  VersionSet vs;
  vs.AddSegments({Meta("a", 10)});
  EXPECT_FALSE(vs.MarkDeleted("a", {10}).ok());
  EXPECT_FALSE(vs.MarkDeleted("missing", {0}).ok());
}

TEST(VersionSetTest, ReplaceSegmentsIsAtomic) {
  VersionSet vs;
  vs.AddSegments({Meta("a", 10), Meta("b", 10)});
  ASSERT_TRUE(vs.MarkDeleted("a", {0}).ok());
  ASSERT_TRUE(vs.ReplaceSegments({"a", "b"}, {Meta("c", 19)}).ok());
  TableSnapshot snap = vs.Snapshot();
  EXPECT_EQ(snap.segments.size(), 1u);
  EXPECT_EQ(snap.segments[0].segment_id, "c");
  // Delete bitmap of removed segment is dropped.
  EXPECT_EQ(snap.delete_bitmaps.size(), 0u);
  // Replacing a missing segment fails.
  EXPECT_FALSE(vs.ReplaceSegments({"zzz"}, {}).ok());
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(PartitionerTest, ScalarKeyJoinsColumns) {
  TableSchema schema = TestSchema();
  schema.partition_columns = {1, 0};  // label, id
  Row row = MakeRow(7, "cat", {0, 0, 0, 0});
  EXPECT_EQ(ScalarPartitionKey(schema, row), "cat|7");
}

TEST(PartitionerTest, SemanticBucketsAreConsistent) {
  auto data = MakeClusteredVectors(600, 8, 4, 5);
  SemanticPartitioner part;
  ASSERT_TRUE(part.Train(data.data(), 600, 8, 4).ok());
  EXPECT_EQ(part.num_buckets(), 4u);
  // A vector is assigned to the bucket whose centroid ranks first.
  for (size_t i = 0; i < 20; ++i) {
    const float* v = data.data() + i * 8;
    EXPECT_EQ(part.AssignBucket(v), part.RankBuckets(v)[0]);
  }
}

TEST(PartitionerTest, SerializationRoundTrip) {
  auto data = MakeClusteredVectors(200, 8, 4, 6);
  SemanticPartitioner part;
  ASSERT_TRUE(part.Train(data.data(), 200, 8, 4).ok());
  std::string buf;
  common::BinaryWriter w(&buf);
  part.Serialize(&w);
  SemanticPartitioner restored;
  common::BinaryReader r(buf);
  ASSERT_TRUE(restored.Deserialize(&r).ok());
  EXPECT_EQ(restored.num_buckets(), 4u);
  EXPECT_EQ(restored.AssignBucket(data.data()), part.AssignBucket(data.data()));
}

// ---------------------------------------------------------------------------
// LsmEngine
// ---------------------------------------------------------------------------

class LsmEngineTest : public ::testing::Test {
 protected:
  LsmEngineTest()
      : store_(StorageCostModel::Instant()), pool_(2) {}

  std::unique_ptr<LsmEngine> MakeEngine(size_t buckets = 0,
                                        IngestOptions opts = {}) {
    return std::make_unique<LsmEngine>(TestSchema(4, buckets), &store_,
                                       &pool_, opts);
  }

  std::vector<Row> MakeRows(size_t n, const std::string& label,
                            uint64_t seed = 1) {
    common::Rng rng(seed);
    std::vector<Row> rows;
    for (size_t i = 0; i < n; ++i)
      rows.push_back(MakeRow(static_cast<int64_t>(i), label,
                             {rng.Gaussian(), rng.Gaussian(), rng.Gaussian(),
                              rng.Gaussian()}));
    return rows;
  }

  ObjectStore store_;
  common::ThreadPool pool_;
};

TEST_F(LsmEngineTest, InsertFlushCommit) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Insert(MakeRows(100, "a")).ok());
  EXPECT_EQ(engine->NumSegments(), 0u);  // buffered
  EXPECT_EQ(engine->MemtableRows(), 100u);
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->MemtableRows(), 0u);
  EXPECT_EQ(engine->NumSegments(), 1u);
  TableSnapshot snap = engine->Snapshot();
  EXPECT_EQ(snap.TotalRows(), 100u);
  // Segment data and its vector index are persisted in the object store.
  const std::string& seg = snap.segments[0].segment_id;
  EXPECT_TRUE(store_.Exists(SegmentKeys::Data("t", seg)));
  EXPECT_TRUE(store_.Exists(SegmentKeys::Index("t", seg)));
}

TEST_F(LsmEngineTest, AutoFlushAtThreshold) {
  IngestOptions opts;
  opts.flush_threshold_rows = 50;
  opts.max_segment_rows = 50;
  auto engine = MakeEngine(0, opts);
  ASSERT_TRUE(engine->Insert(MakeRows(120, "a")).ok());
  EXPECT_GE(engine->NumSegments(), 2u);
  EXPECT_LT(engine->MemtableRows(), 50u);
}

TEST_F(LsmEngineTest, PartitionKeysSplitSegments) {
  TableSchema schema = TestSchema();
  schema.partition_columns = {1};  // PARTITION BY label
  auto engine = std::make_unique<LsmEngine>(schema, &store_, &pool_,
                                            IngestOptions{});
  std::vector<Row> rows = MakeRows(50, "cat");
  std::vector<Row> dogs = MakeRows(50, "dog", 2);
  rows.insert(rows.end(), dogs.begin(), dogs.end());
  ASSERT_TRUE(engine->Insert(std::move(rows)).ok());
  ASSERT_TRUE(engine->Flush().ok());
  TableSnapshot snap = engine->Snapshot();
  EXPECT_EQ(snap.segments.size(), 2u);
  std::set<std::string> keys;
  for (const auto& m : snap.segments) keys.insert(m.partition_key);
  EXPECT_EQ(keys, (std::set<std::string>{"cat", "dog"}));
}

TEST_F(LsmEngineTest, SemanticBucketsAssigned) {
  auto engine = MakeEngine(/*buckets=*/3);
  ASSERT_TRUE(engine->Insert(MakeRows(300, "a")).ok());
  ASSERT_TRUE(engine->Flush().ok());
  auto partitioner = engine->semantic_partitioner();
  ASSERT_NE(partitioner, nullptr);
  EXPECT_TRUE(partitioner->trained());
  TableSnapshot snap = engine->Snapshot();
  std::set<int64_t> buckets;
  for (const auto& m : snap.segments) buckets.insert(m.semantic_bucket);
  EXPECT_GE(buckets.size(), 2u);
  for (int64_t b : buckets) EXPECT_GE(b, 0);
}

TEST_F(LsmEngineTest, FetchSegmentRoundTrip) {
  auto engine = MakeEngine();
  ASSERT_TRUE(engine->Insert(MakeRows(30, "x")).ok());
  ASSERT_TRUE(engine->Flush().ok());
  TableSnapshot snap = engine->Snapshot();
  auto segment = engine->FetchSegment(snap.segments[0].segment_id);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ((*segment)->num_rows(), 30u);
  Row row = RowFromSegment(**segment, 3);
  EXPECT_EQ(std::get<int64_t>(row.values[0]), 3);
}

TEST_F(LsmEngineTest, CompactionMergesAndDropsDeleted) {
  IngestOptions opts;
  opts.max_segment_rows = 25;
  auto engine = MakeEngine(0, opts);
  ASSERT_TRUE(engine->Insert(MakeRows(100, "a")).ok());
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->NumSegments(), 4u);

  // Delete rows 0..9 of one segment.
  TableSnapshot snap = engine->Snapshot();
  ASSERT_TRUE(engine
                  ->DeleteRows(snap.segments[0].segment_id,
                               {0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
                  .ok());

  auto jobs = engine->Compact();
  ASSERT_TRUE(jobs.ok());
  EXPECT_GE(*jobs, 1u);
  TableSnapshot after = engine->Snapshot();
  EXPECT_LT(after.segments.size(), 4u);
  EXPECT_EQ(after.TotalRows(), 90u);  // deleted rows physically gone
  EXPECT_EQ(after.TotalDeletedRows(), 0u);
  // Compacted segments are level 1 and have fresh indexes.
  for (const auto& m : after.segments) {
    EXPECT_EQ(m.level, 1u);
    EXPECT_TRUE(store_.Exists(SegmentKeys::Index("t", m.segment_id)));
  }
}

TEST_F(LsmEngineTest, CompactIfNeededHonorsTrigger) {
  IngestOptions opts;
  opts.max_segment_rows = 10;
  opts.compaction_trigger_segments = 100;  // never triggers
  auto engine = MakeEngine(0, opts);
  ASSERT_TRUE(engine->Insert(MakeRows(50, "a")).ok());
  ASSERT_TRUE(engine->Flush().ok());
  auto jobs = engine->CompactIfNeeded();
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ(*jobs, 0u);
}

TEST_F(LsmEngineTest, PipelinedVsStagedProduceSameState) {
  IngestOptions piped;
  piped.pipelined_index_build = true;
  IngestOptions staged;
  staged.pipelined_index_build = false;
  auto e1 = MakeEngine(0, piped);
  auto e2 = MakeEngine(0, staged);
  ASSERT_TRUE(e1->Insert(MakeRows(60, "a")).ok());
  ASSERT_TRUE(e2->Insert(MakeRows(60, "a")).ok());
  ASSERT_TRUE(e1->Flush().ok());
  ASSERT_TRUE(e2->Flush().ok());
  EXPECT_EQ(e1->Snapshot().TotalRows(), e2->Snapshot().TotalRows());
  EXPECT_EQ(e1->stats().indexes_built.load(),
            e2->stats().indexes_built.load());
}

}  // namespace
}  // namespace blendhouse::storage
